//! Vendored, dependency-free stand-in for the slice of the `criterion`
//! benchmarking API this workspace uses.
//!
//! The build environment cannot reach a crates registry, so the real
//! criterion is unavailable; this shim keeps the three bench targets
//! compiling and producing useful wall-clock numbers. It measures each
//! benchmark by running a warm-up batch, then `sample_size` timed batches,
//! and reports the fastest per-iteration time (the most contention-free
//! estimate, and the statistic least sensitive to scheduler noise).
//!
//! Statistical machinery (outlier classification, regression, HTML reports)
//! is intentionally absent. If the real criterion ever becomes available,
//! deleting this crate and pointing `criterion` at crates.io restores it —
//! the bench sources need no change.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group: a function name plus an
/// optional parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// Best observed per-iteration time, filled by [`Bencher::iter`].
    best_ns: f64,
}

impl Bencher {
    /// Run `f` repeatedly and record the fastest per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: grow the batch until it runs
        // for at least ~1 ms so Instant overhead stays negligible.
        let mut batch = 1u64;
        let batch = loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break batch;
            }
            batch *= 4;
        };
        let mut best = f64::INFINITY;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let per_iter = t0.elapsed().as_secs_f64() * 1e9 / batch as f64;
            best = best.min(per_iter);
        }
        self.best_ns = best;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmark a parameterless function.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, |b| f(b));
        self
    }

    /// End the group (prints nothing; exists for API compatibility).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
        }
    }

    /// Benchmark a single function.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), 10, |b| f(b));
        self
    }
}

fn run_one(name: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        best_ns: f64::NAN,
    };
    f(&mut bencher);
    let ns = bencher.best_ns;
    let (value, unit) = if ns < 1e3 {
        (ns, "ns")
    } else if ns < 1e6 {
        (ns / 1e3, "µs")
    } else {
        (ns / 1e6, "ms")
    };
    println!("{name:<48} time: {value:>10.3} {unit}/iter");
}

/// Re-exported so bench sources can `use criterion::black_box`.
pub use std::hint::black_box;

/// Collect benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce `main` from one or more [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
