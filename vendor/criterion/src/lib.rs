//! Vendored, dependency-free stand-in for the slice of the `criterion`
//! benchmarking API this workspace uses.
//!
//! The build environment cannot reach a crates registry, so the real
//! criterion is unavailable; this shim keeps the three bench targets
//! compiling and producing useful wall-clock numbers. It measures each
//! benchmark by running a warm-up batch, then `sample_size` timed batches,
//! and reports the fastest per-iteration time (the most contention-free
//! estimate, and the statistic least sensitive to scheduler noise).
//!
//! Beyond the console lines, every benchmark group writes a
//! machine-readable `BENCH_<group>.json` at the workspace root — one
//! object per case with `mean_ns`/`min_ns`/`max_ns` over the timed
//! batches — so bench trajectories can be tracked across commits without
//! scraping stdout. Loose `Criterion::bench_function` cases (no group)
//! are flushed to `BENCH_<bench-binary>.json` when the driver drops.
//!
//! Statistical machinery (outlier classification, regression, HTML reports)
//! is intentionally absent. If the real criterion ever becomes available,
//! deleting this crate and pointing `criterion` at crates.io restores it —
//! the bench sources need no change (the JSON sidecar is an extra).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group: a function name plus an
/// optional parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Per-case timing statistics over the timed batches (ns per iteration).
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Full case name (`group/function/parameter`).
    pub name: String,
    /// Mean per-iteration time over the timed batches.
    pub mean_ns: f64,
    /// Fastest batch (the headline statistic).
    pub min_ns: f64,
    /// Slowest batch.
    pub max_ns: f64,
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// Per-batch per-iteration times, filled by [`Bencher::iter`].
    batch_ns: Vec<f64>,
}

impl Bencher {
    /// Run `f` repeatedly, recording per-batch per-iteration times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: grow the batch until it runs
        // for at least ~1 ms so Instant overhead stays negligible.
        let mut batch = 1u64;
        let batch = loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break batch;
            }
            batch *= 4;
        };
        self.batch_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.batch_ns
                .push(t0.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    cases: Vec<CaseResult>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.cases
            .push(run_one(&full, self.sample_size, |b| f(b, input)));
        self
    }

    /// Benchmark a parameterless function.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.cases.push(run_one(&full, self.sample_size, |b| f(b)));
        self
    }

    /// End the group, writing its `BENCH_<group>.json`.
    pub fn finish(mut self) {
        write_report(&self.name, &self.cases);
        self.cases.clear(); // Drop must not write a second time
        let _ = &self.criterion;
    }
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        // A group dropped without finish() still reports.
        if !self.cases.is_empty() {
            write_report(&self.name, &self.cases);
            self.cases.clear();
        }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// Cases run outside any group, flushed on drop.
    loose: Vec<CaseResult>,
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            cases: Vec::new(),
        }
    }

    /// Benchmark a single function.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let case = run_one(&name.to_string(), 10, |b| f(b));
        self.loose.push(case);
        self
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        if !self.loose.is_empty() {
            write_report(&bench_binary_name(), &self.loose);
        }
    }
}

fn run_one(name: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) -> CaseResult {
    let mut bencher = Bencher {
        sample_size,
        batch_ns: Vec::new(),
    };
    f(&mut bencher);
    let (mut min, mut max, mut sum) = (f64::INFINITY, 0.0f64, 0.0);
    for &ns in &bencher.batch_ns {
        min = min.min(ns);
        max = max.max(ns);
        sum += ns;
    }
    let mean = if bencher.batch_ns.is_empty() {
        f64::NAN
    } else {
        sum / bencher.batch_ns.len() as f64
    };
    let (value, unit) = if min < 1e3 {
        (min, "ns")
    } else if min < 1e6 {
        (min / 1e3, "µs")
    } else {
        (min / 1e6, "ms")
    };
    println!("{name:<48} time: {value:>10.3} {unit}/iter");
    CaseResult {
        name: name.to_string(),
        mean_ns: mean,
        min_ns: min,
        max_ns: max,
    }
}

/// The running bench binary's stem, with cargo's `-<hash>` suffix removed
/// (e.g. `.../schedulers-0b1f3a9c2d4e5f67` -> `schedulers`).
fn bench_binary_name() -> String {
    let stem = std::env::args()
        .next()
        .map(PathBuf::from)
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    match stem.rsplit_once('-') {
        Some((base, tail)) if tail.len() == 16 && tail.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    }
}

/// The workspace root: the nearest ancestor of the bench's manifest dir
/// (or the cwd) containing `Cargo.lock`. Keeps every `BENCH_*.json` in one
/// predictable place no matter which package's bench target is running.
fn output_dir() -> PathBuf {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let mut dir = start.clone();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir;
        }
        if !dir.pop() {
            return start;
        }
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Paths this process has already written a report to. A path's first
/// write in a process truncates (a fresh run must not accumulate a stale
/// file's cases); later writes to the same path *merge* — several
/// `criterion_group!` runners in one bench binary each own a `Criterion`,
/// and their loose-case flushes all target `BENCH_<binary>.json`.
fn written_paths() -> &'static std::sync::Mutex<std::collections::HashSet<PathBuf>> {
    static WRITTEN: std::sync::OnceLock<std::sync::Mutex<std::collections::HashSet<PathBuf>>> =
        std::sync::OnceLock::new();
    WRITTEN.get_or_init(Default::default)
}

/// Write `BENCH_<group>.json`: a JSON array of per-case objects. Rendered
/// by hand — the offline workspace has no serde — and kept flat so any
/// tooling can parse it.
fn write_report(group: &str, cases: &[CaseResult]) {
    match write_report_quiet(group, cases) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("BENCH report for {group} not written: {e}"),
    }
}

/// The `BENCH_<group>.json` writer without the stdout line: same path
/// resolution, name sanitization, merge behaviour, and JSON shape as the
/// bench-target flushes — for binaries whose
/// stdout is a pinned artifact (the repro binaries) but that still want
/// their hand-timed cases in the one `BENCH_*.json` format. Returns the
/// path written.
///
/// # Errors
///
/// I/O errors from the filesystem.
pub fn write_report_quiet(group: &str, cases: &[CaseResult]) -> std::io::Result<PathBuf> {
    let path = output_dir().join(format!("BENCH_{}.json", sanitize(group)));
    let merge = !written_paths()
        .lock()
        .expect("no panics hold the lock")
        .insert(path.clone());
    write_report_at(&path, cases, merge)?;
    Ok(path)
}

/// Overwrite `BENCH_<group>.json` with exactly `cases`, bypassing the
/// in-process merge bookkeeping — for cross-process appenders that have
/// already folded the survivors in via [`read_report`]. Later in-process
/// shim writes to the same group merge on top as usual.
///
/// # Errors
///
/// I/O errors from the filesystem.
pub fn rewrite_report(group: &str, cases: &[CaseResult]) -> std::io::Result<PathBuf> {
    let path = output_dir().join(format!("BENCH_{}.json", sanitize(group)));
    written_paths()
        .lock()
        .expect("no panics hold the lock")
        .insert(path.clone());
    write_report_at(&path, cases, false)?;
    Ok(path)
}

fn write_report_at(path: &PathBuf, cases: &[CaseResult], merge: bool) -> std::io::Result<()> {
    let write = || -> std::io::Result<()> {
        // Merging re-reads our own exact output format: the case lines of
        // the existing array are kept verbatim ahead of the new ones.
        let mut lines: Vec<String> = Vec::new();
        if merge {
            if let Ok(prev) = std::fs::read_to_string(path) {
                lines.extend(
                    prev.lines()
                        .map(str::trim)
                        .filter(|l| l.starts_with('{'))
                        .map(|l| l.trim_end_matches(',').to_string()),
                );
            }
        }
        for c in cases {
            lines.push(format!(
                "{{\"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}}}",
                c.name.replace('\\', "\\\\").replace('"', "\\\""),
                c.mean_ns,
                c.min_ns,
                c.max_ns
            ));
        }
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(out, "[")?;
        for (i, line) in lines.iter().enumerate() {
            let comma = if i + 1 < lines.len() { "," } else { "" };
            writeln!(out, "  {line}{comma}")?;
        }
        writeln!(out, "]")?;
        out.flush()
    };
    write()
}

/// Parse an existing `BENCH_<group>.json` back into its cases (an absent
/// or unreadable file is an empty report). The inverse of
/// [`write_report_quiet`] for *cross-process* appending: a new process's
/// first write truncates (fresh bench runs must not accumulate stale
/// cases), so an appender re-reads the survivors it wants to keep and
/// writes the union itself.
pub fn read_report(group: &str) -> Vec<CaseResult> {
    let path = output_dir().join(format!("BENCH_{}.json", sanitize(group)));
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| l.starts_with('{'))
        .filter_map(parse_case_line)
        .collect()
}

/// Parse one `{"name": ..., "mean_ns": ..., ...}` line of our own flat
/// format. Tolerant of nothing else — this is a round-trip, not JSON.
fn parse_case_line(line: &str) -> Option<CaseResult> {
    let name_start = line.find("\"name\": \"")? + "\"name\": \"".len();
    let mut name = String::new();
    let mut chars = line[name_start..].chars();
    loop {
        match chars.next()? {
            '\\' => name.push(chars.next()?),
            '"' => break,
            c => name.push(c),
        }
    }
    let field = |key: &str| -> Option<f64> {
        let start = line.find(key)? + key.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        rest[..end].trim().parse().ok()
    };
    Some(CaseResult {
        name,
        mean_ns: field("\"mean_ns\":")?,
        min_ns: field("\"min_ns\":")?,
        max_ns: field("\"max_ns\":")?,
    })
}

/// Re-exported so bench sources can `use criterion::black_box`.
pub use std::hint::black_box;

/// Collect benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce `main` from one or more [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_batch_stats() {
        let case = run_one("t/one", 5, |b| b.iter(|| black_box(2u64.pow(10))));
        assert_eq!(case.name, "t/one");
        assert!(case.min_ns > 0.0);
        assert!(case.min_ns <= case.mean_ns && case.mean_ns <= case.max_ns);
    }

    #[test]
    fn group_writes_machine_readable_json() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_selftest");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
        let path = output_dir().join("BENCH_shim_selftest.json");
        let text = std::fs::read_to_string(&path).expect("report written");
        assert!(text.trim_start().starts_with('['));
        assert!(text.contains("\"name\": \"shim_selftest/noop\""));
        assert!(text.contains("\"name\": \"shim_selftest/sq/7\""));
        assert!(text.contains("mean_ns"));
        assert!(text.contains("min_ns"));
        assert!(text.contains("max_ns"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn repeat_writes_in_one_process_merge_instead_of_truncating() {
        // Two criterion_group! runners in one binary both flush loose
        // cases to the same BENCH_<binary>.json; the second write must
        // keep the first's cases.
        let case = |name: &str| CaseResult {
            name: name.to_string(),
            mean_ns: 2.0,
            min_ns: 1.0,
            max_ns: 3.0,
        };
        write_report("merge_selftest", &[case("g1/a")]);
        write_report("merge_selftest", &[case("g2/b")]);
        let path = output_dir().join("BENCH_merge_selftest.json");
        let text = std::fs::read_to_string(&path).expect("report written");
        assert!(text.contains("g1/a"), "first group's cases lost: {text}");
        assert!(text.contains("g2/b"));
        assert!(text.trim_end().ends_with(']'));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn read_report_round_trips_written_cases() {
        let case = CaseResult {
            name: "grp/weird \"name\"/d7".to_string(),
            mean_ns: 1234.5,
            min_ns: 1000.0,
            max_ns: 2000.5,
        };
        let path = write_report_quiet("roundtrip_selftest", std::slice::from_ref(&case)).unwrap();
        let back = read_report("roundtrip_selftest");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].name, case.name);
        assert_eq!(back[0].mean_ns, case.mean_ns);
        assert_eq!(back[0].min_ns, case.min_ns);
        assert_eq!(back[0].max_ns, case.max_ns);
        std::fs::remove_file(path).ok();
        assert!(read_report("roundtrip_selftest").is_empty());
    }

    #[test]
    fn sanitize_keeps_json_filenames_safe() {
        assert_eq!(sanitize("rs_nl scaling/d8"), "rs_nl_scaling_d8");
    }

    #[test]
    fn binary_name_strips_cargo_hash() {
        // Indirect: the helper must at least return something non-empty.
        assert!(!bench_binary_name().is_empty());
    }
}
