//! Vendored, dependency-free stand-in for the slice of the `proptest` API
//! this workspace uses: the [`Strategy`] trait over integer ranges, tuples,
//! [`collection::vec()`], and `prop_map`; the [`proptest!`] test macro; and
//! the `prop_assert*` assertion macros.
//!
//! The build environment cannot reach a crates registry. This shim keeps
//! the property tests executable as *seeded randomized tests*: each test
//! runs `cases` generated inputs from a fixed per-test seed, so failures
//! reproduce exactly. Shrinking (minimal-counterexample search) is not
//! implemented — a failing case reports the case index, and re-running is
//! deterministic, which is what the reproduction needs from it.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

pub mod collection;
pub mod strategy;

pub use strategy::Strategy;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property within a test case (created by the `prop_assert*`
/// macros).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Failure with a rendered message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Drives the cases of one property test. Used by the [`proptest!`]
/// expansion; not part of the public proptest API proper.
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
}

impl TestRunner {
    /// Runner for the named test: the name is hashed into the base seed so
    /// every test draws an independent deterministic stream.
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            config,
            base_seed: h,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// Independent generator for case `case`.
    pub fn rng_for(&self, case: u32) -> StdRng {
        StdRng::seed_from_u64(self.base_seed ^ (u64::from(case) << 32 | u64::from(case)))
    }
}

/// Everything a test module needs, in one import.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Internal: sample a `usize` in `[0, n)` for combinator implementations.
pub fn sample_index(rng: &mut StdRng, n: usize) -> usize {
    if n == 0 {
        0
    } else {
        rng.random_range(0..n)
    }
}

/// Define property tests: each `fn name(arg in strategy, ...)` block runs
/// once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let runner = $crate::TestRunner::new($config, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for(case);
                $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        runner.cases(),
                        e
                    );
                }
            }
        }
    )*};
}

/// `assert!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

/// `assert_ne!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
}
