//! The [`Strategy`] trait and its combinators.

use rand::rngs::StdRng;
use rand::RngExt;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is simply a deterministic function from an RNG state to a value.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// A fixed value as a (degenerate) strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}
