//! Strategies for collections.

use rand::rngs::StdRng;
use rand::RngExt;

use crate::strategy::Strategy;

/// Strategy producing a `Vec` of `element` values with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Result of [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.is_empty() {
            self.size.start
        } else {
            rng.random_range(self.size.clone())
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
