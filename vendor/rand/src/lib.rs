//! Vendored, dependency-free stand-in for the slice of the `rand` crate API
//! that this workspace uses: [`SeedableRng::seed_from_u64`],
//! [`RngExt::random_range`], and [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no access to a crates registry, so the real
//! `rand` cannot be fetched; every consumer in the workspace only needs a
//! *deterministic* generator (all workloads and randomized schedulers are
//! seeded functions), not a cryptographic or distribution-perfect one.
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and fully reproducible across platforms.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{RngExt, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(42);
//! let mut b = StdRng::seed_from_u64(42);
//! assert_eq!(a.random_range(0..1000u32), b.random_range(0..1000u32));
//! ```

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words. The base trait every generator
/// implements; extension methods live on [`RngExt`].
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform sample from `range` (half-open or inclusive; integer or
    /// `f64`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform boolean.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> RngExt for T {}

/// A type usable as the argument of [`RngExt::random_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draw one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, bound)` via Lemire-style multiply-shift with a
/// rejection step that removes modulo bias.
pub(crate) fn bounded_u64<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * bound as u128) >> 64) as u64;
        let lo = x.wrapping_mul(bound);
        if lo >= threshold {
            return hi;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

macro_rules! signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                // Two's-complement subtraction gives the true span as u64
                // even when the bounds are negative.
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(bounded_u64(rng, span) as i64) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(bounded_u64(rng, span + 1) as i64) as $t
            }
        }
    )*};
}

signed_range!(i32, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.random_range(10..20usize);
            assert!((10..20).contains(&x));
            let y = rng.random_range(0..=5u32);
            assert!(y <= 5);
            let f = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn signed_ranges_with_negative_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut hit_neg = false;
        let mut hit_pos = false;
        for _ in 0..1000 {
            let x = rng.random_range(-5..5i32);
            assert!((-5..5).contains(&x));
            hit_neg |= x < 0;
            hit_pos |= x >= 0;
            let y = rng.random_range(-3..=3i64);
            assert!((-3..=3).contains(&y));
        }
        assert!(hit_neg && hit_pos);
        let z = rng.random_range(i64::MIN..=i64::MAX);
        let _ = z;
    }

    #[test]
    fn bounded_sampling_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
