//! Sequence-related random operations.

use crate::RngCore;

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = crate::bounded_u64(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[crate::bounded_u64(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(5);
        let v: [u32; 0] = [];
        assert!(v.choose(&mut rng).is_none());
    }
}
