//! # ipsc-sched
//!
//! Scheduling of unstructured (all-to-many personalized) communication on a
//! circuit-switched hypercube — a faithful reproduction of
//! *Wang & Ranka, "Scheduling of Unstructured Communication on the Intel
//! iPSC/860" (1994)* as a Rust workspace.
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`hypercube`] — the topology abstraction and the paper's machines:
//!   hypercubes under e-cube routing and 2-D meshes under XY routing.
//! * [`topo`] — the pluggable fabric family beyond the paper: k-ary
//!   n-cube tori (dimension-ordered shortest-direction routing) and
//!   k-ary fat-trees (deterministic up-down routing), plus the
//!   [`topo::TopologyKind`] kind-string grammar (`"torus:4x4x4"`,
//!   `"fattree:k=8"`) used by CLIs and the daemon.
//! * [`simnet`] — a discrete-event simulator of the iPSC/860's
//!   circuit-switched network (the hardware substitute).
//! * [`commsched`] — the paper's contribution: decomposing a communication
//!   matrix into contention-free partial permutations (AC, LP, RS_N, RS_NL).
//! * [`commcache`] — schedule compilation cache: canonical fingerprints, a
//!   sharded in-memory LRU, and a persistent on-disk artifact store (the
//!   paper's amortization argument as infrastructure).
//! * [`workloads`] — generators for the paper's random test sets and richer
//!   irregular patterns.
//! * [`commrt`] — the runtime layer: compiles schedules + protocols (S1/S2)
//!   into per-node programs and runs experiments on pluggable simulation
//!   backends (exact discrete-event, or a fast contention-aware analytic
//!   model — `IPSC_BACKEND`).
//! * [`schedd`] — a scheduling daemon: serves compile+simulate requests
//!   over a checksummed framed protocol (Unix/TCP), coalescing identical
//!   in-flight requests onto one compile and streaming schedules back.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the short version:
//!
//! ```
//! use ipsc_sched::prelude::*;
//!
//! let cube = Hypercube::new(6);                      // 64 nodes
//! let com = workloads::random_dense(64, 8, 1024, 42); // d=8, 1 KiB messages
//! let schedule = rs_nl(&com, &cube, 7);              // avoid node+link contention
//! let report = run_schedule(&cube, &MachineParams::ipsc860(), &com, &schedule, Scheme::S1)
//!     .expect("simulation succeeds");
//! println!("communication cost: {:.2} ms", report.makespan_ms());
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use commcache;
pub use commrt;
pub use commsched;
pub use hypercube;
pub use schedd;
pub use simnet;
pub use topo;
pub use workloads;

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use commcache::{ArtifactStore, CacheConfig, CacheStats, Fingerprint, SchedCache};
    pub use commrt::{
        run_schedule, AnalyticBackend, BackendKind, BackendReport, DesBackend, ExperimentGrid,
        ExperimentRunner, GridResult, Scheme, SimBackend, SimMode, WorkloadPoint,
    };
    pub use commsched::{
        ac, greedy, lp, rs_n, rs_nl, validate_schedule, CommMatrix, Schedule, ScheduleQuality,
        SchedulerKind,
    };
    pub use hypercube::{Hypercube, Mesh2d, NodeId, RoutingProperties, Topology};
    pub use simnet::{simulate, MachineParams, SimReport};
    pub use topo::{FatTree, TopologyKind, Torus};
    pub use workloads;
    pub use workloads::Generator;
}
