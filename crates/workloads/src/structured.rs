//! Structured (regular) communication patterns classically studied on
//! hypercubes; useful as baselines and stress cases for the schedulers.

use commsched::CommMatrix;
use hypercube::{perm, NodeId, Topology};

/// Matrix transpose: node `i` of an implicit `sqrt(n) x sqrt(n)` grid sends
/// to its transposed peer.
///
/// # Panics
///
/// Panics unless `n` is a perfect square or `bytes == 0`.
pub fn transpose(n: usize, bytes: u32) -> CommMatrix {
    let side = (n as f64).sqrt() as usize;
    assert_eq!(side * side, n, "transpose needs a square node count");
    assert!(bytes > 0);
    let mut com = CommMatrix::new(n);
    for r in 0..side {
        for c in 0..side {
            let src = r * side + c;
            let dst = c * side + r;
            if src != dst {
                com.set(src, dst, bytes);
            }
        }
    }
    com
}

/// Cyclic shift by `k`: node `i` sends to `(i + k) mod n`.
///
/// # Panics
///
/// Panics if `k % n == 0` (that would be a self-send) or `bytes == 0`.
pub fn shift(n: usize, k: usize, bytes: u32) -> CommMatrix {
    assert!(
        !k.is_multiple_of(n),
        "shift by a multiple of n is a self-send"
    );
    assert!(bytes > 0);
    let mut com = CommMatrix::new(n);
    for i in 0..n {
        com.set(i, (i + k) % n, bytes);
    }
    com
}

/// Bit-reverse permutation traffic — a known worst case for e-cube routing
/// (heavy link contention when launched all at once).
///
/// # Panics
///
/// Panics unless `n` is a power of two.
pub fn bit_reverse(n: usize, bytes: u32) -> CommMatrix {
    assert!(bytes > 0);
    let dests = perm::bit_reverse(n);
    let mut com = CommMatrix::new(n);
    for (i, d) in dests.iter().enumerate() {
        if i != d.index() {
            com.set(i, d.index(), bytes);
        }
    }
    com
}

/// Bit-complement permutation — the classic link-contention-free hypercube
/// permutation (every message crosses all dimensions).
///
/// # Panics
///
/// Panics unless `n` is a power of two.
pub fn bit_complement(n: usize, bytes: u32) -> CommMatrix {
    assert!(bytes > 0);
    let dests = perm::bit_complement(n);
    let mut com = CommMatrix::new(n);
    for (i, d) in dests.iter().enumerate() {
        com.set(i, d.index(), bytes);
    }
    com
}

/// Complete exchange (all-to-all personalized): everyone messages everyone.
/// Density `n - 1` — the heaviest pattern, where LP shines.
pub fn all_to_all(n: usize, bytes: u32) -> CommMatrix {
    assert!(bytes > 0);
    let mut com = CommMatrix::new(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                com.set(i, j, bytes);
            }
        }
    }
    com
}

/// Symmetric ring halo: node `i` exchanges with `i±1 .. i±w` (mod n) —
/// density `2w`, fully pairable into exchanges.
///
/// # Panics
///
/// Panics if `2 * w >= n` or `bytes == 0`.
pub fn ring_halo(n: usize, w: usize, bytes: u32) -> CommMatrix {
    assert!(2 * w < n, "halo width {w} too large for {n} nodes");
    assert!(bytes > 0);
    let mut com = CommMatrix::new(n);
    for i in 0..n {
        for k in 1..=w {
            com.set(i, (i + k) % n, bytes);
            com.set(i, (i + n - k) % n, bytes);
        }
    }
    com
}

/// Torus nearest-neighbour halo: every node exchanges with its ±1 ring
/// neighbour in each dimension of the `extents` torus — the wraparound
/// stencil traffic of a domain-decomposed grid code (the QCDSP workload).
/// Density is `2·ndims` (less where a 2-ring folds both directions onto
/// one neighbour). Node numbering matches [`topo::Torus`].
///
/// # Panics
///
/// Panics on invalid torus extents (see [`topo::Torus::new`]) or
/// `bytes == 0`.
pub fn torus_halo(extents: &[usize], bytes: u32) -> CommMatrix {
    torus_neighborhood(extents, 1, bytes)
}

/// Torus neighbourhood of width `w`: every node exchanges with the nodes
/// up to `w` steps away along each axis (both directions, wrapping) — the
/// axis-aligned generalization of [`ring_halo`] to k-ary n-cubes.
/// Self-sends that arise when `2w` reaches an extent are skipped.
///
/// # Panics
///
/// Panics on invalid torus extents, `w == 0`, or `bytes == 0`.
pub fn torus_neighborhood(extents: &[usize], w: usize, bytes: u32) -> CommMatrix {
    assert!(w > 0, "neighbourhood width must be positive");
    assert!(bytes > 0);
    let torus = topo::Torus::new(extents);
    let n = torus.num_nodes();
    let mut com = CommMatrix::new(n);
    for i in 0..n {
        let node = NodeId(i as u32);
        for dim in 0..torus.ndims() {
            for dir in 0..2u32 {
                let mut cur = node;
                for _ in 0..w {
                    cur = torus.neighbor(cur, dim, dir);
                    if cur != node {
                        com.set(i, cur.index(), bytes);
                    }
                }
            }
        }
    }
    com
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_is_an_involution_pattern() {
        let com = transpose(16, 64);
        for (s, d, _) in com.messages() {
            assert!(com.get(d.index(), s.index()) > 0);
        }
        // Grid-diagonal blocks ((r, r) positions, e.g. nodes 0 and 5 on the
        // 4x4 grid) send nothing; off-diagonal blocks send exactly once.
        assert_eq!(com.out_degree(0), 0);
        assert_eq!(com.out_degree(5), 0);
        assert_eq!(com.out_degree(1), 1);
        assert!(com.is_symmetric_pattern());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn transpose_rejects_non_square() {
        transpose(12, 64);
    }

    #[test]
    fn torus_halo_is_symmetric_with_2ndims_density() {
        let com = torus_halo(&[4, 4, 4], 256);
        assert_eq!(com.n(), 64);
        assert!(com.is_symmetric_pattern());
        for i in 0..64 {
            assert_eq!(com.out_degree(i), 6, "node {i}");
        }
    }

    #[test]
    fn torus_halo_folds_on_2_rings() {
        // On a 2-ring both directions reach the same neighbour: density 3,
        // not 4, on a 2x4 torus's first dimension.
        let com = torus_halo(&[2, 4], 64);
        assert!(com.is_symmetric_pattern());
        for i in 0..8 {
            assert_eq!(com.out_degree(i), 3, "node {i}");
        }
    }

    #[test]
    fn torus_neighborhood_widens_and_skips_self() {
        let com = torus_neighborhood(&[4, 4], 2, 128);
        assert!(com.is_symmetric_pattern());
        // w=2 on a 4-ring reaches ±1 and ±2; ±2 coincide (distance k/2),
        // so each dimension contributes 3 neighbours.
        for i in 0..16 {
            assert_eq!(com.out_degree(i), 6, "node {i}");
        }
        // Width big enough to lap the ring never self-sends.
        let lapped = torus_neighborhood(&[2, 2], 3, 16);
        for (s, d, _) in lapped.messages() {
            assert_ne!(s, d);
        }
    }

    #[test]
    fn shift_density_one() {
        let com = shift(64, 7, 128);
        assert_eq!(com.density(), 1);
        assert_eq!(com.message_count(), 64);
    }

    #[test]
    #[should_panic(expected = "self-send")]
    fn shift_rejects_zero() {
        shift(8, 8, 1);
    }

    #[test]
    fn bit_patterns_are_permutations() {
        for com in [bit_reverse(32, 8), bit_complement(32, 8)] {
            for j in 0..32 {
                assert!(com.in_degree(j) <= 1);
            }
            assert_eq!(com.density(), 1);
        }
        // Bit reverse fixes palindromic addresses; complement fixes none.
        assert_eq!(bit_complement(32, 8).message_count(), 32);
        assert!(bit_reverse(32, 8).message_count() < 32);
    }

    #[test]
    fn all_to_all_density() {
        let com = all_to_all(16, 4);
        assert_eq!(com.density(), 15);
        assert_eq!(com.message_count(), 16 * 15);
    }

    #[test]
    fn ring_halo_is_symmetric_with_density_2w() {
        let com = ring_halo(64, 3, 256);
        assert!(com.is_symmetric_pattern());
        assert_eq!(com.density(), 6);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn ring_halo_width_bound() {
        ring_halo(8, 4, 1);
    }
}
