//! Structured (regular) communication patterns classically studied on
//! hypercubes; useful as baselines and stress cases for the schedulers.

use commsched::CommMatrix;
use hypercube::perm;

/// Matrix transpose: node `i` of an implicit `sqrt(n) x sqrt(n)` grid sends
/// to its transposed peer.
///
/// # Panics
///
/// Panics unless `n` is a perfect square or `bytes == 0`.
pub fn transpose(n: usize, bytes: u32) -> CommMatrix {
    let side = (n as f64).sqrt() as usize;
    assert_eq!(side * side, n, "transpose needs a square node count");
    assert!(bytes > 0);
    let mut com = CommMatrix::new(n);
    for r in 0..side {
        for c in 0..side {
            let src = r * side + c;
            let dst = c * side + r;
            if src != dst {
                com.set(src, dst, bytes);
            }
        }
    }
    com
}

/// Cyclic shift by `k`: node `i` sends to `(i + k) mod n`.
///
/// # Panics
///
/// Panics if `k % n == 0` (that would be a self-send) or `bytes == 0`.
pub fn shift(n: usize, k: usize, bytes: u32) -> CommMatrix {
    assert!(
        !k.is_multiple_of(n),
        "shift by a multiple of n is a self-send"
    );
    assert!(bytes > 0);
    let mut com = CommMatrix::new(n);
    for i in 0..n {
        com.set(i, (i + k) % n, bytes);
    }
    com
}

/// Bit-reverse permutation traffic — a known worst case for e-cube routing
/// (heavy link contention when launched all at once).
///
/// # Panics
///
/// Panics unless `n` is a power of two.
pub fn bit_reverse(n: usize, bytes: u32) -> CommMatrix {
    assert!(bytes > 0);
    let dests = perm::bit_reverse(n);
    let mut com = CommMatrix::new(n);
    for (i, d) in dests.iter().enumerate() {
        if i != d.index() {
            com.set(i, d.index(), bytes);
        }
    }
    com
}

/// Bit-complement permutation — the classic link-contention-free hypercube
/// permutation (every message crosses all dimensions).
///
/// # Panics
///
/// Panics unless `n` is a power of two.
pub fn bit_complement(n: usize, bytes: u32) -> CommMatrix {
    assert!(bytes > 0);
    let dests = perm::bit_complement(n);
    let mut com = CommMatrix::new(n);
    for (i, d) in dests.iter().enumerate() {
        com.set(i, d.index(), bytes);
    }
    com
}

/// Complete exchange (all-to-all personalized): everyone messages everyone.
/// Density `n - 1` — the heaviest pattern, where LP shines.
pub fn all_to_all(n: usize, bytes: u32) -> CommMatrix {
    assert!(bytes > 0);
    let mut com = CommMatrix::new(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                com.set(i, j, bytes);
            }
        }
    }
    com
}

/// Symmetric ring halo: node `i` exchanges with `i±1 .. i±w` (mod n) —
/// density `2w`, fully pairable into exchanges.
///
/// # Panics
///
/// Panics if `2 * w >= n` or `bytes == 0`.
pub fn ring_halo(n: usize, w: usize, bytes: u32) -> CommMatrix {
    assert!(2 * w < n, "halo width {w} too large for {n} nodes");
    assert!(bytes > 0);
    let mut com = CommMatrix::new(n);
    for i in 0..n {
        for k in 1..=w {
            com.set(i, (i + k) % n, bytes);
            com.set(i, (i + n - k) % n, bytes);
        }
    }
    com
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_is_an_involution_pattern() {
        let com = transpose(16, 64);
        for (s, d, _) in com.messages() {
            assert!(com.get(d.index(), s.index()) > 0);
        }
        // Grid-diagonal blocks ((r, r) positions, e.g. nodes 0 and 5 on the
        // 4x4 grid) send nothing; off-diagonal blocks send exactly once.
        assert_eq!(com.out_degree(0), 0);
        assert_eq!(com.out_degree(5), 0);
        assert_eq!(com.out_degree(1), 1);
        assert!(com.is_symmetric_pattern());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn transpose_rejects_non_square() {
        transpose(12, 64);
    }

    #[test]
    fn shift_density_one() {
        let com = shift(64, 7, 128);
        assert_eq!(com.density(), 1);
        assert_eq!(com.message_count(), 64);
    }

    #[test]
    #[should_panic(expected = "self-send")]
    fn shift_rejects_zero() {
        shift(8, 8, 1);
    }

    #[test]
    fn bit_patterns_are_permutations() {
        for com in [bit_reverse(32, 8), bit_complement(32, 8)] {
            for j in 0..32 {
                assert!(com.in_degree(j) <= 1);
            }
            assert_eq!(com.density(), 1);
        }
        // Bit reverse fixes palindromic addresses; complement fixes none.
        assert_eq!(bit_complement(32, 8).message_count(), 32);
        assert!(bit_reverse(32, 8).message_count() < 32);
    }

    #[test]
    fn all_to_all_density() {
        let com = all_to_all(16, 4);
        assert_eq!(com.density(), 15);
        assert_eq!(com.message_count(), 16 * 15);
    }

    #[test]
    fn ring_halo_is_symmetric_with_density_2w() {
        let com = ring_halo(64, 3, 256);
        assert!(com.is_symmetric_pattern());
        assert_eq!(com.density(), 6);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn ring_halo_width_bound() {
        ring_halo(8, 4, 1);
    }
}
