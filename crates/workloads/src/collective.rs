//! Collective-operation traffic patterns: the communication rounds of
//! classic parallel kernels (FFT butterfly, Gray-embedded grid halos),
//! expressed as communication matrices for the schedulers. These exercise
//! the schedulers on traffic with strong structure — the opposite extreme
//! from the random test sets of the paper's Section 6.

use commsched::CommMatrix;
use hypercube::embed;

/// One butterfly stage of an FFT over `n = 2^dims` nodes: stage `s`
/// exchanges between partners differing in bit `s` — exactly the XOR
/// permutation `k = 2^s`, the best case for every scheduler.
///
/// # Panics
///
/// Panics unless `n` is a power of two, `stage < log2(n)`, and `bytes > 0`.
pub fn butterfly_stage(n: usize, stage: u32, bytes: u32) -> CommMatrix {
    assert!(n.is_power_of_two(), "butterfly needs a power-of-two n");
    assert!((1usize << stage) < n, "stage {stage} out of range");
    assert!(bytes > 0);
    let mut com = CommMatrix::new(n);
    for i in 0..n {
        com.set(i, i ^ (1 << stage), bytes);
    }
    com
}

/// The union of all `log2(n)` butterfly stages — the complete FFT
/// communication volume as one matrix (density `log2 n`, fully symmetric).
///
/// # Panics
///
/// Panics unless `n` is a power of two and `bytes > 0`.
pub fn butterfly_all_stages(n: usize, bytes: u32) -> CommMatrix {
    assert!(n.is_power_of_two(), "butterfly needs a power-of-two n");
    assert!(bytes > 0);
    let mut com = CommMatrix::new(n);
    let stages = n.trailing_zeros();
    for s in 0..stages {
        for i in 0..n {
            com.set(i, i ^ (1usize << s), bytes);
        }
    }
    com
}

/// Halo exchange of a `2^r x 2^c` grid embedded on the `2^(r+c)`-node cube
/// with Gray codes: every message travels exactly one physical hop. The
/// best-case locality the mapping literature aims for, and a useful
/// contrast to [`crate::irregular::irregular_halo`].
///
/// # Panics
///
/// Panics if `r + c > 20` or `bytes == 0`.
pub fn embedded_grid_halo(r: u32, c: u32, bytes: u32) -> CommMatrix {
    assert!(bytes > 0);
    let grid = embed::grid_embedding(r, c);
    let rows = grid.len();
    let cols = grid[0].len();
    let n = rows * cols;
    let mut com = CommMatrix::new(n);
    for y in 0..rows {
        for x in 0..cols {
            let src = grid[y][x].index();
            let mut link = |ny: usize, nx: usize| {
                com.set(src, grid[ny][nx].index(), bytes);
            };
            if y > 0 {
                link(y - 1, x);
            }
            if y + 1 < rows {
                link(y + 1, x);
            }
            if x > 0 {
                link(y, x - 1);
            }
            if x + 1 < cols {
                link(y, x + 1);
            }
        }
    }
    com
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypercube::{Hypercube, NodeId, Topology};

    #[test]
    fn butterfly_stage_is_an_xor_permutation() {
        let com = butterfly_stage(16, 2, 256);
        for (s, d, _) in com.messages() {
            assert_eq!(s.0 ^ d.0, 4);
        }
        assert_eq!(com.density(), 1);
        assert!(com.is_symmetric_pattern());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn butterfly_stage_bounds() {
        butterfly_stage(16, 4, 256);
    }

    #[test]
    fn all_stages_have_density_log_n() {
        let com = butterfly_all_stages(64, 128);
        assert_eq!(com.density(), 6);
        assert_eq!(com.message_count(), 64 * 6);
    }

    #[test]
    fn embedded_halo_is_single_hop() {
        let cube = Hypercube::new(6);
        let com = embedded_grid_halo(3, 3, 4096);
        for (s, d, _) in com.messages() {
            assert_eq!(cube.hops(s, d), 1, "{s}->{d} is not one hop");
        }
        assert!(com.is_symmetric_pattern());
        // Interior cells have 4 neighbours.
        assert_eq!(com.density(), 4);
    }

    #[test]
    fn embedded_halo_beats_naive_layout_on_hops() {
        // The same logical 8x8 halo laid out row-major (node = y*8+x) has
        // messages spanning multiple cube dimensions; Gray embedding
        // removes all of that.
        let cube = Hypercube::new(6);
        let naive = {
            let mut com = CommMatrix::new(64);
            for y in 0..8usize {
                for x in 0..8usize {
                    let src = y * 8 + x;
                    if x + 1 < 8 {
                        com.set(src, src + 1, 4096);
                        com.set(src + 1, src, 4096);
                    }
                    if y + 1 < 8 {
                        com.set(src, src + 8, 4096);
                        com.set(src + 8, src, 4096);
                    }
                }
            }
            com
        };
        let naive_hops: usize = naive.messages().map(|(s, d, _)| cube.hops(s, d)).sum();
        let embedded = embedded_grid_halo(3, 3, 4096);
        let embedded_hops: usize = embedded.messages().map(|(s, d, _)| cube.hops(s, d)).sum();
        assert_eq!(embedded_hops, embedded.message_count());
        assert!(naive_hops > embedded_hops);
        let _ = NodeId(0);
    }
}
