//! Workload generators for unstructured-communication experiments.
//!
//! The paper's test set is "50 randomly generated samples for each density
//! `d`" with uniform message sizes on 64 nodes ([`random_dense`] +
//! [`SampleSet`]). Beyond that, this crate generates the structured
//! permutations classically used on hypercubes ([`structured`]) and the
//! irregular application-like patterns (PARTI/CHAOS lineage) that motivate
//! the paper: partitioned-mesh halo exchanges, hot-spots, and skewed
//! power-law traffic ([`irregular`]).
//!
//! All generators are deterministic functions of their seed.

#![forbid(unsafe_code)]

pub mod collective;
mod generator;
pub mod irregular;
mod random;
mod samples;
pub mod structured;

pub use generator::Generator;
pub use random::{random_dense, random_dregular, random_nonuniform};
pub use samples::SampleSet;
