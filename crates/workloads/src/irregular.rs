//! Irregular, application-like patterns — the PARTI/CHAOS workloads the
//! paper's introduction motivates: communication derived at runtime from a
//! partitioned unstructured problem.

use commsched::CommMatrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Halo (ghost-cell) exchange of a 2-D grid block-partitioned over
/// `pr x pc` processors: every processor exchanges a face with each of its
/// up/down/left/right neighbours and a corner sliver with its diagonal
/// neighbours. The per-face byte count is `face_bytes`; corners carry
/// `corner_bytes`.
///
/// This is the archetypal "unstructured at compile time, structured at run
/// time" pattern: sparse (density <= 8), symmetric, highly pairable.
///
/// # Panics
///
/// Panics if either processor-grid extent is zero or `face_bytes == 0`.
pub fn grid_halo(pr: usize, pc: usize, face_bytes: u32, corner_bytes: u32) -> CommMatrix {
    assert!(pr > 0 && pc > 0, "empty processor grid");
    assert!(face_bytes > 0);
    let n = pr * pc;
    let mut com = CommMatrix::new(n);
    let id = |r: usize, c: usize| r * pc + c;
    for r in 0..pr {
        for c in 0..pc {
            let src = id(r, c);
            let mut link = |dr: isize, dc: isize, bytes: u32| {
                if bytes == 0 {
                    return;
                }
                let (nr, nc) = (r as isize + dr, c as isize + dc);
                if nr >= 0 && nr < pr as isize && nc >= 0 && nc < pc as isize {
                    com.set(src, id(nr as usize, nc as usize), bytes);
                }
            };
            link(-1, 0, face_bytes);
            link(1, 0, face_bytes);
            link(0, -1, face_bytes);
            link(0, 1, face_bytes);
            link(-1, -1, corner_bytes);
            link(-1, 1, corner_bytes);
            link(1, -1, corner_bytes);
            link(1, 1, corner_bytes);
        }
    }
    com
}

/// Halo exchange of a randomly partitioned unstructured mesh: like
/// [`grid_halo`] but each processor additionally talks to `extra` random
/// far-away partitions (the irregular coupling a graph partitioner leaves
/// behind), with `far_bytes` each, symmetrically.
///
/// # Panics
///
/// Panics if the grid is empty or `face_bytes == 0`.
pub fn irregular_halo(
    pr: usize,
    pc: usize,
    face_bytes: u32,
    extra: usize,
    far_bytes: u32,
    seed: u64,
) -> CommMatrix {
    let mut com = grid_halo(pr, pc, face_bytes, face_bytes / 4);
    let n = pr * pc;
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n {
        let mut placed = 0;
        let mut guard = 0;
        while placed < extra && guard < 100 * (extra + 1) {
            guard += 1;
            let j = rng.random_range(0..n);
            if j != i && com.get(i, j) == 0 && far_bytes > 0 {
                com.set(i, j, far_bytes);
                com.set(j, i, far_bytes);
                placed += 1;
            }
        }
    }
    com
}

/// Hot-spot traffic: every node sends to `spots` popular receivers (plus
/// `background` random peers). Maximal node contention by construction —
/// the pattern where scheduling pays off most.
///
/// # Panics
///
/// Panics if `spots == 0` or `spots + background >= n`.
pub fn hotspot(n: usize, spots: usize, background: usize, bytes: u32, seed: u64) -> CommMatrix {
    assert!(spots > 0, "need at least one hot spot");
    assert!(spots + background < n, "pattern denser than the machine");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut com = CommMatrix::new(n);
    for i in 0..n {
        for s in 0..spots {
            if s != i {
                com.set(i, s, bytes);
            }
        }
        let mut placed = 0;
        while placed < background {
            let j = rng.random_range(0..n);
            if j != i && com.get(i, j) == 0 {
                com.set(i, j, bytes);
                placed += 1;
            }
        }
    }
    com
}

/// Skewed (power-law-ish) traffic: out-degrees follow a Zipf-like
/// distribution with exponent `alpha`, destinations uniform. Models the
/// load imbalance of real irregular applications.
///
/// # Panics
///
/// Panics if `n < 2`, `max_degree >= n`, or `alpha < 0`.
pub fn powerlaw(n: usize, max_degree: usize, alpha: f64, bytes: u32, seed: u64) -> CommMatrix {
    assert!(n >= 2 && max_degree < n, "bad power-law parameters");
    assert!(alpha >= 0.0, "alpha must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut com = CommMatrix::new(n);
    for i in 0..n {
        // rank of node i in the popularity order is a random permutation of
        // 1..=n; approximate with the node id shuffled by the seed.
        let rank = ((i as u64 * 2654435761 + seed) % n as u64) as f64 + 1.0;
        let deg = ((max_degree as f64) / rank.powf(alpha)).ceil().max(1.0) as usize;
        let deg = deg.min(max_degree);
        let mut placed = 0;
        while placed < deg {
            let j = rng.random_range(0..n);
            if j != i && com.get(i, j) == 0 {
                com.set(i, j, bytes);
                placed += 1;
            }
        }
    }
    com
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_halo_degrees() {
        let com = grid_halo(4, 4, 1024, 64);
        // Interior nodes: 4 faces + 4 corners.
        let interior = 4 + 1; // node (1,1)
        assert_eq!(com.out_degree(interior), 8);
        // Corner nodes: 2 faces + 1 corner.
        assert_eq!(com.out_degree(0), 3);
        assert!(com.is_symmetric_pattern());
    }

    #[test]
    fn grid_halo_without_corners() {
        let com = grid_halo(3, 3, 512, 0);
        assert_eq!(com.out_degree(4), 4); // center: only faces
    }

    #[test]
    fn irregular_halo_adds_symmetric_far_edges() {
        let base = grid_halo(4, 8, 1024, 256);
        let com = irregular_halo(4, 8, 1024, 2, 128, 7);
        assert!(com.message_count() > base.message_count());
        assert!(com.is_symmetric_pattern());
    }

    #[test]
    fn hotspot_concentrates_in_degree() {
        let com = hotspot(64, 2, 2, 256, 1);
        assert!(com.in_degree(0) >= 60);
        assert!(com.in_degree(1) >= 60);
        assert!(com.density() >= 60);
    }

    #[test]
    #[should_panic(expected = "denser than the machine")]
    fn hotspot_density_bound() {
        hotspot(8, 4, 4, 1, 0);
    }

    #[test]
    fn powerlaw_is_skewed() {
        let com = powerlaw(64, 32, 1.2, 64, 3);
        let degs: Vec<usize> = (0..64).map(|i| com.out_degree(i)).collect();
        let max = *degs.iter().max().unwrap();
        let min = *degs.iter().min().unwrap();
        assert!(max >= 8 * min.max(1), "not skewed: max {max} min {min}");
        for &d in &degs {
            assert!(d >= 1);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            irregular_halo(4, 4, 100, 1, 50, 5),
            irregular_halo(4, 4, 100, 1, 50, 5)
        );
        assert_eq!(hotspot(32, 1, 3, 8, 9), hotspot(32, 1, 3, 8, 9));
        assert_eq!(powerlaw(32, 8, 1.0, 8, 9), powerlaw(32, 8, 1.0, 8, 9));
    }
}
