use std::fmt;
use std::sync::Arc;

use commsched::CommMatrix;

/// A named, cloneable, thread-safe handle to a seeded workload generator.
///
/// Experiment grids fan one workload point out to many scheduler columns
/// on many threads; a bare `Fn(u64) -> CommMatrix` closure cannot be
/// cloned into those cells, and a bare function pointer cannot carry its
/// parameters. `Generator` wraps the closure in an [`Arc`] (cloning is a
/// pointer copy) and pairs it with a stable `name` used for cell
/// addressing and reports.
///
/// Like every generator in this crate, the wrapped closure must be a
/// deterministic function of its seed.
///
/// ```
/// let g = workloads::Generator::dregular(16, 3, 1024);
/// let h = g.clone();
/// assert_eq!(g.generate(7), h.generate(7));
/// assert_eq!(g.name(), "dregular(n=16,d=3,M=1024)");
/// ```
#[derive(Clone)]
pub struct Generator {
    name: Arc<str>,
    f: Arc<dyn Fn(u64) -> CommMatrix + Send + Sync>,
}

impl Generator {
    /// Wrap `f` under `name`.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(u64) -> CommMatrix + Send + Sync + 'static,
    ) -> Self {
        Generator {
            name: name.into().into(),
            f: Arc::new(f),
        }
    }

    /// The stable label of this generator (workload-point addressing).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Generate the sample for `seed`.
    pub fn generate(&self, seed: u64) -> CommMatrix {
        (self.f)(seed)
    }

    /// [`crate::random_dregular`] at fixed `(n, d, bytes)`.
    pub fn dregular(n: usize, d: usize, bytes: u32) -> Self {
        Generator::new(format!("dregular(n={n},d={d},M={bytes})"), move |seed| {
            crate::random_dregular(n, d, bytes, seed)
        })
    }

    /// [`crate::random_dense`] at fixed `(n, d, bytes)`.
    pub fn dense(n: usize, d: usize, bytes: u32) -> Self {
        Generator::new(format!("dense(n={n},d={d},M={bytes})"), move |seed| {
            crate::random_dense(n, d, bytes, seed)
        })
    }

    /// [`crate::random_nonuniform`] at fixed `(n, d, min_bytes, max_bytes)`.
    pub fn nonuniform(n: usize, d: usize, min_bytes: u32, max_bytes: u32) -> Self {
        Generator::new(
            format!("nonuniform(n={n},d={d},M={min_bytes}..{max_bytes})"),
            move |seed| crate::random_nonuniform(n, d, min_bytes, max_bytes, seed),
        )
    }

    /// A fixed matrix, ignoring the seed — for grids over one concrete
    /// pattern (a halo exchange, a trace) instead of a sampled family.
    pub fn fixed(name: impl Into<String>, com: CommMatrix) -> Self {
        let com = Arc::new(com);
        Generator::new(name, move |_seed| (*com).clone())
    }

    /// [`crate::structured::torus_halo`] at fixed `(extents, bytes)` — a
    /// concrete pattern, so the seed is ignored.
    pub fn torus_halo(extents: &[usize], bytes: u32) -> Self {
        let spec = extents
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join("x");
        Generator::fixed(
            format!("torus_halo({spec},M={bytes})"),
            crate::structured::torus_halo(extents, bytes),
        )
    }

    /// [`crate::structured::torus_neighborhood`] at fixed
    /// `(extents, w, bytes)` — a concrete pattern, so the seed is ignored.
    pub fn torus_neighborhood(extents: &[usize], w: usize, bytes: u32) -> Self {
        let spec = extents
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join("x");
        Generator::fixed(
            format!("torus_hood({spec},w={w},M={bytes})"),
            crate::structured::torus_neighborhood(extents, w, bytes),
        )
    }
}

impl fmt::Debug for Generator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Generator")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_closure_and_agree() {
        let g = Generator::dregular(16, 4, 512);
        let h = g.clone();
        assert_eq!(g.generate(3), h.generate(3));
        assert_ne!(g.generate(3), g.generate(4));
    }

    #[test]
    fn fixed_ignores_the_seed() {
        let com = crate::random_dense(8, 2, 64, 1);
        let g = Generator::fixed("trace", com.clone());
        assert_eq!(g.generate(0), com);
        assert_eq!(g.generate(999), com);
        assert_eq!(g.name(), "trace");
    }

    #[test]
    fn handles_cross_threads() {
        let g = Generator::dregular(16, 3, 256);
        let expected = g.generate(11);
        let got = std::thread::spawn({
            let g = g.clone();
            move || g.generate(11)
        })
        .join()
        .unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn debug_shows_the_name_only() {
        let s = format!("{:?}", Generator::dense(8, 2, 64));
        assert!(s.contains("dense(n=8,d=2,M=64)"));
    }
}
