use commsched::CommMatrix;

/// The paper's experimental test set: `count` independently seeded samples
/// of one workload configuration ("the test set used in the experiments
/// contains 50 randomly generated samples for each density d").
///
/// Sample `k` of a set with base seed `s` uses seed `s * 1000 + k`, so sets
/// with different base seeds never share samples.
#[derive(Clone, Debug)]
pub struct SampleSet {
    base_seed: u64,
    count: usize,
}

impl SampleSet {
    /// The paper's default: 50 samples.
    pub fn paper(base_seed: u64) -> Self {
        Self::new(base_seed, 50)
    }

    /// A set of `count` samples derived from `base_seed`.
    ///
    /// An empty set (`count == 0`) is representable — consumers that need
    /// at least one sample must report that themselves (e.g.
    /// `ExperimentRunner::run_cell` returns an error) rather than assume
    /// construction already rejected it.
    pub fn new(base_seed: u64, count: usize) -> Self {
        SampleSet { base_seed, count }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the set has no samples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The seed of sample `k`.
    ///
    /// Wrapping arithmetic: base seeds span the full `u64` range (e.g.
    /// hashed ad-hoc scheduler ordinals mixed into grid base seeds), and
    /// a seed only needs to be deterministic and well-spread, not
    /// order-preserving.
    ///
    /// # Panics
    ///
    /// Panics if `k >= len()`.
    pub fn seed(&self, k: usize) -> u64 {
        assert!(k < self.count, "sample {k} out of {}", self.count);
        self.base_seed.wrapping_mul(1000).wrapping_add(k as u64)
    }

    /// All seeds of the set.
    pub fn seeds(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.count).map(|k| self.seed(k))
    }

    /// Generate every sample through `f`.
    pub fn generate(&self, f: impl Fn(u64) -> CommMatrix) -> Vec<CommMatrix> {
        self.seeds().map(f).collect()
    }

    /// Generate every sample of `g` — the [`crate::Generator`] form of
    /// [`SampleSet::generate`], for sweeps that pin the whole test set up
    /// front (e.g. fault sweeps re-pricing the same matrices under many
    /// link-cost models) instead of streaming seeds through a closure.
    pub fn realize(&self, g: &crate::Generator) -> Vec<CommMatrix> {
        self.generate(|seed| g.generate(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_dense;

    #[test]
    fn paper_set_has_fifty_samples() {
        let s = SampleSet::paper(1);
        assert_eq!(s.len(), 50);
        assert!(!s.is_empty());
    }

    #[test]
    fn seeds_are_distinct_within_and_across_sets() {
        let a = SampleSet::new(1, 50);
        let b = SampleSet::new(2, 50);
        let mut all: Vec<u64> = a.seeds().chain(b.seeds()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn generate_produces_distinct_matrices() {
        let set = SampleSet::new(3, 5);
        let mats = set.generate(|seed| random_dense(16, 3, 64, seed));
        assert_eq!(mats.len(), 5);
        assert_ne!(mats[0], mats[1]);
    }

    #[test]
    fn realize_matches_generate_over_the_same_seeds() {
        let set = SampleSet::new(7, 4);
        let g = crate::Generator::dregular(16, 3, 512);
        let via_realize = set.realize(&g);
        let via_generate = set.generate(|seed| crate::random_dregular(16, 3, 512, seed));
        assert_eq!(via_realize, via_generate);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn seed_bounds_checked() {
        SampleSet::new(1, 3).seed(3);
    }

    #[test]
    fn empty_sets_are_representable() {
        let s = SampleSet::new(9, 0);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.seeds().count(), 0);
        assert!(s.generate(|seed| random_dense(8, 2, 64, seed)).is_empty());
    }
}
