use commsched::CommMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// The paper's random test pattern: every node sends `bytes`-byte messages
/// to `d` distinct random destinations (Section 2.1, assumption 2: nodes
/// send and receive an *approximately* equal number of messages — the
/// in-degree here is `d` only in expectation).
///
/// # Panics
///
/// Panics if `d >= n` (a node cannot have `n-1 < d` distinct peers) or if
/// `bytes == 0`.
pub fn random_dense(n: usize, d: usize, bytes: u32, seed: u64) -> CommMatrix {
    assert!(d < n, "density {d} needs at least {} nodes, got {n}", d + 1);
    assert!(bytes > 0, "messages must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut com = CommMatrix::new(n);
    for i in 0..n {
        let mut placed = 0;
        while placed < d {
            let j = rng.random_range(0..n);
            if j != i && com.get(i, j) == 0 {
                com.set(i, j, bytes);
                placed += 1;
            }
        }
    }
    com
}

/// Exactly `d`-regular random traffic: in-degree AND out-degree are `d` at
/// every node, built as the superposition of `d` random fixed-point-free
/// permutations with pairwise-disjoint edges (a random `d`-layer Latin
/// rectangle). This is the regime of the paper's assumption 2, where the
/// density bound is tight: RS_N's `~d + log d` phase count holds here.
///
/// Each layer is found with the classic random-walk augmenting matcher:
/// every row picks a random allowed column; if the column is taken, it is
/// stolen and the previous owner re-picks. Hall's theorem guarantees a
/// perfect matching exists for every layer (`d < n`), and the random walk
/// finds it quickly in expectation.
///
/// # Panics
///
/// Panics if `d >= n` or `bytes == 0`.
pub fn random_dregular(n: usize, d: usize, bytes: u32, seed: u64) -> CommMatrix {
    assert!(d < n, "density {d} needs at least {} nodes, got {n}", d + 1);
    assert!(bytes > 0, "messages must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut com = CommMatrix::new(n);
    let mut order: Vec<usize> = (0..n).collect();
    for _layer in 0..d {
        loop {
            if let Some(assign) = try_matching_layer(&com, n, &mut order, &mut rng) {
                for (i, c) in assign.into_iter().enumerate() {
                    com.set(i, c, bytes);
                }
                break;
            }
            // Extremely unlikely (random-walk budget exhausted): retry the
            // layer with fresh randomness.
        }
    }
    com
}

/// One random perfect matching avoiding the diagonal and every edge already
/// present in `com`. Returns `None` if the random-walk budget runs out.
fn try_matching_layer(
    com: &CommMatrix,
    n: usize,
    order: &mut [usize],
    rng: &mut StdRng,
) -> Option<Vec<usize>> {
    let mut assign: Vec<Option<usize>> = vec![None; n];
    let mut col_owner: Vec<Option<usize>> = vec![None; n];
    order.shuffle(rng);
    let budget = 200 * n;
    let mut steps = 0usize;
    for &row in order.iter() {
        let mut i = row;
        loop {
            steps += 1;
            if steps > budget {
                return None;
            }
            // Random allowed column for row i (may steal an owned one).
            let mut c = rng.random_range(0..n);
            let mut tries = 0;
            while c == i || com.get(i, c) > 0 || assign[i] == Some(c) {
                c = rng.random_range(0..n);
                tries += 1;
                if tries > 8 * n {
                    return None; // row has (nearly) no allowed columns left
                }
            }
            assign[i] = Some(c);
            match col_owner[c].replace(i) {
                None => break,
                Some(prev) => {
                    assign[prev] = None;
                    i = prev;
                }
            }
        }
    }
    Some(
        assign
            .into_iter()
            .map(|c| c.expect("all rows matched"))
            .collect(),
    )
}

/// Random pattern with non-uniform message sizes drawn log-uniformly from
/// `[min_bytes, max_bytes]` (for the thesis-extension experiments).
///
/// # Panics
///
/// Panics if `d >= n` or the byte range is empty/zero.
pub fn random_nonuniform(
    n: usize,
    d: usize,
    min_bytes: u32,
    max_bytes: u32,
    seed: u64,
) -> CommMatrix {
    assert!(d < n, "density {d} needs at least {} nodes, got {n}", d + 1);
    assert!(
        0 < min_bytes && min_bytes <= max_bytes,
        "bad byte range {min_bytes}..={max_bytes}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut com = CommMatrix::new(n);
    let lo = (min_bytes as f64).ln();
    let hi = (max_bytes as f64).ln();
    for i in 0..n {
        let mut placed = 0;
        while placed < d {
            let j = rng.random_range(0..n);
            if j != i && com.get(i, j) == 0 {
                let b = (lo + (hi - lo) * rng.random_range(0.0..1.0)).exp() as u32;
                com.set(i, j, b.clamp(min_bytes, max_bytes));
                placed += 1;
            }
        }
    }
    com
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_has_exact_out_degree() {
        let com = random_dense(64, 8, 256, 1);
        for i in 0..64 {
            assert_eq!(com.out_degree(i), 8);
        }
        assert!(com.is_uniform());
        assert_eq!(com.message_count(), 64 * 8);
    }

    #[test]
    fn dense_in_degree_is_approximately_d() {
        let com = random_dense(64, 8, 256, 2);
        let max_in = (0..64).map(|j| com.in_degree(j)).max().unwrap();
        let min_in = (0..64).map(|j| com.in_degree(j)).min().unwrap();
        assert!(max_in <= 24, "in-degree blew up: {max_in}");
        assert!(min_in >= 1);
    }

    #[test]
    fn dense_is_deterministic_per_seed() {
        assert_eq!(random_dense(32, 4, 64, 9), random_dense(32, 4, 64, 9));
        assert_ne!(random_dense(32, 4, 64, 9), random_dense(32, 4, 64, 10));
    }

    #[test]
    #[should_panic(expected = "density")]
    fn dense_rejects_d_ge_n() {
        random_dense(8, 8, 64, 0);
    }

    #[test]
    fn dregular_has_exact_degrees_both_ways() {
        let com = random_dregular(32, 5, 128, 3);
        for i in 0..32 {
            assert_eq!(com.out_degree(i), 5);
            assert_eq!(com.in_degree(i), 5);
        }
        assert_eq!(com.density(), 5);
    }

    #[test]
    fn nonuniform_sizes_span_the_range() {
        let com = random_nonuniform(64, 6, 16, 131_072, 4);
        assert!(!com.is_uniform());
        for (_, _, b) in com.messages() {
            assert!((16..=131_072).contains(&b));
        }
        // Log-uniform should produce both small and large messages.
        let sizes: Vec<u32> = com.messages().map(|(_, _, b)| b).collect();
        assert!(sizes.iter().any(|&b| b < 1024));
        assert!(sizes.iter().any(|&b| b > 16_384));
    }

    #[test]
    #[should_panic(expected = "bad byte range")]
    fn nonuniform_rejects_empty_range() {
        random_nonuniform(8, 2, 100, 50, 0);
    }
}
