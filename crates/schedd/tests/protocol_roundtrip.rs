//! Property and adversarial tests of the `schedd` wire protocol: every
//! request/response frame — all 8 registry schedulers × both backends,
//! every error code, stats snapshots — encodes→decodes identically, and
//! every malformation (truncation at any byte offset, single-byte
//! corruption, hostile headers) surfaces as a typed
//! [`FrameError`]/[`DecodeError`], never a panic and never wrong data.

use std::sync::Arc;

use commcache::{Fingerprint, InstanceKey};
use commrt::{BackendKind, BackendReport, ContentionStats};
use commsched::{registry, CommMatrix, MatrixDelta};
use proptest::prelude::*;
use schedd::{
    read_frame, write_frame, DaemonStats, DecodeError, ErrorCode, ErrorReply, FrameError,
    LinkCostModel, ProtocolLimits, Request, Response, SchemeChoice, SubmitDeltaRequest,
    SubmitReply, SubmitRequest, TopologySpec,
};

/// The four cost-model kinds, cycled through the property tests.
fn cost_model_from(idx: usize) -> LinkCostModel {
    [
        LinkCostModel::Uniform,
        "loggp:o=75000,g=10000,G=1.5".parse().unwrap(),
        "hetero:factor=4.0,frac=0.1,lat=2000,seed=9"
            .parse()
            .unwrap(),
        "faulty:p=0.05,seed=42".parse().unwrap(),
    ][idx % 4]
}

/// Sparse matrix on `n = 2^dim` nodes from raw triples.
fn matrix_from(dim: u32, cells: &[(usize, usize, u32)]) -> CommMatrix {
    let n = 1usize << dim;
    let mut com = CommMatrix::new(n);
    for &(s, d, bytes) in cells {
        let (s, d) = (s % n, d % n);
        if s != d && com.get(s, d) == 0 {
            com.set(s, d, bytes.max(1));
        }
    }
    com
}

fn scheme_from(idx: usize) -> SchemeChoice {
    [SchemeChoice::S1, SchemeChoice::S2, SchemeChoice::Default][idx % 3]
}

fn frame(body: &[u8]) -> Vec<u8> {
    let mut wire = Vec::new();
    write_frame(&mut wire, body).expect("frame within bounds");
    wire
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn submit_requests_roundtrip_for_every_scheduler_and_backend(
        dim in 2u32..6,
        cells in proptest::collection::vec((0usize..32, 0usize..32, 1u32..65_536), 0..96),
        seed in 0u64..10_000,
        request_id in 0u64..u64::MAX,
        scheme_idx in 0usize..3,
        want_flag in 0u8..2,
        cost_idx in 0usize..4,
    ) {
        let matrix = matrix_from(dim, &cells);
        let want_schedule = want_flag == 1;
        for entry in registry::all() {
            for backend in BackendKind::all() {
                let req = Request::Submit(SubmitRequest {
                    request_id,
                    want_schedule,
                    topology: TopologySpec::Hypercube { dims: dim },
                    scheduler: entry.name().to_string(),
                    scheme: scheme_from(scheme_idx),
                    backend,
                    seed,
                    matrix: matrix.clone(),
                    cost_model: cost_model_from(cost_idx),
                });
                // Through the full framing layer, not just the body.
                let wire = frame(&req.encode());
                let body = read_frame(&mut wire.as_slice())
                    .expect("well-formed frame")
                    .expect("not EOF");
                prop_assert_eq!(Request::decode(&body).expect("decode"), req);
            }
        }
    }

    #[test]
    fn schedule_replies_roundtrip_for_every_scheduler(
        dim in 2u32..5,
        cells in proptest::collection::vec((0usize..16, 0usize..16, 1u32..4096), 1..48),
        seed in 0u64..1000,
        want_flag in 0u8..2,
        makespan in 0u64..u64::MAX,
        phase_ends in proptest::collection::vec(0u64..u64::MAX, 0..12),
    ) {
        let matrix = matrix_from(dim, &cells);
        let want_schedule = want_flag == 1;
        let cube = TopologySpec::Hypercube { dims: dim }.build();
        for entry in registry::all() {
            let schedule = entry.schedule(&matrix, cube.as_ref(), seed);
            let fp = Fingerprint::compute(&matrix, cube.as_ref(), entry.name(), seed);
            let resp = Response::Schedule(SubmitReply {
                request_id: seed,
                fingerprint: fp,
                freshly_compiled: want_schedule,
                estimate: BackendReport {
                    makespan_ns: makespan,
                    phase_end_ns: phase_ends.clone(),
                    contention: ContentionStats {
                        max_engine_busy_ns: makespan / 2,
                        max_link_busy_ns: makespan / 3,
                        contended_transfers: seed,
                        contended_phases: phase_ends.len(),
                    },
                },
                schedule: want_schedule.then(|| Arc::new(schedule)),
            });
            let wire = frame(&resp.encode());
            let body = read_frame(&mut wire.as_slice()).unwrap().unwrap();
            prop_assert_eq!(Response::decode(&body).expect("decode"), resp);
        }
    }

    #[test]
    fn delta_requests_roundtrip_and_truncations_are_typed(
        dim in 2u32..6,
        base_cells in proptest::collection::vec((0usize..32, 0usize..32, 1u32..65_536), 1..64),
        target_cells in proptest::collection::vec((0usize..32, 0usize..32, 1u32..65_536), 1..64),
        seed in 0u64..10_000,
        request_id in 0u64..u64::MAX,
        scheme_idx in 0usize..3,
        want_flag in 0u8..2,
        cut_pct in 0usize..100,
    ) {
        // A delta between two arbitrary sparse matrices exercises all
        // three edit lists (added/removed/resized) in one frame.
        let base = matrix_from(dim, &base_cells);
        let target = matrix_from(dim, &target_cells);
        let delta = MatrixDelta::diff(&base, &target).expect("same size");
        let cube = TopologySpec::Hypercube { dims: dim }.build();
        let key = InstanceKey::compute(&base, cube.as_ref());
        for entry in registry::all() {
            let req = Request::SubmitDelta(SubmitDeltaRequest {
                request_id,
                want_schedule: want_flag == 1,
                topology: TopologySpec::Hypercube { dims: dim },
                scheduler: entry.name().to_string(),
                scheme: scheme_from(scheme_idx),
                backend: BackendKind::all()[scheme_idx % 2],
                seed,
                base: key,
                delta: delta.clone(),
                cost_model: cost_model_from(scheme_idx),
            });
            let wire = frame(&req.encode());
            let body = read_frame(&mut wire.as_slice())
                .expect("well-formed frame")
                .expect("not EOF");
            prop_assert_eq!(Request::decode(&body).expect("decode"), req.clone());
            // Cutting the body at any offset must be a typed error,
            // never a panic and never a silently-shorter delta. Run on
            // the uniform encoding: for non-uniform requests a cut at
            // the optional cost-field boundary is, by design, a valid
            // shorter (uniform) request, not a malformation.
            let plain = match &req {
                Request::SubmitDelta(r) => {
                    let mut r = r.clone();
                    r.cost_model = LinkCostModel::Uniform;
                    r.encode()
                }
                _ => unreachable!(),
            };
            let cut = (plain.len() - 1) * cut_pct / 100;
            prop_assert!(Request::decode(&plain[..cut]).is_err());
        }
    }

    #[test]
    fn raised_limits_roundtrip_large_dims(
        dim in 11u32..13,
        cells in proptest::collection::vec((0usize..4096, 0usize..4096, 1u32..65_536), 0..64),
        seed in 0u64..10_000,
        request_id in 0u64..u64::MAX,
    ) {
        // Requests past the default 1024-node cap roundtrip unchanged
        // once the daemon raises its limits (--max-nodes), and the
        // default decoder keeps declining them with the typed error.
        let limits = ProtocolLimits::with_max_nodes(1 << 12);
        let req = Request::Submit(SubmitRequest {
            request_id,
            want_schedule: false,
            topology: TopologySpec::Hypercube { dims: dim },
            scheduler: "AC".into(),
            scheme: SchemeChoice::Default,
            backend: BackendKind::Analytic,
            seed,
            matrix: matrix_from(dim, &cells),
            cost_model: LinkCostModel::Uniform,
        });
        let wire = frame(&req.encode());
        let body = read_frame(&mut wire.as_slice()).unwrap().unwrap();
        prop_assert_eq!(Request::decode_with(&body, &limits).expect("decode"), req);
        prop_assert!(matches!(
            Request::decode(&body),
            Err(DecodeError::LimitExceeded { field: "topology.dims", .. })
        ));
    }

    #[test]
    fn stats_and_error_frames_roundtrip(
        fields in proptest::collection::vec(0u64..u64::MAX, 27..28),
        request_id in 0u64..u64::MAX,
        detail_seed in 0u64..u64::MAX,
    ) {
        let detail = format!("diagnostic detail {detail_seed}");
        let stats = DaemonStats {
            connections_accepted: fields[0],
            connections_active: fields[1],
            disconnects_midstream: fields[2],
            submits: fields[3],
            completed: fields[4],
            compiles: fields[5],
            coalesced: fields[6],
            cache_requests: fields[7],
            cache_mem_hits: fields[8],
            cache_store_hits: fields[9],
            cache_misses: fields[10],
            estimate_hits: fields[11],
            estimate_misses: fields[12],
            rejected_quota: fields[13],
            rejected_overload: fields[14],
            rejected_shutdown: fields[15],
            errors_malformed: fields[16],
            errors_other: fields[17],
            write_failures: fields[18],
            queue_depth: fields[19],
            inflight: fields[20],
            draining: fields[21],
            delta_submits: fields[22],
            incr_base_hits: fields[23],
            incr_patches: fields[24],
            incr_fallbacks: fields[25],
            incr_validation_rejections: fields[26],
        };
        let resp = Response::Stats { request_id, stats };
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        for code in ErrorCode::all() {
            let resp = Response::Error(ErrorReply {
                request_id,
                code,
                detail: detail.clone(),
            });
            let wire = frame(&resp.encode());
            let body = read_frame(&mut wire.as_slice()).unwrap().unwrap();
            prop_assert_eq!(Response::decode(&body).unwrap(), resp);
        }
    }

    #[test]
    fn truncation_at_any_offset_is_a_typed_error(
        cells in proptest::collection::vec((0usize..16, 0usize..16, 1u32..4096), 1..48),
        cut_pct in 0usize..100,
    ) {
        let req = Request::Submit(SubmitRequest {
            request_id: 42,
            want_schedule: true,
            topology: TopologySpec::Hypercube { dims: 4 },
            scheduler: "RS_NL".into(),
            scheme: SchemeChoice::Default,
            backend: BackendKind::Des,
            seed: 7,
            matrix: matrix_from(4, &cells),
            // Uniform on purpose: a non-uniform body cut exactly at the
            // optional cost-field boundary is a valid shorter request.
            cost_model: LinkCostModel::Uniform,
        });
        let wire = frame(&req.encode());
        let cut = (wire.len() - 1) * cut_pct / 100;
        // Cutting the wire mid-frame: read_frame must type the failure
        // (or report clean EOF for cut == 0), never panic.
        match read_frame(&mut &wire[..cut]) {
            Ok(None) => prop_assert!(cut == 0, "EOF only legal at a frame boundary"),
            Err(FrameError::Truncated) => {}
            other => prop_assert!(false, "cut at {}: expected Truncated, got {:?}", cut, other),
        }
        // Cutting the already-verified body mid-field: Request::decode
        // must type the failure too (in-process callers hit this path).
        let body = req.encode();
        let body_cut = (body.len() - 1) * cut_pct / 100;
        match Request::decode(&body[..body_cut]) {
            Err(_) => {}
            Ok(_) => prop_assert!(false, "decoded a body truncated at {}", body_cut),
        }
    }

    #[test]
    fn hostile_topology_arithmetic_never_panics(
        extents in proptest::collection::vec(0u32..=u32::MAX, 0..16),
        rows in 0u32..=u32::MAX,
        cols in 0u32..=u32::MAX,
        dims in 0u32..=u32::MAX,
        k in 0u32..=u32::MAX,
        max_nodes in 1u64..=u64::MAX,
    ) {
        // Hand-built specs bypass decode limits entirely: the node
        // arithmetic and the builders must be total. `num_nodes` used to
        // overflow on u32::MAX-extent tori (the protocol.rs:442 panic);
        // now it saturates and `try_build` types the rejection.
        let specs = [
            TopologySpec::Torus { extents: extents.clone() },
            TopologySpec::Mesh2d { rows, cols },
            TopologySpec::Hypercube { dims },
            TopologySpec::FatTree { k },
        ];
        for spec in &specs {
            let _ = spec.num_nodes();
            let _ = spec.try_build();
        }

        // The same hostility on the wire: a Submit prefix carrying the
        // raw extents must decode to a typed error (or a legal spec),
        // never a panic — under the default limits and under a daemon
        // that raised --max-nodes arbitrarily high.
        let mut torus = vec![2u8];
        torus.extend_from_slice(&(extents.len() as u32).to_le_bytes());
        for &e in &extents {
            torus.extend_from_slice(&e.to_le_bytes());
        }
        let mut mesh = vec![1u8];
        mesh.extend_from_slice(&rows.to_le_bytes());
        mesh.extend_from_slice(&cols.to_le_bytes());
        let raised = ProtocolLimits::with_max_nodes(max_nodes);
        for topo_bytes in [torus, mesh] {
            let mut body = vec![0x01u8]; // Submit
            body.extend_from_slice(&1u64.to_le_bytes()); // request_id
            body.push(0); // want_schedule
            body.extend_from_slice(&topo_bytes);
            // Truncated after the topology: any outcome but a panic.
            let _ = Request::decode(&body);
            let _ = Request::decode_with(&body, &raised);
        }
    }

    #[test]
    fn single_byte_corruption_is_always_caught(
        victim in 0usize..100_000,
        flip in 1u8..=255,
        cells in proptest::collection::vec((0usize..16, 0usize..16, 1u32..4096), 1..48),
    ) {
        let req = Request::Submit(SubmitRequest {
            request_id: 9,
            want_schedule: false,
            topology: TopologySpec::Hypercube { dims: 4 },
            scheduler: "AC".into(),
            scheme: SchemeChoice::S2,
            backend: BackendKind::Analytic,
            seed: 3,
            matrix: matrix_from(4, &cells),
            cost_model: cost_model_from(cells.len()),
        });
        let mut wire = frame(&req.encode());
        let at = victim % wire.len();
        wire[at] ^= flip;
        // Any single flipped byte must yield a typed frame error: a
        // magic/length/checksum flip fails framing, and a body flip
        // fails the FNV-1a-64 body checksum. A silently different
        // request must never come back.
        match read_frame(&mut wire.as_slice()) {
            Err(_) => {}
            Ok(body) => prop_assert!(false, "byte {} flipped undetected: {:?}", at, body),
        }
    }
}

#[test]
fn hostile_and_oversized_headers_are_typed_errors() {
    // Not our protocol at all.
    assert!(matches!(
        read_frame(&mut &b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"[..]),
        Err(FrameError::BadMagic(_))
    ));
    // Correct magic, absurd length claim: rejected before allocation.
    let mut wire = Vec::new();
    wire.extend_from_slice(b"SDF1");
    wire.extend_from_slice(&u32::MAX.to_le_bytes());
    wire.extend_from_slice(&[0u8; 64]);
    assert!(matches!(
        read_frame(&mut wire.as_slice()),
        Err(FrameError::Oversized(_))
    ));
    // Correct framing, hostile body: a Submit claiming 2^20 nodes must
    // be rejected by the node cap, not by allocating a 4 TiB matrix.
    let mut body = vec![0x01u8]; // Submit
    body.extend_from_slice(&1u64.to_le_bytes()); // request_id
    body.push(0); // want_schedule
    body.push(0); // hypercube
    body.extend_from_slice(&20u32.to_le_bytes()); // dims = 20 > default max_dims
    match Request::decode(&body) {
        Err(DecodeError::LimitExceeded { field, limit, .. }) => {
            assert_eq!(field, "topology.dims");
            assert_eq!(limit, 10);
        }
        other => panic!("expected LimitExceeded, got {other:?}"),
    }
    // Raising the node cap admits the *name* but keeps the allocation
    // bomb guard: the dense-matrix cell budget fires instead.
    let limits = ProtocolLimits::with_max_nodes(1 << 20);
    body.extend_from_slice(&2u32.to_le_bytes()); // scheduler = "AC"
    body.extend_from_slice(b"AC");
    body.push(2); // scheme default
    body.push(0); // backend des
    body.extend_from_slice(&0u64.to_le_bytes()); // seed
    body.extend_from_slice(&(1u64 << 20).to_le_bytes()); // n = 2^20
    body.extend_from_slice(&0u64.to_le_bytes()); // message count
    match Request::decode_with(&body, &limits) {
        Err(DecodeError::LimitExceeded { field, value, .. }) => {
            assert_eq!(field, "matrix.cells");
            assert_eq!(value, 1u64 << 40);
        }
        other => panic!("expected the cell budget, got {other:?}"),
    }
    // A message-count claim far past the body's end must be caught by
    // the bytes-remaining bound before any allocation.
    let mut body = vec![0x01u8];
    body.extend_from_slice(&1u64.to_le_bytes());
    body.push(0);
    body.push(0);
    body.extend_from_slice(&4u32.to_le_bytes()); // dims = 4
    body.extend_from_slice(&5u32.to_le_bytes()); // scheduler = "RS_NL"
    body.extend_from_slice(b"RS_NL");
    body.push(2); // scheme default
    body.push(0); // backend des
    body.extend_from_slice(&0u64.to_le_bytes()); // seed
    body.extend_from_slice(&16u64.to_le_bytes()); // n
    body.extend_from_slice(&u64::MAX.to_le_bytes()); // count bomb
    assert!(matches!(
        Request::decode(&body),
        Err(DecodeError::Truncated)
    ));
}

#[test]
fn delta_semantic_garbage_is_invalid_not_panic() {
    // One added message (0 -> 1, 64 bytes), nothing removed or resized:
    // the encoded tail is added_count(8) + triple(12) + removed_count(8)
    // + resized_count(8), which makes the offsets below exact.
    let base = CommMatrix::new(8);
    let mut target = CommMatrix::new(8);
    target.set(0, 1, 64);
    let delta = MatrixDelta::diff(&base, &target).unwrap();
    let cube = TopologySpec::Hypercube { dims: 3 }.build();
    let req = SubmitDeltaRequest {
        request_id: 5,
        want_schedule: false,
        topology: TopologySpec::Hypercube { dims: 3 },
        scheduler: "RS_NL".into(),
        scheme: SchemeChoice::Default,
        backend: BackendKind::Des,
        seed: 0,
        base: InstanceKey::compute(&base, cube.as_ref()),
        delta,
        cost_model: LinkCostModel::Uniform,
    };
    let body = req.encode();
    assert_eq!(
        Request::decode(&body).unwrap(),
        Request::SubmitDelta(req.clone())
    );

    // Zero-byte added message: matrix semantics rejected at decode.
    let mut zero_bytes = body.clone();
    let at = body.len() - 20; // the triple's `bytes` field
    zero_bytes[at..at + 4].copy_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        Request::decode(&zero_bytes),
        Err(DecodeError::Invalid(_))
    ));

    // Self-message: dst patched to equal src.
    let mut self_msg = body.clone();
    let at = body.len() - 24; // the triple's `dst` field
    self_msg[at..at + 4].copy_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        Request::decode(&self_msg),
        Err(DecodeError::Invalid(_))
    ));

    // Out-of-range endpoint on an 8-node topology.
    let mut out_of_range = body.clone();
    let at = body.len() - 28; // the triple's `src` field
    out_of_range[at..at + 4].copy_from_slice(&100u32.to_le_bytes());
    assert!(matches!(
        Request::decode(&out_of_range),
        Err(DecodeError::Invalid(_))
    ));

    // An added-count claim far past the body's end must be caught by
    // the bytes-remaining bound before any allocation.
    let mut count_bomb = body.clone();
    let at = body.len() - 36; // added_count
    count_bomb[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        Request::decode(&count_bomb),
        Err(DecodeError::Truncated)
    ));

    // A delta whose node count disagrees with its topology.
    let mut mismatched = req;
    mismatched.topology = TopologySpec::Hypercube { dims: 4 };
    assert!(matches!(
        Request::decode(&mismatched.encode()),
        Err(DecodeError::Invalid(_))
    ));
}

#[test]
fn semantic_garbage_is_invalid_not_panic() {
    let mut base = SubmitRequest {
        request_id: 1,
        want_schedule: false,
        topology: TopologySpec::Hypercube { dims: 3 },
        scheduler: "AC".into(),
        scheme: SchemeChoice::Default,
        backend: BackendKind::Des,
        seed: 0,
        matrix: CommMatrix::new(8),
        cost_model: LinkCostModel::Uniform,
    };
    base.matrix.set(0, 1, 64);
    // A topology/matrix size mismatch on the wire is rejected at decode.
    let mut mismatched = base.clone();
    mismatched.topology = TopologySpec::Hypercube { dims: 4 };
    assert!(matches!(
        Request::decode(&mismatched.encode()),
        Err(DecodeError::Invalid(_))
    ));
    // Mesh requests roundtrip too (the other topology arm).
    let mut mesh = base.clone();
    mesh.topology = TopologySpec::Mesh2d { rows: 2, cols: 4 };
    assert_eq!(
        Request::decode(&mesh.encode()).unwrap(),
        Request::Submit(mesh)
    );
    // Unknown kinds and torn trailing fields are typed. (A single
    // trailing byte reads as a torn optional cost-model field, so it is
    // truncation rather than trailing garbage.)
    assert!(matches!(
        Request::decode(&[0x55]),
        Err(DecodeError::BadKind(0x55))
    ));
    let mut trailing = base.encode();
    trailing.push(0xFF);
    assert!(matches!(
        Request::decode(&trailing),
        Err(DecodeError::Truncated)
    ));
    assert!(matches!(Request::decode(&[]), Err(DecodeError::Truncated)));
}
