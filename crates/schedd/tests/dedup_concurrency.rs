//! Concurrency contract of the dedup/batch stage: N threads submitting
//! the same fingerprint observe exactly one compile, distinct
//! fingerprints never coalesce, and a failing compile propagates the
//! same typed error to every coalesced waiter.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::thread;

use commrt::BackendKind;
use schedd::{
    SchemeChoice, ServiceConfig, ServiceError, ServiceState, SingleFlight, SubmitRequest,
    TopologySpec,
};

fn request(dims: u32, seed: u64) -> SubmitRequest {
    let n = 1usize << dims;
    SubmitRequest {
        request_id: seed,
        want_schedule: true,
        topology: TopologySpec::Hypercube { dims },
        scheduler: "RS_NL".into(),
        scheme: SchemeChoice::Default,
        backend: BackendKind::Analytic,
        seed,
        matrix: workloads::Generator::dregular(n, 4.min(n - 1), 1024).generate(seed),
        cost_model: schedd::LinkCostModel::Uniform,
    }
}

/// A gate that holds the flight leader inside its closure until every
/// expected waiter has piled onto the same key — makes "they ran
/// concurrently" a certainty instead of a sleep-length bet.
struct Gate {
    waiting: Mutex<usize>,
    cond: Condvar,
}

impl Gate {
    fn new() -> Gate {
        Gate {
            waiting: Mutex::new(0),
            cond: Condvar::new(),
        }
    }

    fn arrive(&self) {
        *self.waiting.lock().unwrap() += 1;
        self.cond.notify_all();
    }

    fn wait_for(&self, n: usize) {
        let mut waiting = self.waiting.lock().unwrap();
        while *waiting < n {
            waiting = self.cond.wait(waiting).unwrap();
        }
    }
}

#[test]
fn same_key_concurrent_callers_observe_one_execution() {
    const THREADS: usize = 8;
    let flight: Arc<SingleFlight<u64, u64, ServiceError>> = Arc::new(SingleFlight::new());
    let runs = Arc::new(AtomicUsize::new(0));
    let gate = Arc::new(Gate::new());

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let flight = Arc::clone(&flight);
            let runs = Arc::clone(&runs);
            let gate = Arc::clone(&gate);
            thread::spawn(move || {
                flight.run(42, || {
                    runs.fetch_add(1, Ordering::SeqCst);
                    // Leader: hold the flight open until every other
                    // thread has become a waiter on this key.
                    gate.wait_for(THREADS - 1);
                    Ok(7u64)
                })
            })
        })
        .collect();

    // Release the leader only once every other thread is observably
    // coalesced onto its flight.
    while flight.stats().coalesced < (THREADS - 1) as u64 {
        thread::yield_now();
    }
    for _ in 0..(THREADS - 1) {
        gate.arrive();
    }

    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one execution");
    assert!(results.iter().all(|(r, _)| *r == Ok(7)));
    assert_eq!(results.iter().filter(|(_, led)| *led).count(), 1);
    let stats = flight.stats();
    assert_eq!(stats.leads, 1);
    assert_eq!(stats.coalesced, (THREADS - 1) as u64);
    assert_eq!(flight.in_flight(), 0);
}

#[test]
fn same_fingerprint_submissions_compile_exactly_once() {
    const THREADS: usize = 6;
    let state = Arc::new(ServiceState::new(&ServiceConfig::default()));
    let req = request(4, 11);
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let state = Arc::clone(&state);
            let req = req.clone();
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                state.process(&req).expect("pipeline succeeds")
            })
        })
        .collect();
    let replies: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Exactly one compile no matter how the threads interleaved: the
    // cache counts exactly one miss, the service exactly one compile,
    // and exactly one reply carries freshly_compiled.
    assert_eq!(state.cache_stats().misses, 1);
    assert_eq!(state.compiles(), 1);
    assert_eq!(
        replies.iter().filter(|r| r.freshly_compiled).count(),
        1,
        "exactly one reply observed the compile"
    );
    // Every reply is byte-identical: same fingerprint, same schedule,
    // same estimate.
    let first = &replies[0];
    for reply in &replies {
        assert_eq!(reply.fingerprint, first.fingerprint);
        assert_eq!(reply.schedule, first.schedule);
        assert_eq!(reply.estimate, first.estimate);
    }
}

#[test]
fn distinct_fingerprints_never_coalesce() {
    const THREADS: usize = 6;
    let state = Arc::new(ServiceState::new(&ServiceConfig::default()));
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let state = Arc::clone(&state);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                // Distinct seeds → distinct fingerprints.
                state
                    .process(&request(4, i as u64))
                    .expect("pipeline succeeds")
            })
        })
        .collect();
    let replies: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    assert_eq!(state.cache_stats().misses, THREADS as u64);
    assert_eq!(state.compiles(), THREADS as u64);
    assert_eq!(state.flight_stats().coalesced, 0, "nothing coalesced");
    assert!(replies.iter().all(|r| r.freshly_compiled));
    let distinct: std::collections::HashSet<_> = replies.iter().map(|r| r.fingerprint).collect();
    assert_eq!(distinct.len(), THREADS);
}

#[test]
fn failing_compile_propagates_the_same_error_to_every_waiter() {
    const THREADS: usize = 6;
    let flight: Arc<SingleFlight<u64, u64, ServiceError>> = Arc::new(SingleFlight::new());
    let gate = Arc::new(Gate::new());
    let attempts = Arc::new(AtomicUsize::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let flight = Arc::clone(&flight);
            let gate = Arc::clone(&gate);
            let attempts = Arc::clone(&attempts);
            thread::spawn(move || {
                flight.run(9, || {
                    attempts.fetch_add(1, Ordering::SeqCst);
                    gate.wait_for(THREADS - 1);
                    Err(ServiceError::Sim("injected backend failure".into()))
                })
            })
        })
        .collect();

    while flight.stats().coalesced < (THREADS - 1) as u64 {
        thread::yield_now();
    }
    for _ in 0..(THREADS - 1) {
        gate.arrive();
    }

    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(attempts.load(Ordering::SeqCst), 1, "one failing compile");
    let expected = ServiceError::Sim("injected backend failure".into());
    for (result, _) in &results {
        assert_eq!(result.as_ref().unwrap_err(), &expected);
    }
    // The error is per-flight, not sticky: a later call retries fresh.
    let (retry, led) = flight.run(9, || Ok(1));
    assert_eq!((retry, led), (Ok(1), true));
}

#[test]
fn interleaved_duplicate_mix_compiles_each_unique_once() {
    // A duplicate-heavy mix from many threads: every unique fingerprint
    // compiles exactly once regardless of interleaving — the service
    // invariant the schedload benchmark measures at scale.
    const THREADS: usize = 4;
    const PER_THREAD: usize = 40;
    const UNIQUE: u64 = 5;
    let state = Arc::new(ServiceState::new(&ServiceConfig::default()));
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let state = Arc::clone(&state);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for i in 0..PER_THREAD {
                    let seed = ((t * PER_THREAD + i) as u64 * 7) % UNIQUE;
                    let reply = state.process(&request(3, seed)).expect("pipeline succeeds");
                    assert_eq!(reply.request_id, seed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(state.compiles(), UNIQUE);
    assert_eq!(state.cache_stats().misses, UNIQUE);
    let total = (THREADS * PER_THREAD) as u64;
    assert_eq!(
        state.cache_stats().requests + state.flight_stats().coalesced,
        total
    );
}
