//! Fault injection against a live (in-process) daemon: mid-stream
//! disconnects, hostile frame headers, quota exhaustion, and full-queue
//! overload each surface their documented typed error — and the daemon
//! keeps serving, proven by a follow-up successful request in the same
//! test.

use std::io::Write;
use std::path::PathBuf;

use commrt::BackendKind;
use schedd::{
    Client, ClientError, Endpoint, ErrorCode, Request, Response, SchemeChoice, Server,
    ServerHandle, ServiceConfig, SubmitRequest, TopologySpec,
};

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("schedd-fault-{tag}-{}.sock", std::process::id()))
}

fn start(tag: &str, config: ServiceConfig) -> (ServerHandle, Endpoint) {
    let endpoint = Endpoint::Unix(sock_path(tag));
    let handle = Server::start(config, &endpoint).expect("daemon starts");
    (handle, endpoint)
}

fn request(seed: u64) -> SubmitRequest {
    SubmitRequest {
        request_id: 0,
        want_schedule: false,
        topology: TopologySpec::Hypercube { dims: 3 },
        scheduler: "RS_NL".into(),
        scheme: SchemeChoice::Default,
        backend: BackendKind::Analytic,
        seed,
        matrix: workloads::Generator::dregular(8, 3, 512).generate(seed),
        cost_model: schedd::LinkCostModel::Uniform,
    }
}

/// The "daemon still serves" probe every fault test ends with.
fn assert_serving(endpoint: &Endpoint, seed: u64) {
    let mut client = Client::connect(endpoint).expect("connect after fault");
    let reply = client.submit(request(seed)).expect("daemon still serves");
    assert!(reply.estimate.makespan_ns > 0);
}

#[test]
fn disconnect_mid_frame_is_counted_and_survived() {
    let (handle, endpoint) = start("midstream", ServiceConfig::default());
    // Write half a frame, then vanish.
    {
        let mut stream = endpoint.connect().unwrap();
        stream.write_all(b"SDF1").unwrap();
        stream.write_all(&100u32.to_le_bytes()).unwrap();
        stream.write_all(&[0u8; 10]).unwrap(); // 90 bytes short
    }
    // The daemon notices the torn stream and keeps serving.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while handle.stats().disconnects_midstream == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "disconnect not observed"
        );
        std::thread::yield_now();
    }
    assert_serving(&endpoint, 1);
    assert_eq!(handle.stats().disconnects_midstream, 1);
    handle.shutdown();
}

#[test]
fn hostile_headers_get_typed_errors_and_do_not_kill_the_daemon() {
    let (handle, endpoint) = start("hostile", ServiceConfig::default());

    // Wrong magic: the daemon answers Malformed, then hangs up.
    {
        let mut stream = endpoint.connect().unwrap();
        stream
            .write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        stream.flush().unwrap();
        let resp = schedd::read_frame(&mut stream)
            .expect("error frame arrives")
            .map(|body| Response::decode(&body).expect("decodes"));
        match resp {
            Some(Response::Error(err)) => assert_eq!(err.code, ErrorCode::Malformed),
            other => panic!("expected Malformed error frame, got {other:?}"),
        }
    }

    // Oversized length header: same typed rejection.
    {
        let mut stream = endpoint.connect().unwrap();
        stream.write_all(b"SDF1").unwrap();
        stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
        stream.flush().unwrap();
        let resp = schedd::read_frame(&mut stream)
            .expect("error frame arrives")
            .map(|body| Response::decode(&body).expect("decodes"));
        match resp {
            Some(Response::Error(err)) => assert_eq!(err.code, ErrorCode::Malformed),
            other => panic!("expected Malformed error frame, got {other:?}"),
        }
    }

    // Corrupted body checksum: typed rejection again.
    {
        let mut stream = endpoint.connect().unwrap();
        let mut wire = Vec::new();
        schedd::write_frame(&mut wire, &Request::Stats { request_id: 1 }.encode()).unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        stream.write_all(&wire).unwrap();
        stream.flush().unwrap();
        let resp = schedd::read_frame(&mut stream)
            .expect("error frame arrives")
            .map(|body| Response::decode(&body).expect("decodes"));
        match resp {
            Some(Response::Error(err)) => assert_eq!(err.code, ErrorCode::Malformed),
            other => panic!("expected Malformed error frame, got {other:?}"),
        }
    }

    // A well-framed but undecodable body: Malformed, and the SAME
    // connection stays usable (framing survived).
    {
        let mut client = Client::connect(&endpoint).unwrap();
        let mut stream = endpoint.connect().unwrap();
        let mut wire = Vec::new();
        schedd::write_frame(&mut wire, &[0x55, 1, 2, 3]).unwrap();
        stream.write_all(&wire).unwrap();
        stream.flush().unwrap();
        let body = schedd::read_frame(&mut stream).unwrap().unwrap();
        match Response::decode(&body).unwrap() {
            Response::Error(err) => {
                assert_eq!(err.code, ErrorCode::Malformed);
                assert_eq!(err.request_id, 0, "id unknown for undecodable bodies");
            }
            other => panic!("expected error, got {other:?}"),
        }
        drop(stream);
        let reply = client.submit(request(2)).expect("same daemon still serves");
        assert!(reply.freshly_compiled);
    }

    assert!(handle.stats().errors_malformed >= 4);
    assert_serving(&endpoint, 3);
    handle.shutdown();
}

#[test]
fn unknown_scheduler_and_bad_topology_are_typed_not_fatal() {
    let (handle, endpoint) = start("admission", ServiceConfig::default());
    let mut client = Client::connect(&endpoint).unwrap();

    let mut unknown = request(1);
    unknown.scheduler = "NO_SUCH_ALGORITHM".into();
    match client.submit(unknown) {
        Err(ClientError::Server(err)) => assert_eq!(err.code, ErrorCode::UnknownScheduler),
        other => panic!("expected UnknownScheduler, got {other:?}"),
    }

    // LP declines meshes: UnsupportedTopology through the wire.
    let mut mesh = request(1);
    mesh.scheduler = "LP".into();
    mesh.topology = TopologySpec::Mesh2d { rows: 2, cols: 4 };
    mesh.matrix = {
        let mut m = commsched::CommMatrix::new(8);
        m.set(0, 1, 64);
        m
    };
    match client.submit(mesh) {
        Err(ClientError::Server(err)) => assert_eq!(err.code, ErrorCode::UnsupportedTopology),
        other => panic!("expected UnsupportedTopology, got {other:?}"),
    }

    // The very same connection still serves good requests.
    let reply = client.submit(request(1)).expect("still serving");
    assert!(reply.estimate.makespan_ns > 0);
    assert_eq!(handle.stats().errors_other, 2);
    handle.shutdown();
}

#[test]
fn quota_exhaustion_is_typed_and_recoverable() {
    let quota = 4;
    let (handle, endpoint) = start(
        "quota",
        ServiceConfig {
            max_inflight_per_client: quota,
            ..ServiceConfig::default()
        },
    );
    // Freeze the workers so in-flight occupancy is deterministic.
    handle.pause_workers();

    let mut client = Client::connect(&endpoint).unwrap();
    for _ in 0..quota {
        let id = client.next_request_id();
        let mut req = request(9);
        req.request_id = id;
        client.send(&Request::Submit(req)).unwrap();
    }
    // The quota is full; one more submit is rejected immediately.
    let overflow_id = client.next_request_id();
    let mut overflow = request(9);
    overflow.request_id = overflow_id;
    client.send(&Request::Submit(overflow)).unwrap();
    match client
        .recv()
        .expect("rejection arrives while workers are paused")
    {
        Response::Error(err) => {
            assert_eq!(err.code, ErrorCode::QuotaExceeded);
            assert_eq!(err.request_id, overflow_id);
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    assert_eq!(handle.stats().rejected_quota, 1);

    // Unfreeze: the queued work completes, the quota frees up, and the
    // same connection serves again.
    handle.resume_workers();
    for _ in 0..quota {
        match client.recv().expect("queued responses drain") {
            Response::Schedule(_) => {}
            other => panic!("expected schedules, got {other:?}"),
        }
    }
    let reply = client.submit(request(9)).expect("quota freed");
    assert!(!reply.freshly_compiled, "duplicate of the drained requests");
    handle.shutdown();
}

#[test]
fn full_queue_overload_is_typed_and_recoverable() {
    let (handle, endpoint) = start(
        "overload",
        ServiceConfig {
            queue_capacity: 2,
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    handle.pause_workers();

    let mut client = Client::connect(&endpoint).unwrap();
    for _ in 0..2 {
        let id = client.next_request_id();
        let mut req = request(5);
        req.request_id = id;
        client.send(&Request::Submit(req)).unwrap();
    }
    // Queue depth 2 reached; the next submit overflows.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while handle.stats().queue_depth < 2 {
        assert!(std::time::Instant::now() < deadline, "queue never filled");
        std::thread::yield_now();
    }
    let overflow_id = client.next_request_id();
    let mut overflow = request(5);
    overflow.request_id = overflow_id;
    client.send(&Request::Submit(overflow)).unwrap();
    match client.recv().expect("overload rejection arrives") {
        Response::Error(err) => {
            assert_eq!(err.code, ErrorCode::Overloaded);
            assert_eq!(err.request_id, overflow_id);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(handle.stats().rejected_overload, 1);

    handle.resume_workers();
    for _ in 0..2 {
        match client.recv().expect("queued responses drain") {
            Response::Schedule(_) => {}
            other => panic!("expected schedules, got {other:?}"),
        }
    }
    assert_serving(&endpoint, 5);
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_admitted_work_and_rejects_new() {
    let (handle, endpoint) = start("drain", ServiceConfig::default());
    let mut client = Client::connect(&endpoint).unwrap();
    handle.pause_workers();

    // Admit work, then request shutdown while it is still queued.
    let id = client.next_request_id();
    let mut req = request(7);
    req.request_id = id;
    client.send(&Request::Submit(req)).unwrap();
    let shutdown_id = client.next_request_id();
    client
        .send(&Request::Shutdown {
            request_id: shutdown_id,
        })
        .unwrap();
    match client.recv().expect("ack arrives") {
        Response::ShutdownAck { request_id } => assert_eq!(request_id, shutdown_id),
        other => panic!("expected ack, got {other:?}"),
    }

    // New submits are now rejected with ShuttingDown...
    let late_id = client.next_request_id();
    let mut late = request(8);
    late.request_id = late_id;
    client.send(&Request::Submit(late)).unwrap();
    match client.recv().expect("rejection arrives") {
        Response::Error(err) => {
            assert_eq!(err.code, ErrorCode::ShuttingDown);
            assert_eq!(err.request_id, late_id);
        }
        other => panic!("expected ShuttingDown, got {other:?}"),
    }

    // ...but the admitted job is still served during the drain (workers
    // are paused; shutdown() closes the queue, which overrides pause).
    let drainer = std::thread::spawn(move || handle.shutdown());
    match client.recv().expect("drained response arrives") {
        Response::Schedule(reply) => assert_eq!(reply.request_id, id),
        other => panic!("expected drained schedule, got {other:?}"),
    }
    drainer.join().unwrap();
    // The socket is gone: connecting now fails.
    assert!(Client::connect(&endpoint).is_err());
}
