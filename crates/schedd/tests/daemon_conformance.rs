//! Differential conformance: for a pinned request set (dims 2–6, every
//! registry entry, both backends), responses served through a live
//! daemon are **byte-identical** to in-process library calls — same
//! schedule (compared as commcache artifact bytes), same estimate, same
//! fingerprint. The daemon is a transport, never a semantic layer.

use commcache::{encode_artifact, CacheConfig, Fingerprint, InstanceKey};
use commrt::{run_schedule, BackendKind, Scheme};
use commsched::{registry, MatrixDelta};
use schedd::{
    Client, ClientError, Endpoint, ErrorCode, Request, Response, SchemeChoice, Server,
    ServiceConfig, SubmitDeltaRequest, SubmitRequest, TopologySpec,
};
use simnet::MachineParams;
use workloads::Generator;

/// The pinned request set: one d-regular instance per dimension.
fn pinned_requests() -> Vec<SubmitRequest> {
    let mut requests = Vec::new();
    for dims in 2u32..=6 {
        let n = 1usize << dims;
        let matrix = Generator::dregular(n, 3.min(n - 1), 2048).generate(u64::from(dims));
        for entry in registry::all() {
            for backend in BackendKind::all() {
                requests.push(SubmitRequest {
                    request_id: 0,
                    want_schedule: true,
                    topology: TopologySpec::Hypercube { dims },
                    scheduler: entry.name().to_string(),
                    scheme: SchemeChoice::Default,
                    backend,
                    seed: 1000 + u64::from(dims),
                    matrix: matrix.clone(),
                    cost_model: schedd::LinkCostModel::Uniform,
                });
            }
        }
    }
    requests
}

#[test]
fn daemon_responses_are_byte_identical_to_in_process_calls() {
    let endpoint = Endpoint::Unix(
        std::env::temp_dir().join(format!("schedd-conf-{}.sock", std::process::id())),
    );
    let handle = Server::start(ServiceConfig::default(), &endpoint).expect("daemon starts");
    let mut client = Client::connect(&endpoint).expect("connect");
    let params = MachineParams::ipsc860();

    let requests = pinned_requests();
    assert_eq!(
        requests.len(),
        5 * registry::all().len() * 2,
        "5 dims x 8 entries x 2 backends"
    );

    for req in &requests {
        let reply = client
            .submit(req.clone())
            .unwrap_or_else(|e| panic!("{} dims={}: {e}", req.scheduler, req.topology));

        // In-process reference: the same calls the daemon's pipeline
        // must reduce to.
        let entry = registry::find(&req.scheduler).unwrap();
        let topo = req.topology.build();
        let expect_schedule = entry.schedule(&req.matrix, topo.as_ref(), req.seed);
        let expect_fp = Fingerprint::compute(&req.matrix, topo.as_ref(), entry.name(), req.seed);
        let scheme = Scheme::for_scheduler(entry);
        let expect_estimate = req
            .backend
            .backend()
            .estimate(
                &params,
                topo.as_ref(),
                &req.matrix,
                &expect_schedule,
                scheme,
            )
            .expect("in-process estimate succeeds");

        assert_eq!(reply.fingerprint, expect_fp, "{}", req.scheduler);
        assert_eq!(reply.estimate, expect_estimate, "{}", req.scheduler);
        // Byte-level, not just structural: the artifact encoding of the
        // schedule the daemon returned equals the artifact encoding of
        // the locally compiled one.
        let got_schedule = reply.schedule.as_ref().expect("schedule streamed back");
        assert_eq!(
            encode_artifact(reply.fingerprint, got_schedule),
            encode_artifact(expect_fp, &expect_schedule),
            "{} dims={}",
            req.scheduler,
            req.topology
        );

        // The DES estimate must agree with the raw simulator run —
        // the daemon inherits the backend conformance contract.
        if req.backend == BackendKind::Des {
            let sim = run_schedule(
                topo.as_ref(),
                &params,
                &req.matrix,
                &expect_schedule,
                scheme,
            )
            .expect("simulation succeeds");
            assert_eq!(
                reply.estimate.makespan_ns, sim.makespan_ns,
                "{}",
                req.scheduler
            );
        }
    }

    // Replaying the full set: every schedule is already cached, no new
    // compiles, and the bytes are *still* identical.
    let compiles_after_first_pass = handle.stats().compiles;
    for req in &requests {
        let reply = client.submit(req.clone()).expect("replay succeeds");
        assert!(
            !reply.freshly_compiled,
            "{} replay recompiled",
            req.scheduler
        );
        let entry = registry::find(&req.scheduler).unwrap();
        let topo = req.topology.build();
        let expect_schedule = entry.schedule(&req.matrix, topo.as_ref(), req.seed);
        assert_eq!(
            encode_artifact(reply.fingerprint, reply.schedule.as_ref().unwrap()),
            encode_artifact(reply.fingerprint, &expect_schedule),
        );
    }
    assert_eq!(handle.stats().compiles, compiles_after_first_pass);

    // One compile per unique (matrix, scheduler, seed): backends share
    // the fingerprint, so 5 dims x 8 entries.
    assert_eq!(compiles_after_first_pass, 5 * registry::all().len() as u64);
    handle.shutdown();
}

#[test]
fn delta_submits_are_byte_identical_to_full_submits() {
    // Daemons A and B run identical incremental configurations and are
    // seeded with the same base. A answers a `SubmitDelta`; B answers a
    // full submit of the same perturbed matrix. The reply frames must
    // be **byte-identical**: the delta frame is transport compression,
    // and patching is deterministic across processes — two daemons
    // given the same base and the same drift serve the same schedule.
    let endpoint_a = Endpoint::Unix(
        std::env::temp_dir().join(format!("schedd-delta-a-{}.sock", std::process::id())),
    );
    let endpoint_b = Endpoint::Unix(
        std::env::temp_dir().join(format!("schedd-delta-b-{}.sock", std::process::id())),
    );
    let incremental_config = ServiceConfig {
        cache: CacheConfig::in_memory().incremental_default(),
        ..Default::default()
    };
    let daemon_a = Server::start(incremental_config.clone(), &endpoint_a).expect("daemon A starts");
    let daemon_b = Server::start(incremental_config, &endpoint_b).expect("daemon B starts");
    let mut client_a = Client::connect(&endpoint_a).expect("connect A");
    let mut client_b = Client::connect(&endpoint_b).expect("connect B");

    let dims = 4u32;
    let base = Generator::dregular(16, 4, 2048).generate(99);
    let cube = TopologySpec::Hypercube { dims }.build();
    let base_key = InstanceKey::compute(&base, cube.as_ref());

    // ~1% perturbation: drop one message, add one elsewhere.
    let mut target = base.clone();
    let (src, dst, _) = base.messages().next().expect("non-empty base");
    target.set(src.index(), dst.index(), 0);
    let free_dst = (0..16)
        .find(|&d| d != src.index() && target.get(src.index(), d) == 0)
        .expect("sparse row has a free cell");
    target.set(src.index(), free_dst, 512);
    let delta = MatrixDelta::diff(&base, &target).expect("same size");

    for (i, entry) in registry::all().iter().enumerate() {
        let request_id = 1000 + i as u64;
        // Seed both daemons with the base so each has the same schedule
        // to patch from.
        for client in [&mut client_a, &mut client_b] {
            client
                .submit(SubmitRequest {
                    request_id: 0,
                    want_schedule: true,
                    topology: TopologySpec::Hypercube { dims },
                    scheduler: entry.name().to_string(),
                    scheme: SchemeChoice::Default,
                    backend: BackendKind::Des,
                    seed: 7,
                    matrix: base.clone(),
                    cost_model: schedd::LinkCostModel::Uniform,
                })
                .expect("base submit");
        }

        // Raw send/recv so both daemons see the same request_id and the
        // response frames can be compared byte for byte.
        client_a
            .send(&Request::SubmitDelta(SubmitDeltaRequest {
                request_id,
                want_schedule: true,
                topology: TopologySpec::Hypercube { dims },
                scheduler: entry.name().to_string(),
                scheme: SchemeChoice::Default,
                backend: BackendKind::Des,
                seed: 7,
                base: base_key,
                delta: delta.clone(),
                cost_model: schedd::LinkCostModel::Uniform,
            }))
            .expect("send delta");
        let via_delta = client_a.recv().expect("delta reply");

        client_b
            .send(&Request::Submit(SubmitRequest {
                request_id,
                want_schedule: true,
                topology: TopologySpec::Hypercube { dims },
                scheduler: entry.name().to_string(),
                scheme: SchemeChoice::Default,
                backend: BackendKind::Des,
                seed: 7,
                matrix: target.clone(),
                cost_model: schedd::LinkCostModel::Uniform,
            }))
            .expect("send full");
        let via_full = client_b.recv().expect("full reply");

        assert!(
            matches!(via_delta, Response::Schedule(_)),
            "{}: delta submit failed: {via_delta:?}",
            entry.name()
        );
        assert_eq!(
            via_delta.encode(),
            via_full.encode(),
            "{}: delta and full replies differ",
            entry.name()
        );
    }

    // The patching schedulers served their deltas by patching; AC (and
    // any validation reject) fell back — but every delta was answered.
    let stats = daemon_a.stats();
    assert_eq!(stats.delta_submits, registry::all().len() as u64);
    assert!(
        stats.incr_patches >= 6,
        "expected most registry entries to patch, got {}",
        stats.incr_patches
    );
    assert_eq!(stats.incr_validation_rejections, 0);
    assert!(stats.patch_rate() > 0.5);

    // A delta against a base the daemon never saw is a typed
    // unknown-base error, and the client-side fallback (full submit)
    // then succeeds.
    let bogus = InstanceKey::from_bytes([0xAB; 16]);
    let err = client_a
        .submit_delta(SubmitDeltaRequest {
            request_id: 0,
            want_schedule: false,
            topology: TopologySpec::Hypercube { dims },
            scheduler: "RS_NL".into(),
            scheme: SchemeChoice::Default,
            backend: BackendKind::Des,
            seed: 7,
            base: bogus,
            delta: delta.clone(),
            cost_model: schedd::LinkCostModel::Uniform,
        })
        .expect_err("unknown base must not be served");
    match err {
        ClientError::Server(reply) => assert_eq!(reply.code, ErrorCode::UnknownBase),
        other => panic!("expected a typed server error, got {other:?}"),
    }

    // A daemon without the incremental layer declines every delta with
    // the same recoverable code.
    let endpoint_plain = Endpoint::Unix(
        std::env::temp_dir().join(format!("schedd-delta-plain-{}.sock", std::process::id())),
    );
    let daemon_plain =
        Server::start(ServiceConfig::default(), &endpoint_plain).expect("plain daemon starts");
    let err = Client::connect(&endpoint_plain)
        .expect("connect plain")
        .submit_delta(SubmitDeltaRequest {
            request_id: 0,
            want_schedule: false,
            topology: TopologySpec::Hypercube { dims },
            scheduler: "RS_NL".into(),
            scheme: SchemeChoice::Default,
            backend: BackendKind::Des,
            seed: 7,
            base: base_key,
            delta,
            cost_model: schedd::LinkCostModel::Uniform,
        })
        .expect_err("non-incremental daemon must decline deltas");
    match err {
        ClientError::Server(reply) => assert_eq!(reply.code, ErrorCode::UnknownBase),
        other => panic!("expected a typed server error, got {other:?}"),
    }

    daemon_a.shutdown();
    daemon_b.shutdown();
    daemon_plain.shutdown();
}

#[test]
fn torus_and_fattree_submits_conform_too() {
    // The new wire kinds inherit the transport contract: replies for
    // torus and fat-tree submits are byte-identical (as artifact bytes)
    // to in-process compiles, estimates match on both backends, and a
    // scheduler that declines the fabric declines with the same typed
    // code through the socket as in-process.
    let endpoint = Endpoint::Unix(
        std::env::temp_dir().join(format!("schedd-conf-topo-{}.sock", std::process::id())),
    );
    let handle = Server::start(ServiceConfig::default(), &endpoint).expect("daemon starts");
    let mut client = Client::connect(&endpoint).expect("connect");
    let params = MachineParams::ipsc860();

    let specs = [
        TopologySpec::Torus {
            extents: vec![4, 4],
        },
        TopologySpec::Torus {
            extents: vec![2, 2, 2, 2],
        },
        TopologySpec::FatTree { k: 4 },
    ];
    let matrix = Generator::dregular(16, 3, 2048).generate(41);
    let mut served = 0u32;
    let mut declined = 0u32;
    for spec in &specs {
        let topo = spec.build();
        for entry in registry::all() {
            let supported = entry.supports_topology(topo.as_ref());
            for backend in BackendKind::all() {
                let req = SubmitRequest {
                    request_id: 0,
                    want_schedule: true,
                    topology: spec.clone(),
                    scheduler: entry.name().to_string(),
                    scheme: SchemeChoice::Default,
                    backend,
                    seed: 7,
                    matrix: matrix.clone(),
                    cost_model: schedd::LinkCostModel::Uniform,
                };
                if !supported {
                    let err = client
                        .submit(req)
                        .expect_err("unsupported fabric must decline");
                    match err {
                        ClientError::Server(reply) => {
                            assert_eq!(
                                reply.code,
                                ErrorCode::UnsupportedTopology,
                                "{} on {spec}",
                                entry.name()
                            );
                        }
                        other => panic!("expected a typed decline, got {other:?}"),
                    }
                    declined += 1;
                    continue;
                }
                let reply = client
                    .submit(req.clone())
                    .unwrap_or_else(|e| panic!("{} on {spec}: {e}", entry.name()));
                let expect_schedule = entry.schedule(&req.matrix, topo.as_ref(), req.seed);
                let expect_fp =
                    Fingerprint::compute(&req.matrix, topo.as_ref(), entry.name(), req.seed);
                let scheme = Scheme::for_scheduler(*entry);
                let expect_estimate = backend
                    .backend()
                    .estimate(
                        &params,
                        topo.as_ref(),
                        &req.matrix,
                        &expect_schedule,
                        scheme,
                    )
                    .expect("in-process estimate succeeds");
                assert_eq!(reply.fingerprint, expect_fp, "{} on {spec}", entry.name());
                assert_eq!(
                    reply.estimate,
                    expect_estimate,
                    "{} on {spec}",
                    entry.name()
                );
                assert_eq!(
                    encode_artifact(reply.fingerprint, reply.schedule.as_ref().unwrap()),
                    encode_artifact(expect_fp, &expect_schedule),
                    "{} on {spec}",
                    entry.name()
                );
                served += 1;
            }
        }
    }
    // LP declines all three non-cube fabrics on both backends; everyone
    // else serves them.
    assert_eq!(declined, 3 * 2);
    assert_eq!(
        served,
        3 * (registry::all().len() as u32 - 1) * 2,
        "every deterministic-routing scheduler serves every fabric"
    );
    handle.shutdown();
}

#[test]
fn explicit_scheme_choices_conform_too() {
    // S1 and S2 forced explicitly (not the per-scheduler default) must
    // also match in-process estimates — the scheme byte travels intact.
    let endpoint = Endpoint::Unix(
        std::env::temp_dir().join(format!("schedd-conf-scheme-{}.sock", std::process::id())),
    );
    let handle = Server::start(ServiceConfig::default(), &endpoint).expect("daemon starts");
    let mut client = Client::connect(&endpoint).expect("connect");
    let params = MachineParams::ipsc860();

    let matrix = Generator::dregular(16, 3, 1024).generate(77);
    for (choice, scheme) in [
        (SchemeChoice::S1, Scheme::S1),
        (SchemeChoice::S2, Scheme::S2),
    ] {
        for backend in BackendKind::all() {
            let req = SubmitRequest {
                request_id: 0,
                want_schedule: false,
                topology: TopologySpec::Hypercube { dims: 4 },
                scheduler: "AC".into(),
                scheme: choice,
                backend,
                seed: 0,
                matrix: matrix.clone(),
                cost_model: schedd::LinkCostModel::Uniform,
            };
            let reply = client.submit(req.clone()).expect("submit succeeds");
            let entry = registry::find("AC").unwrap();
            let topo = req.topology.build();
            let schedule = entry.schedule(&req.matrix, topo.as_ref(), req.seed);
            let expect = backend
                .backend()
                .estimate(&params, topo.as_ref(), &req.matrix, &schedule, scheme)
                .unwrap();
            assert_eq!(reply.estimate, expect, "{choice:?} on {}", backend.label());
            assert!(reply.schedule.is_none(), "schedule not requested");
        }
    }
    handle.shutdown();
}
