//! Differential conformance: for a pinned request set (dims 2–6, every
//! registry entry, both backends), responses served through a live
//! daemon are **byte-identical** to in-process library calls — same
//! schedule (compared as commcache artifact bytes), same estimate, same
//! fingerprint. The daemon is a transport, never a semantic layer.

use commcache::{encode_artifact, Fingerprint};
use commrt::{run_schedule, BackendKind, Scheme};
use commsched::registry;
use schedd::{Client, Endpoint, SchemeChoice, Server, ServiceConfig, SubmitRequest, TopologySpec};
use simnet::MachineParams;
use workloads::Generator;

/// The pinned request set: one d-regular instance per dimension.
fn pinned_requests() -> Vec<SubmitRequest> {
    let mut requests = Vec::new();
    for dims in 2u32..=6 {
        let n = 1usize << dims;
        let matrix = Generator::dregular(n, 3.min(n - 1), 2048).generate(u64::from(dims));
        for entry in registry::all() {
            for backend in BackendKind::all() {
                requests.push(SubmitRequest {
                    request_id: 0,
                    want_schedule: true,
                    topology: TopologySpec::Hypercube { dims },
                    scheduler: entry.name().to_string(),
                    scheme: SchemeChoice::Default,
                    backend,
                    seed: 1000 + u64::from(dims),
                    matrix: matrix.clone(),
                });
            }
        }
    }
    requests
}

#[test]
fn daemon_responses_are_byte_identical_to_in_process_calls() {
    let endpoint = Endpoint::Unix(
        std::env::temp_dir().join(format!("schedd-conf-{}.sock", std::process::id())),
    );
    let handle = Server::start(ServiceConfig::default(), &endpoint).expect("daemon starts");
    let mut client = Client::connect(&endpoint).expect("connect");
    let params = MachineParams::ipsc860();

    let requests = pinned_requests();
    assert_eq!(
        requests.len(),
        5 * registry::all().len() * 2,
        "5 dims x 8 entries x 2 backends"
    );

    for req in &requests {
        let reply = client
            .submit(req.clone())
            .unwrap_or_else(|e| panic!("{} dims={}: {e}", req.scheduler, req.topology));

        // In-process reference: the same calls the daemon's pipeline
        // must reduce to.
        let entry = registry::find(&req.scheduler).unwrap();
        let topo = req.topology.build();
        let expect_schedule = entry.schedule(&req.matrix, topo.as_ref(), req.seed);
        let expect_fp = Fingerprint::compute(&req.matrix, topo.as_ref(), entry.name(), req.seed);
        let scheme = Scheme::for_scheduler(entry);
        let expect_estimate = req
            .backend
            .backend()
            .estimate(
                &params,
                topo.as_ref(),
                &req.matrix,
                &expect_schedule,
                scheme,
            )
            .expect("in-process estimate succeeds");

        assert_eq!(reply.fingerprint, expect_fp, "{}", req.scheduler);
        assert_eq!(reply.estimate, expect_estimate, "{}", req.scheduler);
        // Byte-level, not just structural: the artifact encoding of the
        // schedule the daemon returned equals the artifact encoding of
        // the locally compiled one.
        let got_schedule = reply.schedule.as_ref().expect("schedule streamed back");
        assert_eq!(
            encode_artifact(reply.fingerprint, got_schedule),
            encode_artifact(expect_fp, &expect_schedule),
            "{} dims={}",
            req.scheduler,
            req.topology
        );

        // The DES estimate must agree with the raw simulator run —
        // the daemon inherits the backend conformance contract.
        if req.backend == BackendKind::Des {
            let sim = run_schedule(
                topo.as_ref(),
                &params,
                &req.matrix,
                &expect_schedule,
                scheme,
            )
            .expect("simulation succeeds");
            assert_eq!(
                reply.estimate.makespan_ns, sim.makespan_ns,
                "{}",
                req.scheduler
            );
        }
    }

    // Replaying the full set: every schedule is already cached, no new
    // compiles, and the bytes are *still* identical.
    let compiles_after_first_pass = handle.stats().compiles;
    for req in &requests {
        let reply = client.submit(req.clone()).expect("replay succeeds");
        assert!(
            !reply.freshly_compiled,
            "{} replay recompiled",
            req.scheduler
        );
        let entry = registry::find(&req.scheduler).unwrap();
        let topo = req.topology.build();
        let expect_schedule = entry.schedule(&req.matrix, topo.as_ref(), req.seed);
        assert_eq!(
            encode_artifact(reply.fingerprint, reply.schedule.as_ref().unwrap()),
            encode_artifact(reply.fingerprint, &expect_schedule),
        );
    }
    assert_eq!(handle.stats().compiles, compiles_after_first_pass);

    // One compile per unique (matrix, scheduler, seed): backends share
    // the fingerprint, so 5 dims x 8 entries.
    assert_eq!(compiles_after_first_pass, 5 * registry::all().len() as u64);
    handle.shutdown();
}

#[test]
fn explicit_scheme_choices_conform_too() {
    // S1 and S2 forced explicitly (not the per-scheduler default) must
    // also match in-process estimates — the scheme byte travels intact.
    let endpoint = Endpoint::Unix(
        std::env::temp_dir().join(format!("schedd-conf-scheme-{}.sock", std::process::id())),
    );
    let handle = Server::start(ServiceConfig::default(), &endpoint).expect("daemon starts");
    let mut client = Client::connect(&endpoint).expect("connect");
    let params = MachineParams::ipsc860();

    let matrix = Generator::dregular(16, 3, 1024).generate(77);
    for (choice, scheme) in [
        (SchemeChoice::S1, Scheme::S1),
        (SchemeChoice::S2, Scheme::S2),
    ] {
        for backend in BackendKind::all() {
            let req = SubmitRequest {
                request_id: 0,
                want_schedule: false,
                topology: TopologySpec::Hypercube { dims: 4 },
                scheduler: "AC".into(),
                scheme: choice,
                backend,
                seed: 0,
                matrix: matrix.clone(),
            };
            let reply = client.submit(req.clone()).expect("submit succeeds");
            let entry = registry::find("AC").unwrap();
            let topo = req.topology.build();
            let schedule = entry.schedule(&req.matrix, topo.as_ref(), req.seed);
            let expect = backend
                .backend()
                .estimate(&params, topo.as_ref(), &req.matrix, &schedule, scheme)
                .unwrap();
            assert_eq!(reply.estimate, expect, "{choice:?} on {}", backend.label());
            assert!(reply.schedule.is_none(), "schedule not requested");
        }
    }
    handle.shutdown();
}
