//! A blocking `schedd` client, pipelining-capable.
//!
//! [`Client::submit`] is the simple path: one request, block for its
//! response. The load-generator path splits that into [`Client::send`]
//! and [`Client::recv`] so a window of requests can be in flight on one
//! connection — the daemon's workers answer in completion order, so
//! callers match responses to requests by `request_id`, not arrival
//! order.

use std::fmt;
use std::io::{self, Write};

use crate::net::{Endpoint, Stream};
use crate::protocol::{
    read_frame, write_frame, DaemonStats, DecodeError, ErrorReply, FrameError, Request, Response,
    SubmitDeltaRequest, SubmitReply, SubmitRequest,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's bytes did not frame.
    Frame(FrameError),
    /// The server's frame did not decode.
    Decode(DecodeError),
    /// The server answered with a typed error.
    Server(ErrorReply),
    /// The server hung up while a response was owed.
    ConnectionClosed,
    /// The server answered with a frame the call did not expect.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::Frame(e) => write!(f, "bad frame from server: {e}"),
            ClientError::Decode(e) => write!(f, "bad response body: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::ConnectionClosed => f.write_str("server closed the connection"),
            ClientError::Unexpected(what) => write!(f, "unexpected response kind: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        ClientError::Decode(e)
    }
}

/// A connected `schedd` client.
pub struct Client {
    stream: Stream,
    next_id: u64,
}

impl Client {
    /// Connect to a daemon.
    ///
    /// # Errors
    ///
    /// The underlying connect error.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        Ok(Client {
            stream: endpoint.connect()?,
            next_id: 1,
        })
    }

    /// Hand out the next request id (monotonic per connection).
    pub fn next_request_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Fire one request without waiting (pipelining).
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &req.encode())?;
        self.stream.flush()?;
        Ok(())
    }

    /// Block for the next response frame, whatever request it answers.
    ///
    /// # Errors
    ///
    /// Transport, framing, or decode errors; [`ClientError::ConnectionClosed`]
    /// on EOF.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let body = read_frame(&mut self.stream)?.ok_or(ClientError::ConnectionClosed)?;
        Ok(Response::decode(&body)?)
    }

    /// Submit one request and block for **its** response (responses for
    /// other in-flight ids arrived out of order are not expected on
    /// this path and surface as [`ClientError::Unexpected`]).
    ///
    /// # Errors
    ///
    /// Everything [`recv`](Self::recv) can raise, plus
    /// [`ClientError::Server`] for typed server errors.
    pub fn submit(&mut self, mut req: SubmitRequest) -> Result<SubmitReply, ClientError> {
        req.request_id = self.next_request_id();
        let want = req.request_id;
        self.send(&Request::Submit(req))?;
        match self.recv()? {
            Response::Schedule(reply) if reply.request_id == want => Ok(reply),
            Response::Error(err) => Err(ClientError::Server(err)),
            Response::Schedule(_) => Err(ClientError::Unexpected("schedule for another id")),
            Response::Stats { .. } => Err(ClientError::Unexpected("stats")),
            Response::ShutdownAck { .. } => Err(ClientError::Unexpected("shutdown ack")),
        }
    }

    /// Submit a delta against a base the daemon retains and block for
    /// its response. A daemon that no longer holds the base answers
    /// with a typed `unknown-base` error ([`ClientError::Server`]);
    /// callers recover by falling back to [`submit`](Self::submit) with
    /// the full matrix.
    ///
    /// # Errors
    ///
    /// Everything [`submit`](Self::submit) can raise.
    pub fn submit_delta(
        &mut self,
        mut req: SubmitDeltaRequest,
    ) -> Result<SubmitReply, ClientError> {
        req.request_id = self.next_request_id();
        let want = req.request_id;
        self.send(&Request::SubmitDelta(req))?;
        match self.recv()? {
            Response::Schedule(reply) if reply.request_id == want => Ok(reply),
            Response::Error(err) => Err(ClientError::Server(err)),
            Response::Schedule(_) => Err(ClientError::Unexpected("schedule for another id")),
            Response::Stats { .. } => Err(ClientError::Unexpected("stats")),
            Response::ShutdownAck { .. } => Err(ClientError::Unexpected("shutdown ack")),
        }
    }

    /// Fetch the daemon's counter snapshot.
    ///
    /// # Errors
    ///
    /// Everything [`recv`](Self::recv) can raise.
    pub fn stats(&mut self) -> Result<DaemonStats, ClientError> {
        let id = self.next_request_id();
        self.send(&Request::Stats { request_id: id })?;
        match self.recv()? {
            Response::Stats { request_id, stats } if request_id == id => Ok(stats),
            Response::Error(err) => Err(ClientError::Server(err)),
            _ => Err(ClientError::Unexpected("non-stats response")),
        }
    }

    /// Ask the daemon to drain and exit; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// Everything [`recv`](Self::recv) can raise.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let id = self.next_request_id();
        self.send(&Request::Shutdown { request_id: id })?;
        match self.recv()? {
            Response::ShutdownAck { request_id } if request_id == id => Ok(()),
            Response::Error(err) => Err(ClientError::Server(err)),
            _ => Err(ClientError::Unexpected("non-ack response")),
        }
    }
}
