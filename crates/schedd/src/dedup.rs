//! Single-flight request coalescing — the daemon's dedup/batch stage.
//!
//! [`commcache::SchedCache`] deliberately does *not* single-flight: two
//! threads missing the same fingerprint simultaneously may both compile
//! (the cache keeps its locks small and its semantics simple).  For a
//! daemon replaying duplicate-heavy traffic that is exactly the wrong
//! trade — a burst of N identical requests would run N identical
//! compiles.  [`SingleFlight`] sits in front of the cache and guarantees
//! **exactly one** execution per key among concurrent callers:
//!
//! * the first caller for a key becomes the **leader** and runs the
//!   closure;
//! * every concurrent caller with the same key becomes a **waiter**,
//!   blocks, and receives a clone of the leader's result — including a
//!   clone of the leader's *error*, so a failing compile propagates the
//!   same typed error to every coalesced request;
//! * once the leader finishes, the key is forgotten: later callers start
//!   a fresh flight (the cache in front makes re-flights cheap hits).
//!
//! Distinct keys never synchronize with each other beyond the brief map
//! lock. A leader that panics poisons its flight: waiters unblock and
//! panic too (loudly, not a hang), and the key is removed so the daemon
//! keeps serving other keys.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Outcome slot shared between a leader and its waiters.
enum FlightState<V, E> {
    Running,
    Done(Result<V, E>),
    Poisoned,
}

struct Flight<V, E> {
    state: Mutex<FlightState<V, E>>,
    done: Condvar,
}

/// Counters describing how much coalescing happened.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlightStats {
    /// Calls that ran the closure (one per flight).
    pub leads: u64,
    /// Calls served by someone else's flight.
    pub coalesced: u64,
}

/// Per-key single-flight execution. `V` and `E` must be `Clone` because
/// every waiter receives its own copy of the one result; the daemon uses
/// `Arc`-shaped values so clones are pointer bumps.
pub struct SingleFlight<K, V, E> {
    flights: Mutex<HashMap<K, Arc<Flight<V, E>>>>,
    leads: AtomicU64,
    coalesced: AtomicU64,
}

/// Removes the flight and flags it poisoned if the leader unwinds
/// before storing a result.
struct LeaderGuard<'a, K: Eq + Hash + Clone, V, E> {
    owner: &'a SingleFlight<K, V, E>,
    key: K,
    flight: &'a Arc<Flight<V, E>>,
    armed: bool,
}

impl<K: Eq + Hash + Clone, V, E> Drop for LeaderGuard<'_, K, V, E> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut state = self.flight.state.lock().expect("flight lock");
        if matches!(*state, FlightState::Running) {
            *state = FlightState::Poisoned;
        }
        drop(state);
        self.flight.done.notify_all();
        self.owner
            .flights
            .lock()
            .expect("flights lock")
            .remove(&self.key);
    }
}

impl<K: Eq + Hash + Clone, V: Clone, E: Clone> SingleFlight<K, V, E> {
    /// An empty flight table.
    pub fn new() -> SingleFlight<K, V, E> {
        SingleFlight {
            flights: Mutex::new(HashMap::new()),
            leads: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Run `work` for `key`, coalescing with any concurrent identical
    /// key. Returns the result plus whether *this* call led the flight.
    ///
    /// # Panics
    ///
    /// If the leader panicked: waiters panic rather than hang or
    /// silently retry.
    pub fn run(&self, key: K, work: impl FnOnce() -> Result<V, E>) -> (Result<V, E>, bool) {
        let flight = {
            let mut flights = self.flights.lock().expect("flights lock");
            match flights.get(&key) {
                Some(flight) => {
                    // Waiter path: somebody is already flying this key.
                    let flight = Arc::clone(flight);
                    drop(flights);
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    let mut state = flight.state.lock().expect("flight lock");
                    loop {
                        match &*state {
                            FlightState::Running => {
                                state = flight.done.wait(state).expect("flight lock");
                            }
                            FlightState::Done(result) => return (result.clone(), false),
                            FlightState::Poisoned => {
                                panic!("single-flight leader panicked; flight poisoned")
                            }
                        }
                    }
                }
                None => {
                    let flight = Arc::new(Flight {
                        state: Mutex::new(FlightState::Running),
                        done: Condvar::new(),
                    });
                    flights.insert(key.clone(), Arc::clone(&flight));
                    flight
                }
            }
        };
        // Leader path. The guard guarantees waiters are released (and
        // the key is freed) even if `work` unwinds.
        self.leads.fetch_add(1, Ordering::Relaxed);
        let mut guard = LeaderGuard {
            owner: self,
            key,
            flight: &flight,
            armed: true,
        };
        let result = work();
        *flight.state.lock().expect("flight lock") = FlightState::Done(result.clone());
        flight.done.notify_all();
        self.flights
            .lock()
            .expect("flights lock")
            .remove(&guard.key);
        guard.armed = false;
        (result, true)
    }

    /// Snapshot the coalescing counters.
    pub fn stats(&self) -> FlightStats {
        FlightStats {
            leads: self.leads.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }

    /// Keys currently in flight (observability only).
    pub fn in_flight(&self) -> usize {
        self.flights.lock().expect("flights lock").len()
    }
}

impl<K: Eq + Hash + Clone, V: Clone, E: Clone> Default for SingleFlight<K, V, E> {
    fn default() -> Self {
        SingleFlight::new()
    }
}

impl<K, V, E> fmt::Debug for SingleFlight<K, V, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SingleFlight")
            .field("leads", &self.leads.load(Ordering::Relaxed))
            .field("coalesced", &self.coalesced.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;
    use std::thread;

    #[test]
    fn sequential_calls_each_lead() {
        let flight: SingleFlight<u32, u32, ()> = SingleFlight::new();
        let (r1, led1) = flight.run(1, || Ok(10));
        let (r2, led2) = flight.run(1, || Ok(20));
        assert_eq!((r1, led1), (Ok(10), true));
        // The first flight landed, so the second call is a fresh flight
        // (caching is the layer above's job).
        assert_eq!((r2, led2), (Ok(20), true));
        assert_eq!(
            flight.stats(),
            FlightStats {
                leads: 2,
                coalesced: 0
            }
        );
    }

    #[test]
    fn concurrent_same_key_runs_once() {
        let flight: Arc<SingleFlight<u32, u32, ()>> = Arc::new(SingleFlight::new());
        let runs = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let flight = Arc::clone(&flight);
                let runs = Arc::clone(&runs);
                let gate = Arc::clone(&gate);
                thread::spawn(move || {
                    gate.wait();
                    flight.run(42, || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough for peers to
                        // pile on.
                        thread::sleep(std::time::Duration::from_millis(30));
                        Ok(7)
                    })
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let leaders = results.iter().filter(|(_, led)| *led).count();
        assert!(leaders >= 1);
        assert_eq!(runs.load(Ordering::SeqCst) as u64, flight.stats().leads);
        assert!(results.iter().all(|(r, _)| *r == Ok(7) || !r.is_ok()));
        assert_eq!(flight.in_flight(), 0);
    }

    #[test]
    fn errors_clone_to_every_waiter() {
        let flight: Arc<SingleFlight<u32, u32, String>> = Arc::new(SingleFlight::new());
        let (result, led) = flight.run(1, || Err("compile exploded".to_string()));
        assert!(led);
        assert_eq!(result, Err("compile exploded".to_string()));
        assert_eq!(flight.in_flight(), 0);
    }

    #[test]
    fn leader_panic_poisons_waiters_not_the_table() {
        let flight: Arc<SingleFlight<u32, u32, ()>> = Arc::new(SingleFlight::new());
        let inner = Arc::clone(&flight);
        let leader = thread::spawn(move || {
            let _ = inner.run(9, || -> Result<u32, ()> { panic!("leader died") });
        });
        assert!(leader.join().is_err());
        // The key is freed: a new flight on it succeeds.
        let (result, led) = flight.run(9, || Ok(1));
        assert_eq!((result, led), (Ok(1), true));
    }
}
