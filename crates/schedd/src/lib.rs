//! # schedd — the scheduling daemon
//!
//! The paper's schedulers run at *runtime*, right before the
//! communication they organize, so for a fleet the dominant costs are
//! compile latency and **repeated, near-identical requests**. `schedd`
//! packages the whole stack — registry schedulers, the commcache
//! compilation cache, and both simulation backends — as a long-running
//! service: clients submit `(matrix, topology, scheduler, scheme, seed)`
//! over a framed Unix/TCP socket and get back the compiled schedule
//! plus a simulated cost estimate.
//!
//! The daemon is a pipeline of separately-testable stages:
//!
//! ```text
//! decode ─ admission ─ dedup/batch ─ compile ─ simulate ─ encode
//! (protocol) (server)   (dedup)    (commcache) (commrt)  (protocol)
//! ```
//!
//! * [`protocol`] — the framed wire format: length-prefixed,
//!   checksummed, hardened against truncation/corruption/hostile
//!   headers with typed errors.
//! * [`queue`] — bounded MPMC job queue; full = typed `Overloaded`
//!   backpressure, closed = graceful drain.
//! * [`dedup`] — single-flight coalescing so concurrent identical
//!   fingerprints run **one** compile.
//! * [`service`] — the transport-free pipeline core ([`ServiceState`]),
//!   also callable in-process (that is how the conformance suite pins
//!   daemon responses byte-identical to library calls).
//! * [`net`] / [`server`] / [`client`] — sockets, the threaded daemon
//!   shell, and the blocking (pipelining-capable) client.
//!
//! Binaries: `schedd` (the daemon), `schedload` (duplicate-heavy load
//! generator writing `BENCH_schedd_load.json`); `schedctl` (in
//! `repro_bench`) gains `submit`/`bench`/`stats`/`shutdown` verbs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod client;
pub mod dedup;
pub mod net;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod service;

pub use client::{Client, ClientError};
pub use dedup::{FlightStats, SingleFlight};
pub use net::{Endpoint, Stream};
pub use protocol::{
    read_frame, write_frame, DaemonStats, DecodeError, ErrorCode, ErrorReply, FrameError,
    ProtocolLimits, Request, Response, SchemeChoice, SubmitDeltaRequest, SubmitReply,
    SubmitRequest, TopologySpec,
};
pub use queue::{BoundedQueue, PushError};
pub use server::{Server, ServerHandle};
pub use service::{ServiceConfig, ServiceError, ServiceState};
pub use simnet::{CostModelError, LinkCostModel};
