//! The `schedd` wire protocol: length-prefixed, checksummed frames.
//!
//! Every message — client→server requests and server→client responses —
//! travels as one **frame**:
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0 | 4 | magic [`FRAME_MAGIC`] (`b"SDF1"`, version baked into the tag) |
//! | 4 | 4 | body length `u32` LE (≤ [`MAX_BODY_LEN`]) |
//! | 8 | len | body |
//! | 8+len | 8 | FNV-1a-64 checksum of the body, LE |
//!
//! The first body byte is the frame kind; the rest is kind-specific, all
//! integers little-endian, strings UTF-8 with a `u32` length prefix.
//! Responses can arrive **out of order** relative to their submissions
//! (the daemon's worker pool races), so every request carries a
//! `request_id` that the matching response echoes — that is what makes
//! pipelined submission (the `schedload` hot path) possible over one
//! connection.
//!
//! Decoding is hardened the way the artifact store is hardened: hostile
//! headers, truncation at any byte offset, and single-byte corruption all
//! surface as typed [`FrameError`]/[`DecodeError`] values — never panics,
//! never silently-wrong data (the body checksum catches corruption that a
//! length-prefixed stream format cannot otherwise see). The property
//! suite in `tests/protocol_roundtrip.rs` pins exactly that.
//!
//! Schedules inside [`SubmitReply`] frames reuse the commcache artifact
//! serialization ([`commcache::encode_artifact`]): one payload format on
//! disk and on the wire, one corruption suite hardening both.

use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;

use commcache::{Fingerprint, InstanceKey};
use commrt::{BackendKind, BackendReport, ContentionStats, Scheme};
use commsched::{CommMatrix, MatrixDelta, Schedule, Scheduler};
use hypercube::{Hypercube, Mesh2d, NodeId, Topology};
use simnet::LinkCostModel;

/// Leading magic of every frame; the trailing `1` is the protocol
/// version, so a future layout change is a new magic, not an ambiguity.
pub const FRAME_MAGIC: [u8; 4] = *b"SDF1";

/// Hard upper bound on a frame body. Large enough for the biggest legal
/// response (a dense 1024-node LP schedule is ~4 MiB as an artifact),
/// small enough that a hostile length header cannot balloon allocation.
pub const MAX_BODY_LEN: u32 = 32 << 20;

/// Longest accepted scheduler name.
pub const MAX_NAME_LEN: usize = 64;

/// Longest accepted canonical link-cost-model string.
pub const MAX_COSTMODEL_LEN: usize = 128;

/// Default for [`ProtocolLimits::max_request_nodes`]: large enough for
/// every paper-scale request, small enough that a hostile header cannot
/// force a large allocation on an unconfigured daemon.
pub const MAX_REQUEST_NODES: u64 = 1024;

/// Default for [`ProtocolLimits::max_dims`] (`2^10` nodes).
pub const MAX_DIMS: u32 = 10;

/// Default for [`ProtocolLimits::max_matrix_cells`]: 2^26 dense cells
/// (a 256 MiB `u32` matrix) — the allocation bomb guard that stays in
/// force however high `--max-nodes` is raised.
pub const MAX_MATRIX_CELLS: u64 = 1 << 26;

/// Decode-time size limits, configurable per daemon (`--max-nodes`).
///
/// The wire format itself has no node bound; these limits are what the
/// *decoder* enforces before allocating anything a hostile header could
/// inflate. [`Request::decode`] applies the defaults (the paper-scale
/// caps the protocol shipped with); a daemon serving bigger fabrics
/// passes its own limits via [`Request::decode_with`].
///
/// [`max_matrix_cells`](Self::max_matrix_cells) is deliberately
/// independent of the node cap: a dense [`CommMatrix`] costs `n²`
/// cells, so raising `--max-nodes` alone must not let a single frame
/// demand a 16 GiB matrix — topology-sized requests above the cell
/// budget are rejected with [`DecodeError::LimitExceeded`] before the
/// allocation happens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtocolLimits {
    /// Largest node count a request may carry.
    pub max_request_nodes: u64,
    /// Largest hypercube dimension a request may name.
    pub max_dims: u32,
    /// Largest dense matrix (`n²` cells) a decode may allocate.
    pub max_matrix_cells: u64,
}

impl Default for ProtocolLimits {
    fn default() -> Self {
        ProtocolLimits {
            max_request_nodes: MAX_REQUEST_NODES,
            max_dims: MAX_DIMS,
            max_matrix_cells: MAX_MATRIX_CELLS,
        }
    }
}

impl ProtocolLimits {
    /// Limits for a daemon admitting up to `nodes` nodes: the dimension
    /// cap follows as `ceil(log2(nodes))`, and the matrix-cell bomb
    /// guard keeps its default — node count bounds what a request may
    /// *name*, the cell budget bounds what a decode may *allocate*.
    pub fn with_max_nodes(nodes: u64) -> Self {
        let nodes = nodes.max(2);
        ProtocolLimits {
            max_request_nodes: nodes,
            max_dims: (u64::BITS - (nodes - 1).leading_zeros()).max(1),
            ..ProtocolLimits::default()
        }
    }
}

// Frame kinds: requests low, responses high bit set.
const K_SUBMIT: u8 = 0x01;
const K_STATS_REQ: u8 = 0x02;
const K_SHUTDOWN_REQ: u8 = 0x03;
const K_SUBMIT_DELTA: u8 = 0x04;
const K_SCHEDULE: u8 = 0x81;
const K_STATS: u8 = 0x82;
const K_ERROR: u8 = 0x83;
const K_SHUTDOWN_ACK: u8 = 0x84;

/// FNV-1a 64-bit (the artifact store's checksum, reused at the frame
/// layer — corruption detection, not security).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

/// Why a frame could not be read off the stream.
#[derive(Debug)]
pub enum FrameError {
    /// Transport failure.
    Io(io::Error),
    /// The stream does not start with [`FRAME_MAGIC`] — not a `schedd`
    /// peer (or a desynchronized one). The connection cannot be resynced.
    BadMagic([u8; 4]),
    /// The header claims a body larger than [`MAX_BODY_LEN`].
    Oversized(u32),
    /// The stream ended inside a frame.
    Truncated,
    /// The body checksum does not match — corruption in transit.
    Checksum,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::Oversized(len) => {
                write!(
                    f,
                    "frame body of {len} bytes exceeds the {MAX_BODY_LEN} cap"
                )
            }
            FrameError::Truncated => write!(f, "stream ended inside a frame"),
            FrameError::Checksum => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one complete frame (header + body + checksum).
///
/// # Errors
///
/// Propagates transport errors; `InvalidInput` if `body` exceeds
/// [`MAX_BODY_LEN`] (nothing is written).
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_BODY_LEN as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame body of {} bytes exceeds the cap", body.len()),
        ));
    }
    let mut frame = Vec::with_capacity(4 + 4 + body.len() + 8);
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    frame.extend_from_slice(&fnv1a64(body).to_le_bytes());
    w.write_all(&frame)
}

/// Read exactly `buf.len()` bytes; distinguishes clean EOF before the
/// first byte (`Ok(false)`) from EOF mid-buffer ([`FrameError::Truncated`]).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(FrameError::Truncated)
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(true)
}

/// Read one frame body off the stream. `Ok(None)` is a clean EOF at a
/// frame boundary (the peer hung up between messages).
///
/// # Errors
///
/// Every malformation is a typed [`FrameError`]; this function never
/// panics on hostile bytes and never allocates more than the header's
/// (bounds-checked) claim.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut magic = [0u8; 4];
    if !read_exact_or_eof(r, &mut magic)? {
        return Ok(None);
    }
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let mut len_bytes = [0u8; 4];
    if !read_exact_or_eof(r, &mut len_bytes)? {
        return Err(FrameError::Truncated);
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_BODY_LEN {
        return Err(FrameError::Oversized(len));
    }
    let mut body = vec![0u8; len as usize];
    if !read_exact_or_eof(r, &mut body)? {
        return Err(FrameError::Truncated);
    }
    let mut sum = [0u8; 8];
    if !read_exact_or_eof(r, &mut sum)? {
        return Err(FrameError::Truncated);
    }
    if u64::from_le_bytes(sum) != fnv1a64(&body) {
        return Err(FrameError::Checksum);
    }
    Ok(Some(body))
}

// ---------------------------------------------------------------------------
// Body decode plumbing
// ---------------------------------------------------------------------------

/// Why a well-framed body could not be decoded.
#[derive(Debug)]
pub enum DecodeError {
    /// The body ended before its own structure did.
    Truncated,
    /// Bytes remain after the last field.
    TrailingBytes,
    /// Unknown frame kind byte.
    BadKind(u8),
    /// An enum-coded field carries an unassigned value.
    BadValue {
        /// Which field.
        field: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A string field is not valid UTF-8 or exceeds its cap.
    BadString(&'static str),
    /// A size field exceeds the daemon's [`ProtocolLimits`] — a legal
    /// encoding the receiving daemon declines to allocate for.
    LimitExceeded {
        /// Which field.
        field: &'static str,
        /// The claimed size.
        value: u64,
        /// The limit in force.
        limit: u64,
    },
    /// Structurally sound but semantically impossible (self-message,
    /// node index out of range, matrix/topology size mismatch, ...).
    Invalid(String),
    /// The embedded schedule artifact failed to decode.
    Artifact(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "body ended inside a field"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after the last field"),
            DecodeError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            DecodeError::BadValue { field, value } => {
                write!(f, "field `{field}` carries unassigned value {value}")
            }
            DecodeError::BadString(field) => {
                write!(f, "field `{field}` is not valid UTF-8 or too long")
            }
            DecodeError::LimitExceeded {
                field,
                value,
                limit,
            } => {
                write!(
                    f,
                    "field `{field}` claims {value}, above this daemon's limit of {limit}"
                )
            }
            DecodeError::Invalid(what) => write!(f, "invalid request: {what}"),
            DecodeError::Artifact(what) => write!(f, "embedded schedule artifact: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Little-endian field cursor over a frame body.
struct Rd<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Rd<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Rd { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.at.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self, field: &'static str, cap: usize) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        if len > cap {
            return Err(DecodeError::BadString(field));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadString(field))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes)
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Request model
// ---------------------------------------------------------------------------

/// The topology a request schedules on, as named on the wire.
///
/// Wire kind bytes: 0 hypercube, 1 mesh, 2 torus, 3 fat-tree. Old peers
/// reject the new kinds with `topology.kind` — a typed decode error, not
/// a protocol break.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TopologySpec {
    /// `dims`-dimensional hypercube under e-cube routing.
    Hypercube {
        /// Cube dimension (1 ≤ dims ≤ [`MAX_DIMS`]).
        dims: u32,
    },
    /// `rows × cols` 2-D mesh under XY routing.
    Mesh2d {
        /// Mesh rows (≥ 1).
        rows: u32,
        /// Mesh columns (≥ 1).
        cols: u32,
    },
    /// k-ary n-cube torus under dimension-ordered shortest-direction
    /// routing.
    Torus {
        /// Per-dimension ring extents (1–8 dims, each ≥ 2).
        extents: Vec<u32>,
    },
    /// k-ary fat-tree under deterministic up-down routing.
    FatTree {
        /// Switch arity (even, 2 ≤ k ≤ 64); hosts = k³/4.
        k: u32,
    },
}

impl TopologySpec {
    /// Number of nodes the spec describes, saturating at `usize::MAX`.
    ///
    /// Hand-built specs are not bounded by [`ProtocolLimits`], so the
    /// arithmetic here must never overflow: a hostile
    /// `torus(4294967295x4294967295x…)` saturates instead of panicking,
    /// and the decode-side comparison against the matrix node count then
    /// rejects it as a typed mismatch.
    pub fn num_nodes(&self) -> usize {
        match self {
            TopologySpec::Hypercube { dims } => 1usize.checked_shl(*dims).unwrap_or(usize::MAX),
            TopologySpec::Mesh2d { rows, cols } => (*rows as usize).saturating_mul(*cols as usize),
            TopologySpec::Torus { extents } => extents
                .iter()
                .try_fold(1usize, |acc, &k| acc.checked_mul(k as usize))
                .unwrap_or(usize::MAX),
            TopologySpec::FatTree { k } => {
                let k = *k as usize;
                k.saturating_mul(k).saturating_mul(k) / 4
            }
        }
    }

    /// Materialize the topology, surfacing impossible specs as typed
    /// errors instead of panicking in the builders.
    ///
    /// Specs that came through [`Request::decode`] have already passed
    /// the [`ProtocolLimits`] bounds and cannot fail here; hand-built
    /// specs (tests, embedding code) get the same hardening the decoder
    /// provides.
    pub fn try_build(&self) -> Result<Box<dyn Topology>, DecodeError> {
        match self {
            TopologySpec::Hypercube { dims } => {
                // Mirror `Hypercube::new`'s own bound so its assert can
                // never fire on a hand-built spec.
                if !(1..=20).contains(dims) {
                    return Err(DecodeError::BadValue {
                        field: "topology.dims",
                        value: (*dims).into(),
                    });
                }
                Ok(Box::new(Hypercube::new(*dims)))
            }
            TopologySpec::Mesh2d { rows, cols } => {
                let nodes = u64::from(*rows) * u64::from(*cols);
                // Mirror `Mesh2d::new`'s bounds: positive extents, node
                // count within u32.
                if *rows == 0 || *cols == 0 || nodes > u64::from(u32::MAX) {
                    return Err(DecodeError::BadValue {
                        field: "topology.mesh",
                        value: nodes,
                    });
                }
                Ok(Box::new(Mesh2d::new(*rows as usize, *cols as usize)))
            }
            TopologySpec::Torus { extents } => {
                let extents: Vec<usize> = extents.iter().map(|&k| k as usize).collect();
                topo::Torus::try_new(&extents)
                    .map(|t| Box::new(t) as Box<dyn Topology>)
                    .map_err(|e| DecodeError::Invalid(format!("{self}: {e}")))
            }
            TopologySpec::FatTree { k } => topo::FatTree::try_new(*k as usize)
                .map(|t| Box::new(t) as Box<dyn Topology>)
                .map_err(|e| DecodeError::Invalid(format!("{self}: {e}"))),
        }
    }

    /// Materialize the topology.
    ///
    /// # Panics
    ///
    /// On specs no builder can realize (see [`try_build`](Self::try_build)
    /// for the fallible form). Decoded specs never panic here.
    pub fn build(&self) -> Box<dyn Topology> {
        self.try_build()
            .unwrap_or_else(|e| panic!("unbuildable topology spec {self}: {e}"))
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TopologySpec::Hypercube { dims } => {
                out.push(0);
                out.extend_from_slice(&dims.to_le_bytes());
            }
            TopologySpec::Mesh2d { rows, cols } => {
                out.push(1);
                out.extend_from_slice(&rows.to_le_bytes());
                out.extend_from_slice(&cols.to_le_bytes());
            }
            TopologySpec::Torus { extents } => {
                out.push(2);
                out.extend_from_slice(&(extents.len() as u32).to_le_bytes());
                for &k in extents {
                    out.extend_from_slice(&k.to_le_bytes());
                }
            }
            TopologySpec::FatTree { k } => {
                out.push(3);
                out.extend_from_slice(&k.to_le_bytes());
            }
        }
    }

    fn decode(rd: &mut Rd<'_>, limits: &ProtocolLimits) -> Result<TopologySpec, DecodeError> {
        match rd.u8()? {
            0 => {
                let dims = rd.u32()?;
                if dims == 0 {
                    return Err(DecodeError::BadValue {
                        field: "topology.dims",
                        value: dims.into(),
                    });
                }
                if dims > limits.max_dims {
                    return Err(DecodeError::LimitExceeded {
                        field: "topology.dims",
                        value: dims.into(),
                        limit: limits.max_dims.into(),
                    });
                }
                Ok(TopologySpec::Hypercube { dims })
            }
            1 => {
                let rows = rd.u32()?;
                let cols = rd.u32()?;
                let nodes = u64::from(rows) * u64::from(cols);
                if rows == 0 || cols == 0 {
                    return Err(DecodeError::BadValue {
                        field: "topology.mesh",
                        value: nodes,
                    });
                }
                if nodes > limits.max_request_nodes {
                    return Err(DecodeError::LimitExceeded {
                        field: "topology.mesh",
                        value: nodes,
                        limit: limits.max_request_nodes,
                    });
                }
                Ok(TopologySpec::Mesh2d { rows, cols })
            }
            2 => {
                let ndims = rd.u32()?;
                // The torus builder caps at 8 dimensions; reject before
                // allocating anything proportional to the claimed count.
                if ndims == 0 || ndims > 8 {
                    return Err(DecodeError::BadValue {
                        field: "topology.torus.ndims",
                        value: ndims.into(),
                    });
                }
                let mut extents = Vec::with_capacity(ndims as usize);
                let mut nodes: u64 = 1;
                for _ in 0..ndims {
                    let k = rd.u32()?;
                    if k < 2 {
                        return Err(DecodeError::BadValue {
                            field: "topology.torus.extent",
                            value: k.into(),
                        });
                    }
                    nodes = nodes.saturating_mul(u64::from(k));
                    extents.push(k);
                }
                if nodes > limits.max_request_nodes {
                    return Err(DecodeError::LimitExceeded {
                        field: "topology.torus",
                        value: nodes,
                        limit: limits.max_request_nodes,
                    });
                }
                Ok(TopologySpec::Torus { extents })
            }
            3 => {
                let k = rd.u32()?;
                if !(2..=64).contains(&k) || !k.is_multiple_of(2) {
                    return Err(DecodeError::BadValue {
                        field: "topology.fattree.k",
                        value: k.into(),
                    });
                }
                let hosts = u64::from(k) * u64::from(k) * u64::from(k) / 4;
                if hosts > limits.max_request_nodes {
                    return Err(DecodeError::LimitExceeded {
                        field: "topology.fattree",
                        value: hosts,
                        limit: limits.max_request_nodes,
                    });
                }
                Ok(TopologySpec::FatTree { k })
            }
            other => Err(DecodeError::BadValue {
                field: "topology.kind",
                value: other.into(),
            }),
        }
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologySpec::Hypercube { dims } => write!(f, "hypercube(d={dims})"),
            TopologySpec::Mesh2d { rows, cols } => write!(f, "mesh({rows}x{cols})"),
            TopologySpec::Torus { extents } => {
                write!(f, "torus(")?;
                for (i, k) in extents.iter().enumerate() {
                    if i > 0 {
                        write!(f, "x")?;
                    }
                    write!(f, "{k}")?;
                }
                write!(f, ")")
            }
            TopologySpec::FatTree { k } => write!(f, "fattree(k={k})"),
        }
    }
}

/// The communication scheme a request asks for: explicit, or the paper
/// default of whatever scheduler serves it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchemeChoice {
    /// Loose synchrony with exchange fusion.
    S1,
    /// Post-everything-then-blast.
    S2,
    /// [`Scheme::for_scheduler`] of the resolved registry entry.
    #[default]
    Default,
}

impl SchemeChoice {
    /// Resolve against the entry that will serve the request.
    pub fn resolve(self, entry: &dyn Scheduler) -> Scheme {
        match self {
            SchemeChoice::S1 => Scheme::S1,
            SchemeChoice::S2 => Scheme::S2,
            SchemeChoice::Default => Scheme::for_scheduler(entry),
        }
    }

    fn code(self) -> u8 {
        match self {
            SchemeChoice::S1 => 0,
            SchemeChoice::S2 => 1,
            SchemeChoice::Default => 2,
        }
    }

    fn from_code(code: u8) -> Option<SchemeChoice> {
        match code {
            0 => Some(SchemeChoice::S1),
            1 => Some(SchemeChoice::S2),
            2 => Some(SchemeChoice::Default),
            _ => None,
        }
    }
}

fn backend_code(kind: BackendKind) -> u8 {
    match kind {
        BackendKind::Des => 0,
        BackendKind::Analytic => 1,
    }
}

fn backend_from_code(code: u8) -> Option<BackendKind> {
    match code {
        0 => Some(BackendKind::Des),
        1 => Some(BackendKind::Analytic),
        _ => None,
    }
}

/// One schedule request: exactly the commcache fingerprint inputs —
/// *(matrix, topology, scheduler, seed)* — plus how to price the result
/// (scheme, backend) and what to stream back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubmitRequest {
    /// Client-chosen id echoed by the matching response (pipelining).
    pub request_id: u64,
    /// Stream the compiled schedule back (estimates always come back).
    pub want_schedule: bool,
    /// Where the communication happens.
    pub topology: TopologySpec,
    /// Registry name of the scheduler ([`commsched::registry::find`]).
    pub scheduler: String,
    /// Communication scheme for the estimate.
    pub scheme: SchemeChoice,
    /// Simulation backend pricing the estimate.
    pub backend: BackendKind,
    /// Scheduler seed.
    pub seed: u64,
    /// The communication matrix.
    pub matrix: CommMatrix,
    /// Per-link cost model pricing the estimate.
    ///
    /// Travels as a **trailing optional field**: uniform requests encode
    /// nothing (byte-identical to the pre-cost-model wire format, so old
    /// daemons still serve them), non-uniform models append their
    /// canonical string, which old daemons reject as
    /// [`DecodeError::TrailingBytes`] — a typed error, not a silent
    /// mis-price.
    pub cost_model: LinkCostModel,
}

impl SubmitRequest {
    /// Encode into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.matrix.message_count() * 12);
        out.push(K_SUBMIT);
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.push(u8::from(self.want_schedule));
        self.topology.encode(&mut out);
        put_str(&mut out, &self.scheduler);
        out.push(self.scheme.code());
        out.push(backend_code(self.backend));
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.matrix.n() as u64).to_le_bytes());
        out.extend_from_slice(&(self.matrix.message_count() as u64).to_le_bytes());
        for (src, dst, bytes) in self.matrix.messages() {
            out.extend_from_slice(&src.0.to_le_bytes());
            out.extend_from_slice(&dst.0.to_le_bytes());
            out.extend_from_slice(&bytes.to_le_bytes());
        }
        if !self.cost_model.is_uniform() {
            put_str(&mut out, &self.cost_model.to_string());
        }
        out
    }

    fn decode(rd: &mut Rd<'_>, limits: &ProtocolLimits) -> Result<SubmitRequest, DecodeError> {
        let request_id = rd.u64()?;
        let want_schedule = match rd.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(DecodeError::BadValue {
                    field: "flags",
                    value: other.into(),
                })
            }
        };
        let topology = TopologySpec::decode(rd, limits)?;
        let scheduler = rd.str("scheduler", MAX_NAME_LEN)?;
        let scheme = rd.u8()?;
        let scheme = SchemeChoice::from_code(scheme).ok_or(DecodeError::BadValue {
            field: "scheme",
            value: scheme.into(),
        })?;
        let backend = rd.u8()?;
        let backend = backend_from_code(backend).ok_or(DecodeError::BadValue {
            field: "backend",
            value: backend.into(),
        })?;
        let seed = rd.u64()?;
        let n = rd.u64()?;
        if n == 0 {
            return Err(DecodeError::BadValue {
                field: "matrix.n",
                value: n,
            });
        }
        if n > limits.max_request_nodes {
            return Err(DecodeError::LimitExceeded {
                field: "matrix.n",
                value: n,
                limit: limits.max_request_nodes,
            });
        }
        // The dense matrix below costs n² cells; the cell budget guards
        // that allocation independently of how high the node cap is set.
        if n.saturating_mul(n) > limits.max_matrix_cells {
            return Err(DecodeError::LimitExceeded {
                field: "matrix.cells",
                value: n.saturating_mul(n),
                limit: limits.max_matrix_cells,
            });
        }
        let n = n as usize;
        if n != topology.num_nodes() {
            return Err(DecodeError::Invalid(format!(
                "matrix spans {n} nodes but the topology {topology} has {}",
                topology.num_nodes()
            )));
        }
        let count = rd.u64()? as usize;
        // Bound the claimed count by the bytes actually present before
        // allocating anything proportional to it.
        if count > rd.remaining() / 12 {
            return Err(DecodeError::Truncated);
        }
        let mut matrix = CommMatrix::new(n);
        for _ in 0..count {
            let src = rd.u32()? as usize;
            let dst = rd.u32()? as usize;
            let bytes = rd.u32()?;
            if src >= n || dst >= n {
                return Err(DecodeError::Invalid(format!(
                    "message endpoint {} out of {n} nodes",
                    src.max(dst)
                )));
            }
            if src == dst {
                return Err(DecodeError::Invalid(format!("self-message at node {src}")));
            }
            if bytes == 0 {
                return Err(DecodeError::Invalid(format!(
                    "zero-byte message {src} -> {dst}"
                )));
            }
            matrix.set(src, dst, bytes);
        }
        let cost_model = decode_cost_model(rd)?;
        Ok(SubmitRequest {
            request_id,
            want_schedule,
            topology,
            scheduler,
            scheme,
            backend,
            seed,
            matrix,
            cost_model,
        })
    }
}

/// Decode the trailing optional cost-model field: absent means uniform
/// (the pre-cost-model wire format), present means a canonical string
/// validated by the [`LinkCostModel`] grammar.
fn decode_cost_model(rd: &mut Rd<'_>) -> Result<LinkCostModel, DecodeError> {
    if rd.remaining() == 0 {
        return Ok(LinkCostModel::Uniform);
    }
    let s = rd.str("cost_model", MAX_COSTMODEL_LEN)?;
    s.parse()
        .map_err(|e| DecodeError::Invalid(format!("cost model {s:?}: {e}")))
}

/// A schedule request expressed as an **edit list against a base the
/// daemon already holds**, instead of a full matrix.
///
/// The envelope (id, topology, scheduler, scheme, backend, seed) is the
/// same as [`SubmitRequest`]; the matrix is replaced by the base's
/// [`InstanceKey`] plus a [`MatrixDelta`]. The daemon resolves the base
/// from its incremental cache, applies the delta, and from there the
/// request is indistinguishable from a full submit of the perturbed
/// matrix — same fingerprint, same cache, byte-identical reply. A base
/// the daemon no longer retains is a typed
/// [`ErrorCode::UnknownBase`]; the client falls back to a full submit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubmitDeltaRequest {
    /// Client-chosen id echoed by the matching response (pipelining).
    pub request_id: u64,
    /// Stream the compiled schedule back (estimates always come back).
    pub want_schedule: bool,
    /// Where the communication happens.
    pub topology: TopologySpec,
    /// Registry name of the scheduler ([`commsched::registry::find`]).
    pub scheduler: String,
    /// Communication scheme for the estimate.
    pub scheme: SchemeChoice,
    /// Simulation backend pricing the estimate.
    pub backend: BackendKind,
    /// Scheduler seed.
    pub seed: u64,
    /// Key of the base matrix this delta edits
    /// ([`InstanceKey::compute`] over the base).
    pub base: InstanceKey,
    /// The edits.
    pub delta: MatrixDelta,
    /// Per-link cost model pricing the estimate (trailing optional
    /// field; see [`SubmitRequest::cost_model`]).
    pub cost_model: LinkCostModel,
}

impl SubmitDeltaRequest {
    /// Encode into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(96 + self.delta.change_count() * 12);
        out.push(K_SUBMIT_DELTA);
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.push(u8::from(self.want_schedule));
        self.topology.encode(&mut out);
        put_str(&mut out, &self.scheduler);
        out.push(self.scheme.code());
        out.push(backend_code(self.backend));
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.base.to_bytes());
        out.extend_from_slice(&(self.delta.n() as u64).to_le_bytes());
        out.extend_from_slice(&(self.delta.added().len() as u64).to_le_bytes());
        for &(src, dst, bytes) in self.delta.added() {
            out.extend_from_slice(&src.0.to_le_bytes());
            out.extend_from_slice(&dst.0.to_le_bytes());
            out.extend_from_slice(&bytes.to_le_bytes());
        }
        out.extend_from_slice(&(self.delta.removed().len() as u64).to_le_bytes());
        for &(src, dst) in self.delta.removed() {
            out.extend_from_slice(&src.0.to_le_bytes());
            out.extend_from_slice(&dst.0.to_le_bytes());
        }
        out.extend_from_slice(&(self.delta.resized().len() as u64).to_le_bytes());
        for &(src, dst, bytes) in self.delta.resized() {
            out.extend_from_slice(&src.0.to_le_bytes());
            out.extend_from_slice(&dst.0.to_le_bytes());
            out.extend_from_slice(&bytes.to_le_bytes());
        }
        if !self.cost_model.is_uniform() {
            put_str(&mut out, &self.cost_model.to_string());
        }
        out
    }

    fn decode(rd: &mut Rd<'_>, limits: &ProtocolLimits) -> Result<SubmitDeltaRequest, DecodeError> {
        let request_id = rd.u64()?;
        let want_schedule = match rd.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(DecodeError::BadValue {
                    field: "flags",
                    value: other.into(),
                })
            }
        };
        let topology = TopologySpec::decode(rd, limits)?;
        let scheduler = rd.str("scheduler", MAX_NAME_LEN)?;
        let scheme = rd.u8()?;
        let scheme = SchemeChoice::from_code(scheme).ok_or(DecodeError::BadValue {
            field: "scheme",
            value: scheme.into(),
        })?;
        let backend = rd.u8()?;
        let backend = backend_from_code(backend).ok_or(DecodeError::BadValue {
            field: "backend",
            value: backend.into(),
        })?;
        let seed = rd.u64()?;
        let mut key = [0u8; 16];
        key.copy_from_slice(rd.take(16)?);
        let base = InstanceKey::from_bytes(key);
        let n = rd.u64()?;
        if n == 0 {
            return Err(DecodeError::BadValue {
                field: "delta.n",
                value: n,
            });
        }
        if n > limits.max_request_nodes {
            return Err(DecodeError::LimitExceeded {
                field: "delta.n",
                value: n,
                limit: limits.max_request_nodes,
            });
        }
        let n = n as usize;
        if n != topology.num_nodes() {
            return Err(DecodeError::Invalid(format!(
                "delta spans {n} nodes but the topology {topology} has {}",
                topology.num_nodes()
            )));
        }
        // Each list bounds its claimed count by the bytes actually
        // present before allocating anything proportional to it.
        let added_count = rd.u64()? as usize;
        if added_count > rd.remaining() / 12 {
            return Err(DecodeError::Truncated);
        }
        let mut added = Vec::with_capacity(added_count);
        for _ in 0..added_count {
            let src = rd.u32()?;
            let dst = rd.u32()?;
            let bytes = rd.u32()?;
            added.push((NodeId(src), NodeId(dst), bytes));
        }
        let removed_count = rd.u64()? as usize;
        if removed_count > rd.remaining() / 8 {
            return Err(DecodeError::Truncated);
        }
        let mut removed = Vec::with_capacity(removed_count);
        for _ in 0..removed_count {
            let src = rd.u32()?;
            let dst = rd.u32()?;
            removed.push((NodeId(src), NodeId(dst)));
        }
        let resized_count = rd.u64()? as usize;
        if resized_count > rd.remaining() / 12 {
            return Err(DecodeError::Truncated);
        }
        let mut resized = Vec::with_capacity(resized_count);
        for _ in 0..resized_count {
            let src = rd.u32()?;
            let dst = rd.u32()?;
            let bytes = rd.u32()?;
            resized.push((NodeId(src), NodeId(dst), bytes));
        }
        // `from_parts` re-runs the matrix-level semantic checks
        // (ranges, self-messages, zero bytes, duplicate cells), so a
        // hostile delta surfaces as a typed error here, not a panic in
        // the daemon's apply path.
        let delta = MatrixDelta::from_parts(n, added, removed, resized)
            .map_err(|e| DecodeError::Invalid(e.to_string()))?;
        let cost_model = decode_cost_model(rd)?;
        Ok(SubmitDeltaRequest {
            request_id,
            want_schedule,
            topology,
            scheduler,
            scheme,
            backend,
            seed,
            base,
            delta,
            cost_model,
        })
    }
}

/// Every client→server frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Schedule + estimate one request.
    Submit(SubmitRequest),
    /// Schedule + estimate a delta against a retained base.
    SubmitDelta(SubmitDeltaRequest),
    /// Snapshot the daemon counters.
    Stats {
        /// Echoed by the response.
        request_id: u64,
    },
    /// Ask the daemon to drain and exit.
    Shutdown {
        /// Echoed by the acknowledgement.
        request_id: u64,
    },
}

impl Request {
    /// Encode into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Submit(req) => req.encode(),
            Request::SubmitDelta(req) => req.encode(),
            Request::Stats { request_id } => {
                let mut out = vec![K_STATS_REQ];
                out.extend_from_slice(&request_id.to_le_bytes());
                out
            }
            Request::Shutdown { request_id } => {
                let mut out = vec![K_SHUTDOWN_REQ];
                out.extend_from_slice(&request_id.to_le_bytes());
                out
            }
        }
    }

    /// Decode a frame body under the default [`ProtocolLimits`].
    ///
    /// # Errors
    ///
    /// Typed [`DecodeError`] for every malformation; never panics.
    pub fn decode(body: &[u8]) -> Result<Request, DecodeError> {
        Request::decode_with(body, &ProtocolLimits::default())
    }

    /// Decode a frame body under a daemon's own size limits.
    ///
    /// # Errors
    ///
    /// Typed [`DecodeError`] for every malformation — size claims above
    /// `limits` are [`DecodeError::LimitExceeded`]; never panics.
    pub fn decode_with(body: &[u8], limits: &ProtocolLimits) -> Result<Request, DecodeError> {
        let mut rd = Rd::new(body);
        let req = match rd.u8()? {
            K_SUBMIT => Request::Submit(SubmitRequest::decode(&mut rd, limits)?),
            K_SUBMIT_DELTA => Request::SubmitDelta(SubmitDeltaRequest::decode(&mut rd, limits)?),
            K_STATS_REQ => Request::Stats {
                request_id: rd.u64()?,
            },
            K_SHUTDOWN_REQ => Request::Shutdown {
                request_id: rd.u64()?,
            },
            other => return Err(DecodeError::BadKind(other)),
        };
        rd.finish()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Response model
// ---------------------------------------------------------------------------

/// Typed failure classes a response can carry. The numeric codes are
/// wire-stable: new codes append, existing codes never renumber.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The frame or body could not be decoded (the echoed id is 0 when
    /// the failure predates knowing one).
    Malformed = 1,
    /// No registry entry under the requested name.
    UnknownScheduler = 2,
    /// The entry declines the topology ([`Scheduler::supports_topology`]).
    UnsupportedTopology = 3,
    /// Structurally decodable but unservable request.
    BadRequest = 4,
    /// The client exceeded its in-flight quota; resubmit after a reply.
    QuotaExceeded = 5,
    /// The compile queue is full; backpressure — resubmit later.
    Overloaded = 6,
    /// The daemon is draining; no new work is admitted.
    ShuttingDown = 7,
    /// The simulation backend rejected the request.
    SimFailed = 8,
    /// A daemon-side invariant failure.
    Internal = 9,
    /// A delta submit named a base the daemon does not retain (evicted,
    /// never seen, or incremental compilation disabled). Recoverable:
    /// resubmit the full matrix.
    UnknownBase = 10,
}

impl ErrorCode {
    /// Every assigned code, in numeric order.
    pub fn all() -> [ErrorCode; 10] {
        [
            ErrorCode::Malformed,
            ErrorCode::UnknownScheduler,
            ErrorCode::UnsupportedTopology,
            ErrorCode::BadRequest,
            ErrorCode::QuotaExceeded,
            ErrorCode::Overloaded,
            ErrorCode::ShuttingDown,
            ErrorCode::SimFailed,
            ErrorCode::Internal,
            ErrorCode::UnknownBase,
        ]
    }

    fn from_code(code: u8) -> Option<ErrorCode> {
        ErrorCode::all().into_iter().find(|c| *c as u8 == code)
    }

    /// Stable lowercase label for logs and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::UnknownScheduler => "unknown-scheduler",
            ErrorCode::UnsupportedTopology => "unsupported-topology",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::QuotaExceeded => "quota-exceeded",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::SimFailed => "sim-failed",
            ErrorCode::Internal => "internal",
            ErrorCode::UnknownBase => "unknown-base",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A typed error response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorReply {
    /// The offending request's id (0 when unknown).
    pub request_id: u64,
    /// Failure class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for ErrorReply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

/// A successful schedule response: the fingerprint, the estimate, and
/// (when asked for) the schedule itself as a commcache artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubmitReply {
    /// Echo of [`SubmitRequest::request_id`].
    pub request_id: u64,
    /// Canonical key of the request ([`Fingerprint::compute`]).
    pub fingerprint: Fingerprint,
    /// Whether *this* request ran the compile (false = served by dedup,
    /// the cache, or the artifact store).
    pub freshly_compiled: bool,
    /// The backend's estimate.
    pub estimate: BackendReport,
    /// The compiled schedule, present iff the request asked for it.
    /// `Arc` so the daemon streams cache-shared schedules without deep
    /// copies.
    pub schedule: Option<Arc<Schedule>>,
}

impl SubmitReply {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_bytes());
        out.push(u8::from(self.freshly_compiled));
        out.extend_from_slice(&self.estimate.makespan_ns.to_le_bytes());
        out.extend_from_slice(&(self.estimate.phase_end_ns.len() as u64).to_le_bytes());
        for &end in &self.estimate.phase_end_ns {
            out.extend_from_slice(&end.to_le_bytes());
        }
        let c = &self.estimate.contention;
        out.extend_from_slice(&c.max_engine_busy_ns.to_le_bytes());
        out.extend_from_slice(&c.max_link_busy_ns.to_le_bytes());
        out.extend_from_slice(&c.contended_transfers.to_le_bytes());
        out.extend_from_slice(&(c.contended_phases as u64).to_le_bytes());
        match &self.schedule {
            None => out.push(0),
            Some(schedule) => {
                out.push(1);
                let artifact = commcache::encode_artifact(self.fingerprint, schedule);
                out.extend_from_slice(&(artifact.len() as u64).to_le_bytes());
                out.extend_from_slice(&artifact);
            }
        }
    }

    fn decode(rd: &mut Rd<'_>) -> Result<SubmitReply, DecodeError> {
        let request_id = rd.u64()?;
        let fingerprint = Fingerprint::from_bytes(rd.take(16)?.try_into().expect("16 bytes"));
        let freshly_compiled = match rd.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(DecodeError::BadValue {
                    field: "freshly_compiled",
                    value: other.into(),
                })
            }
        };
        let makespan_ns = rd.u64()?;
        let phase_count = rd.u64()? as usize;
        if phase_count > rd.remaining() / 8 {
            return Err(DecodeError::Truncated);
        }
        let mut phase_end_ns = Vec::with_capacity(phase_count);
        for _ in 0..phase_count {
            phase_end_ns.push(rd.u64()?);
        }
        let contention = ContentionStats {
            max_engine_busy_ns: rd.u64()?,
            max_link_busy_ns: rd.u64()?,
            contended_transfers: rd.u64()?,
            contended_phases: rd.u64()? as usize,
        };
        let schedule = match rd.u8()? {
            0 => None,
            1 => {
                let len = rd.u64()? as usize;
                let bytes = rd.take(len)?;
                let (fp, schedule) = commcache::decode_artifact(bytes)
                    .map_err(|e| DecodeError::Artifact(e.to_string()))?;
                if fp != fingerprint {
                    return Err(DecodeError::Invalid(format!(
                        "artifact keyed {fp} inside a reply keyed {fingerprint}"
                    )));
                }
                Some(Arc::new(schedule))
            }
            other => {
                return Err(DecodeError::BadValue {
                    field: "schedule_present",
                    value: other.into(),
                })
            }
        };
        Ok(SubmitReply {
            request_id,
            fingerprint,
            freshly_compiled,
            estimate: BackendReport {
                makespan_ns,
                phase_end_ns,
                contention,
            },
            schedule,
        })
    }
}

/// A point-in-time snapshot of every daemon counter, as carried by a
/// stats response. All fields are `u64`; the wire layout is the struct
/// field order, which is append-only.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Connections ever accepted.
    pub connections_accepted: u64,
    /// Connections currently open (gauge).
    pub connections_active: u64,
    /// Connections that died inside a frame (mid-stream disconnects).
    pub disconnects_midstream: u64,
    /// Submit frames received.
    pub submits: u64,
    /// Schedule responses successfully written back.
    pub completed: u64,
    /// Requests that actually ran a schedule compile (true misses).
    pub compiles: u64,
    /// Requests that piggybacked on another request's in-flight compile
    /// (the dedup/batch stage's single-flight coalescing).
    pub coalesced: u64,
    /// Schedule-cache requests ([`commcache::CacheStats::requests`]).
    pub cache_requests: u64,
    /// Schedule-cache memory hits.
    pub cache_mem_hits: u64,
    /// Schedule-cache artifact-store hits.
    pub cache_store_hits: u64,
    /// Schedule-cache misses (equals compiles when only the daemon uses
    /// the cache).
    pub cache_misses: u64,
    /// Estimate-cache hits.
    pub estimate_hits: u64,
    /// Estimate-cache misses.
    pub estimate_misses: u64,
    /// Submits rejected for exceeding the per-client in-flight quota.
    pub rejected_quota: u64,
    /// Submits rejected because the compile queue was full.
    pub rejected_overload: u64,
    /// Submits rejected because the daemon was draining.
    pub rejected_shutdown: u64,
    /// Frames or bodies that failed to decode.
    pub errors_malformed: u64,
    /// Other error responses (unknown scheduler, bad request, sim
    /// failure, internal).
    pub errors_other: u64,
    /// Responses that could not be written (client went away).
    pub write_failures: u64,
    /// Jobs waiting in the compile queue (gauge).
    pub queue_depth: u64,
    /// Admitted jobs not yet answered (gauge).
    pub inflight: u64,
    /// 1 while the daemon is draining.
    pub draining: u64,
    /// Delta submits received ([`SubmitDeltaRequest`] frames).
    pub delta_submits: u64,
    /// Incremental lookups that found a within-threshold retained base.
    pub incr_base_hits: u64,
    /// Compiles served by patching a base schedule instead of a full
    /// recompile (validated patches only).
    pub incr_patches: u64,
    /// Incremental lookups that fell back to a full compile (scheduler
    /// declined, no usable base schedule, or validation rejected).
    pub incr_fallbacks: u64,
    /// Patched schedules the validation gate rejected (each is also a
    /// fallback).
    pub incr_validation_rejections: u64,
}

impl DaemonStats {
    /// The wire fields, in layout order.
    fn fields(&self) -> [u64; 27] {
        [
            self.connections_accepted,
            self.connections_active,
            self.disconnects_midstream,
            self.submits,
            self.completed,
            self.compiles,
            self.coalesced,
            self.cache_requests,
            self.cache_mem_hits,
            self.cache_store_hits,
            self.cache_misses,
            self.estimate_hits,
            self.estimate_misses,
            self.rejected_quota,
            self.rejected_overload,
            self.rejected_shutdown,
            self.errors_malformed,
            self.errors_other,
            self.write_failures,
            self.queue_depth,
            self.inflight,
            self.draining,
            self.delta_submits,
            self.incr_base_hits,
            self.incr_patches,
            self.incr_fallbacks,
            self.incr_validation_rejections,
        ]
    }

    fn from_fields(f: [u64; 27]) -> DaemonStats {
        DaemonStats {
            connections_accepted: f[0],
            connections_active: f[1],
            disconnects_midstream: f[2],
            submits: f[3],
            completed: f[4],
            compiles: f[5],
            coalesced: f[6],
            cache_requests: f[7],
            cache_mem_hits: f[8],
            cache_store_hits: f[9],
            cache_misses: f[10],
            estimate_hits: f[11],
            estimate_misses: f[12],
            rejected_quota: f[13],
            rejected_overload: f[14],
            rejected_shutdown: f[15],
            errors_malformed: f[16],
            errors_other: f[17],
            write_failures: f[18],
            queue_depth: f[19],
            inflight: f[20],
            draining: f[21],
            delta_submits: f[22],
            incr_base_hits: f[23],
            incr_patches: f[24],
            incr_fallbacks: f[25],
            incr_validation_rejections: f[26],
        }
    }

    /// Fraction of delta submits served by a patched base schedule —
    /// the drifting-pattern counterpart of
    /// [`dedup_hit_rate`](Self::dedup_hit_rate).
    pub fn patch_rate(&self) -> f64 {
        if self.delta_submits == 0 {
            0.0
        } else {
            self.incr_patches as f64 / self.delta_submits as f64
        }
    }

    /// Fraction of completed schedule responses that did **not** run a
    /// compile — the service-level dedup metric `schedload` gates on.
    pub fn dedup_hit_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            1.0 - self.compiles as f64 / self.completed as f64
        }
    }
}

/// Every server→client frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// A served schedule request.
    Schedule(SubmitReply),
    /// A daemon counter snapshot.
    Stats {
        /// Echo of the stats request's id.
        request_id: u64,
        /// The snapshot.
        stats: DaemonStats,
    },
    /// A typed failure.
    Error(ErrorReply),
    /// Shutdown acknowledged; the daemon drains and exits.
    ShutdownAck {
        /// Echo of the shutdown request's id.
        request_id: u64,
    },
}

impl Response {
    /// The request id this response answers.
    pub fn request_id(&self) -> u64 {
        match self {
            Response::Schedule(r) => r.request_id,
            Response::Stats { request_id, .. } => *request_id,
            Response::Error(e) => e.request_id,
            Response::ShutdownAck { request_id } => *request_id,
        }
    }

    /// Encode into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Schedule(reply) => {
                out.push(K_SCHEDULE);
                reply.encode(&mut out);
            }
            Response::Stats { request_id, stats } => {
                out.push(K_STATS);
                out.extend_from_slice(&request_id.to_le_bytes());
                for field in stats.fields() {
                    out.extend_from_slice(&field.to_le_bytes());
                }
            }
            Response::Error(err) => {
                out.push(K_ERROR);
                out.extend_from_slice(&err.request_id.to_le_bytes());
                out.push(err.code as u8);
                put_str(&mut out, &err.detail);
            }
            Response::ShutdownAck { request_id } => {
                out.push(K_SHUTDOWN_ACK);
                out.extend_from_slice(&request_id.to_le_bytes());
            }
        }
        out
    }

    /// Decode a frame body.
    ///
    /// # Errors
    ///
    /// Typed [`DecodeError`] for every malformation; never panics.
    pub fn decode(body: &[u8]) -> Result<Response, DecodeError> {
        let mut rd = Rd::new(body);
        let resp = match rd.u8()? {
            K_SCHEDULE => Response::Schedule(SubmitReply::decode(&mut rd)?),
            K_STATS => {
                let request_id = rd.u64()?;
                let mut fields = [0u64; 27];
                for f in &mut fields {
                    *f = rd.u64()?;
                }
                Response::Stats {
                    request_id,
                    stats: DaemonStats::from_fields(fields),
                }
            }
            K_ERROR => {
                let request_id = rd.u64()?;
                let code = rd.u8()?;
                let code = ErrorCode::from_code(code).ok_or(DecodeError::BadValue {
                    field: "error.code",
                    value: code.into(),
                })?;
                let detail = rd.str("error.detail", 4096)?;
                Response::Error(ErrorReply {
                    request_id,
                    code,
                    detail,
                })
            }
            K_SHUTDOWN_ACK => Response::ShutdownAck {
                request_id: rd.u64()?,
            },
            other => return Err(DecodeError::BadKind(other)),
        };
        rd.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsched::registry;

    fn sample_request() -> SubmitRequest {
        let mut matrix = CommMatrix::new(16);
        matrix.set(0, 5, 1024);
        matrix.set(5, 0, 1024);
        matrix.set(2, 9, 64);
        SubmitRequest {
            request_id: 77,
            want_schedule: true,
            topology: TopologySpec::Hypercube { dims: 4 },
            scheduler: "RS_NL".into(),
            scheme: SchemeChoice::Default,
            backend: BackendKind::Des,
            seed: 9,
            matrix,
            cost_model: LinkCostModel::Uniform,
        }
    }

    #[test]
    fn request_roundtrips_through_frames() {
        for req in [
            Request::Submit(sample_request()),
            Request::Stats { request_id: 3 },
            Request::Shutdown { request_id: 4 },
        ] {
            let mut wire = Vec::new();
            write_frame(&mut wire, &req.encode()).unwrap();
            let body = read_frame(&mut wire.as_slice()).unwrap().unwrap();
            assert_eq!(Request::decode(&body).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrips_with_and_without_schedule() {
        let req = sample_request();
        let entry = registry::find("RS_NL").unwrap();
        let topo = req.topology.build();
        let schedule = entry.schedule(&req.matrix, topo.as_ref(), req.seed);
        let fp = Fingerprint::compute(&req.matrix, topo.as_ref(), entry.name(), req.seed);
        for schedule in [Some(Arc::new(schedule)), None] {
            let resp = Response::Schedule(SubmitReply {
                request_id: 77,
                fingerprint: fp,
                freshly_compiled: schedule.is_some(),
                estimate: BackendReport {
                    makespan_ns: 1234,
                    phase_end_ns: vec![100, 1234],
                    contention: ContentionStats {
                        max_engine_busy_ns: 9,
                        max_link_busy_ns: 8,
                        contended_transfers: 7,
                        contended_phases: 1,
                    },
                },
                schedule,
            });
            let decoded = Response::decode(&resp.encode()).unwrap();
            assert_eq!(decoded, resp);
            assert_eq!(decoded.request_id(), 77);
        }
    }

    #[test]
    fn stats_and_errors_roundtrip() {
        let stats = DaemonStats {
            submits: 10,
            completed: 8,
            compiles: 2,
            ..DaemonStats::default()
        };
        let resp = Response::Stats {
            request_id: 5,
            stats,
        };
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        assert!((stats.dedup_hit_rate() - 0.75).abs() < 1e-12);
        for code in ErrorCode::all() {
            let resp = Response::Error(ErrorReply {
                request_id: 1,
                code,
                detail: format!("{code} happened"),
            });
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
        let ack = Response::ShutdownAck { request_id: 2 };
        assert_eq!(Response::decode(&ack.encode()).unwrap(), ack);
    }

    #[test]
    fn clean_eof_is_none_and_torn_frames_are_typed() {
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Stats { request_id: 1 }.encode()).unwrap();
        for cut in 1..wire.len() {
            match read_frame(&mut &wire[..cut]) {
                Err(FrameError::Truncated) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn hostile_headers_are_typed_errors() {
        let garbage = *b"GET / HTTP/1.1\r\n";
        assert!(matches!(
            read_frame(&mut garbage.as_slice()),
            Err(FrameError::BadMagic(_))
        ));
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&FRAME_MAGIC);
        oversized.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut oversized.as_slice()),
            Err(FrameError::Oversized(_))
        ));
        assert!(write_frame(&mut Vec::new(), &vec![0; MAX_BODY_LEN as usize + 1]).is_err());
    }

    #[test]
    fn matrix_semantics_are_validated_at_decode() {
        let req = sample_request();
        let good = req.encode();
        // Topology/matrix size mismatch.
        let mut mismatched = sample_request();
        mismatched.topology = TopologySpec::Hypercube { dims: 5 };
        assert!(matches!(
            Request::decode(&mismatched.encode()),
            Err(DecodeError::Invalid(_))
        ));
        // A torn trailing field (the optional cost model needs at least
        // a length prefix) is truncation, not silent acceptance.
        let mut torn = good.clone();
        torn.push(0);
        assert!(matches!(
            Request::decode(&torn),
            Err(DecodeError::Truncated)
        ));
        // Bytes after a complete cost-model field are trailing garbage.
        let mut req = sample_request();
        req.cost_model = "faulty:p=0.05,seed=3".parse().unwrap();
        let mut trailing = req.encode();
        trailing.push(0);
        assert!(matches!(
            Request::decode(&trailing),
            Err(DecodeError::TrailingBytes)
        ));
        // Unassigned enum values.
        assert!(matches!(
            Request::decode(&[0x7f]),
            Err(DecodeError::BadKind(0x7f))
        ));
    }

    #[test]
    fn raised_limits_roundtrip_large_fabrics() {
        // A d=12 cube (4096 nodes) is over the default node cap but
        // legal under a daemon started with --max-nodes 4096.
        let limits = ProtocolLimits::with_max_nodes(4096);
        assert_eq!(limits.max_dims, 12);
        let mut matrix = CommMatrix::new(4096);
        matrix.set(0, 4095, 8);
        matrix.set(1000, 3000, 64);
        let req = Request::Submit(SubmitRequest {
            request_id: 5,
            want_schedule: false,
            topology: TopologySpec::Hypercube { dims: 12 },
            scheduler: "AC".into(),
            scheme: SchemeChoice::Default,
            backend: BackendKind::Analytic,
            seed: 1,
            matrix,
            cost_model: LinkCostModel::Uniform,
        });
        let body = req.encode();
        assert!(matches!(
            Request::decode(&body),
            Err(DecodeError::LimitExceeded {
                field: "topology.dims",
                ..
            })
        ));
        assert_eq!(Request::decode_with(&body, &limits).unwrap(), req);
    }

    #[test]
    fn matrix_cell_budget_survives_raised_node_caps() {
        // --max-nodes 65536 admits d=16 *names*, but a dense 65536-node
        // matrix is 2^32 cells (16 GiB): the cell budget must reject it
        // before the allocation, however high the node cap goes.
        let limits = ProtocolLimits::with_max_nodes(1 << 20);
        assert_eq!(limits.max_dims, 20);
        let mut body = vec![0x01u8]; // Submit
        body.extend_from_slice(&1u64.to_le_bytes()); // request_id
        body.push(0); // want_schedule
        body.push(0); // hypercube
        body.extend_from_slice(&20u32.to_le_bytes()); // dims = 20
        body.extend_from_slice(&2u32.to_le_bytes()); // scheduler = "AC"
        body.extend_from_slice(b"AC");
        body.push(2); // scheme default
        body.push(1); // backend analytic
        body.extend_from_slice(&0u64.to_le_bytes()); // seed
        body.extend_from_slice(&(1u64 << 20).to_le_bytes()); // n = 2^20
        body.extend_from_slice(&0u64.to_le_bytes()); // message count
        match Request::decode_with(&body, &limits) {
            Err(DecodeError::LimitExceeded { field, limit, .. }) => {
                assert_eq!(field, "matrix.cells");
                assert_eq!(limit, MAX_MATRIX_CELLS);
            }
            other => panic!("expected the cell budget to fire, got {other:?}"),
        }
    }

    #[test]
    fn scheme_choice_resolves_paper_defaults() {
        let rs_nl = registry::find("RS_NL").unwrap();
        let ac = registry::find("AC").unwrap();
        assert_eq!(SchemeChoice::Default.resolve(rs_nl), Scheme::S1);
        assert_eq!(SchemeChoice::Default.resolve(ac), Scheme::S2);
        assert_eq!(SchemeChoice::S2.resolve(rs_nl), Scheme::S2);
        assert_eq!(SchemeChoice::S1.resolve(ac), Scheme::S1);
    }

    #[test]
    fn topology_specs_build_what_they_name() {
        let cube = TopologySpec::Hypercube { dims: 3 };
        assert_eq!(cube.num_nodes(), 8);
        assert_eq!(cube.build().num_nodes(), 8);
        let mesh = TopologySpec::Mesh2d { rows: 3, cols: 4 };
        assert_eq!(mesh.num_nodes(), 12);
        assert_eq!(mesh.build().num_nodes(), 12);
        assert_eq!(format!("{mesh}"), "mesh(3x4)");
        let torus = TopologySpec::Torus {
            extents: vec![4, 4, 2],
        };
        assert_eq!(torus.num_nodes(), 32);
        assert_eq!(torus.build().num_nodes(), 32);
        assert_eq!(format!("{torus}"), "torus(4x4x2)");
        let ft = TopologySpec::FatTree { k: 4 };
        assert_eq!(ft.num_nodes(), 16);
        assert_eq!(ft.build().num_nodes(), 16);
        assert_eq!(format!("{ft}"), "fattree(k=4)");
    }

    #[test]
    fn torus_and_fattree_specs_roundtrip_on_the_wire() {
        let limits = ProtocolLimits::default();
        for topology in [
            TopologySpec::Torus {
                extents: vec![4, 4],
            },
            TopologySpec::Torus {
                extents: vec![2, 2, 2, 2],
            },
            TopologySpec::FatTree { k: 4 },
        ] {
            let mut com = CommMatrix::new(topology.num_nodes());
            com.set(0, 1, 64);
            let req = Request::Submit(SubmitRequest {
                request_id: 9,
                want_schedule: true,
                topology: topology.clone(),
                scheduler: "RS_N".into(),
                scheme: SchemeChoice::Default,
                backend: BackendKind::Analytic,
                seed: 0,
                matrix: com,
                cost_model: LinkCostModel::Uniform,
            });
            let body = req.encode();
            assert_eq!(Request::decode_with(&body, &limits).unwrap(), req);
        }
    }

    #[test]
    fn hostile_topology_specs_are_typed_decode_errors() {
        let limits = ProtocolLimits::default();
        // (kind bytes, expected field) — each is the topology prefix of a
        // Submit body; decode must fail before reading further fields.
        let cases: Vec<(Vec<u8>, &str)> = vec![
            // Torus claiming 2^32-ish dims: bounded before allocation.
            {
                let mut b = vec![2u8];
                b.extend_from_slice(&u32::MAX.to_le_bytes());
                (b, "topology.torus.ndims")
            },
            // Torus with a 1-extent (degenerate ring).
            {
                let mut b = vec![2u8];
                b.extend_from_slice(&2u32.to_le_bytes());
                b.extend_from_slice(&4u32.to_le_bytes());
                b.extend_from_slice(&1u32.to_le_bytes());
                (b, "topology.torus.extent")
            },
            // Torus over the node budget.
            {
                let mut b = vec![2u8];
                b.extend_from_slice(&3u32.to_le_bytes());
                for _ in 0..3 {
                    b.extend_from_slice(&1024u32.to_le_bytes());
                }
                (b, "topology.torus")
            },
            // Odd fat-tree arity.
            {
                let mut b = vec![3u8];
                b.extend_from_slice(&5u32.to_le_bytes());
                (b, "topology.fattree.k")
            },
            // Fat-tree over the node budget (k=34 → 9826 hosts).
            {
                let mut b = vec![3u8];
                b.extend_from_slice(&34u32.to_le_bytes());
                (b, "topology.fattree")
            },
            // Unknown kind byte.
            (vec![9u8], "topology.kind"),
        ];
        for (topo_bytes, want_field) in cases {
            let mut body = vec![0x01u8]; // Submit
            body.extend_from_slice(&1u64.to_le_bytes()); // request_id
            body.push(0); // want_schedule
            body.extend_from_slice(&topo_bytes);
            match Request::decode_with(&body, &limits) {
                Err(DecodeError::BadValue { field, .. })
                | Err(DecodeError::LimitExceeded { field, .. }) => {
                    assert_eq!(field, want_field);
                }
                other => panic!("expected typed error for {want_field}, got {other:?}"),
            }
        }
    }

    #[test]
    fn hostile_specs_saturate_num_nodes_instead_of_overflowing() {
        // Hand-built specs bypass the decode limits entirely; the
        // arithmetic itself must be total. Each of these used to
        // overflow (debug panic / silent wrap in release).
        let overflowing = [
            TopologySpec::Hypercube { dims: u32::MAX },
            TopologySpec::Hypercube { dims: 64 },
            TopologySpec::Torus {
                extents: vec![u32::MAX; 8],
            },
            TopologySpec::Torus {
                extents: vec![1 << 22, 1 << 22, 1 << 22],
            },
        ];
        for spec in &overflowing {
            assert_eq!(spec.num_nodes(), usize::MAX, "{spec}");
        }
        // The worst mesh still fits 64-bit usize exactly (the overflow
        // was a 32-bit hazard); saturating_mul computes it precisely.
        let mesh = TopologySpec::Mesh2d {
            rows: u32::MAX,
            cols: u32::MAX,
        };
        assert_eq!(
            mesh.num_nodes(),
            (u32::MAX as usize).saturating_mul(u32::MAX as usize)
        );
        // FatTree k is capped at u32, k³/4 saturates rather than wraps.
        let ft = TopologySpec::FatTree { k: u32::MAX };
        assert!(ft.num_nodes() >= usize::MAX / 4);
        // Sane specs are untouched by the checked arithmetic.
        assert_eq!(TopologySpec::Hypercube { dims: 10 }.num_nodes(), 1024);
    }

    #[test]
    fn unbuildable_specs_are_typed_errors_not_panics() {
        let cases = [
            TopologySpec::Hypercube { dims: 0 },
            TopologySpec::Hypercube { dims: u32::MAX },
            TopologySpec::Mesh2d { rows: 0, cols: 4 },
            TopologySpec::Torus {
                extents: vec![u32::MAX; 8],
            },
            TopologySpec::Torus { extents: vec![] },
            TopologySpec::FatTree { k: 7 },
            TopologySpec::FatTree { k: u32::MAX },
        ];
        for spec in cases {
            assert!(spec.try_build().is_err(), "{spec} should not build");
        }
    }

    #[test]
    fn cost_model_rides_the_wire_and_uniform_stays_byte_identical() {
        // Uniform encodes nothing: the frame is byte-for-byte the
        // pre-cost-model format, so old daemons keep serving it.
        let uniform = sample_request();
        let mut legacy = uniform.clone();
        legacy.cost_model = LinkCostModel::Uniform;
        assert_eq!(uniform.encode(), legacy.encode());
        match Request::decode(&uniform.encode()).unwrap() {
            Request::Submit(req) => assert!(req.cost_model.is_uniform()),
            other => panic!("expected submit, got {other:?}"),
        }
        // Non-uniform models roundtrip through their canonical string.
        for model in [
            "loggp:o=75000,g=10000,G=1.5",
            "hetero:factor=4.0,frac=0.1,lat=2000,seed=9",
            "faulty:p=0.05,seed=42",
        ] {
            let mut req = sample_request();
            req.cost_model = model.parse().unwrap();
            let decoded = Request::decode(&req.encode()).unwrap();
            assert_eq!(decoded, Request::Submit(req));
        }
    }

    #[test]
    fn hostile_cost_model_strings_are_typed_errors() {
        let mut body = sample_request().encode();
        // A syntactically valid string field that fails the grammar.
        let junk = b"faulty:p=fast";
        body.extend_from_slice(&(junk.len() as u32).to_le_bytes());
        body.extend_from_slice(junk);
        assert!(matches!(
            Request::decode(&body),
            Err(DecodeError::Invalid(msg)) if msg.contains("cost model")
        ));
        // A length prefix pointing past the body is truncation.
        let mut torn = sample_request().encode();
        torn.extend_from_slice(&64u32.to_le_bytes());
        torn.extend_from_slice(b"faulty:");
        assert!(matches!(
            Request::decode(&torn),
            Err(DecodeError::Truncated)
        ));
        // An oversized claimed length trips the string bomb guard
        // before any allocation proportional to it.
        let mut bomb = sample_request().encode();
        bomb.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            Request::decode(&bomb),
            Err(DecodeError::BadString("cost_model"))
        ));
    }
}
