//! A bounded MPMC job queue with typed backpressure.
//!
//! The daemon's admission stage pushes with [`BoundedQueue::try_push`],
//! which **never blocks**: a full queue is an immediate
//! [`PushError::Full`] that the connection layer turns into an
//! `Overloaded` error frame. Blocking the reader thread on a full queue
//! would convert overload into unbounded client-side latency and make
//! the daemon's capacity invisible; a typed rejection keeps the contract
//! testable ("fill the queue, observe `Overloaded`, drain, observe
//! success").
//!
//! Workers block on [`BoundedQueue::pop`], which returns `None` only
//! once the queue is both closed and empty — so closing the queue *is*
//! the graceful-drain protocol: everything admitted before the close is
//! still served.
//!
//! [`BoundedQueue::pause`] / [`BoundedQueue::resume`] gate the consumer
//! side without touching the producer side. The fault-injection tests
//! use this to make "queue full" and "quota exhausted" deterministic
//! instead of racing against worker speed; a paused queue still drains
//! once closed, so a pause can never wedge shutdown.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — backpressure, try again after a pop.
    Full,
    /// The queue was closed — the daemon is draining.
    Closed,
}

impl fmt::Display for PushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::Full => f.write_str("queue full"),
            PushError::Closed => f.write_str("queue closed"),
        }
    }
}

impl std::error::Error for PushError {}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    paused: bool,
}

/// Bounded multi-producer/multi-consumer FIFO.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    takeable: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (at least 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
                paused: false,
            }),
            capacity: capacity.max(1),
            takeable: Condvar::new(),
        }
    }

    /// Enqueue without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](Self::close); the item comes back inside the error's
    /// carrier — nothing is lost.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err((item, PushError::Closed));
        }
        if inner.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        inner.items.push_back(item);
        drop(inner);
        self.takeable.notify_one();
        Ok(())
    }

    /// Dequeue, blocking while the queue is empty (or paused) and open.
    /// `None` means closed **and** drained — the worker's exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if !inner.items.is_empty() && (!inner.paused || inner.closed) {
                return inner.items.pop_front();
            }
            if inner.closed && inner.items.is_empty() {
                return None;
            }
            inner = self.takeable.wait(inner).expect("queue lock");
        }
    }

    /// Stop consumers from taking items; producers are unaffected.
    pub fn pause(&self) {
        self.inner.lock().expect("queue lock").paused = true;
    }

    /// Undo [`pause`](Self::pause).
    pub fn resume(&self) {
        self.inner.lock().expect("queue lock").paused = false;
        self.takeable.notify_all();
    }

    /// Refuse new items; consumers drain what remains, then see `None`.
    /// A paused queue still drains — close overrides pause.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.takeable.notify_all();
    }

    /// Items currently waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err((3, PushError::Full)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_signals() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert_eq!(q.try_push("b"), Err(("b", PushError::Closed)));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pause_blocks_consumers_until_resume() {
        let q = Arc::new(BoundedQueue::new(4));
        q.pause();
        q.try_push(7).unwrap();
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        // The consumer must be parked on the pause, not racing us: give
        // it a moment, then confirm the item is still queued.
        thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.len(), 1);
        q.resume();
        assert_eq!(consumer.join().unwrap(), Some(7));
    }

    #[test]
    fn close_overrides_pause() {
        let q = BoundedQueue::new(4);
        q.pause();
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::new(8));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..100 {
                        let mut item = p * 1000 + i;
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err((back, PushError::Full)) => {
                                    item = back;
                                    thread::yield_now();
                                }
                                Err((_, PushError::Closed)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut seen = Vec::new();
                    while let Some(item) = q.pop() {
                        seen.push(item);
                    }
                    seen
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<i32> = (0..4)
            .flat_map(|p| (0..100).map(move |i| p * 1000 + i))
            .collect();
        assert_eq!(all, expected);
    }
}
