//! Transport abstraction: one daemon, Unix *or* TCP sockets.
//!
//! Everything above this module speaks [`Stream`] (a `Read + Write`
//! enum over the two socket kinds) and [`Endpoint`] (the parsed address
//! form shared by the daemon, `schedctl`, and `schedload`). Address
//! syntax:
//!
//! * `unix:/path/to.sock` — Unix domain socket (also any bare string
//!   containing `/`, for CLI convenience);
//! * `tcp:host:port` — TCP socket.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

/// A parsed daemon address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// Unix domain socket at this path.
    Unix(PathBuf),
    /// TCP `host:port`.
    Tcp(String),
}

impl Endpoint {
    /// Parse an address string (see the module docs for the syntax).
    ///
    /// # Errors
    ///
    /// A human-readable message for unparseable addresses.
    pub fn parse(addr: &str) -> Result<Endpoint, String> {
        if let Some(path) = addr.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path".into());
            }
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        if let Some(hostport) = addr.strip_prefix("tcp:") {
            if !hostport.contains(':') {
                return Err(format!("tcp address `{hostport}` is not host:port"));
            }
            return Ok(Endpoint::Tcp(hostport.to_string()));
        }
        if addr.contains('/') {
            return Ok(Endpoint::Unix(PathBuf::from(addr)));
        }
        Err(format!(
            "cannot parse `{addr}`: expected unix:<path>, tcp:<host:port>, or a filesystem path"
        ))
    }

    /// Connect a client stream to this endpoint.
    ///
    /// # Errors
    ///
    /// The underlying connect error.
    pub fn connect(&self) -> io::Result<Stream> {
        match self {
            Endpoint::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
            Endpoint::Tcp(addr) => Ok(Stream::Tcp(TcpStream::connect(addr.as_str())?)),
        }
    }

    /// Bind a listener on this endpoint. An existing Unix socket file
    /// is removed first (the daemon owns its path).
    ///
    /// # Errors
    ///
    /// The underlying bind error.
    pub fn bind(&self) -> io::Result<Listener> {
        match self {
            Endpoint::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                Ok(Listener::Unix(UnixListener::bind(path)?))
            }
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr.as_str())?)),
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// A connected socket of either kind.
#[derive(Debug)]
pub enum Stream {
    /// Unix domain socket.
    Unix(UnixStream),
    /// TCP socket.
    Tcp(TcpStream),
}

impl Stream {
    /// A second handle on the same socket (reader/writer split).
    ///
    /// # Errors
    ///
    /// The underlying `try_clone` error.
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Unix(s) => Ok(Stream::Unix(s.try_clone()?)),
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
        }
    }

    /// Shut down both directions; blocked reads on other handles of the
    /// same socket return EOF. Already-closed sockets are not an error.
    pub fn shutdown_both(&self) {
        let _ = match self {
            Stream::Unix(s) => s.shutdown(Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A bound listener of either kind.
pub enum Listener {
    /// Unix domain listener.
    Unix(UnixListener),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Block for the next connection.
    ///
    /// # Errors
    ///
    /// The underlying accept error.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l) => Ok(Stream::Unix(l.accept()?.0)),
            Listener::Tcp(l) => Ok(Stream::Tcp(l.accept()?.0)),
        }
    }

    /// The endpoint this listener is actually bound to — for TCP with
    /// port 0, the kernel-assigned port.
    ///
    /// # Errors
    ///
    /// The underlying `local_addr` error.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            Listener::Unix(l) => {
                let addr = l.local_addr()?;
                let path = addr
                    .as_pathname()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| PathBuf::from("<unnamed>"));
                Ok(Endpoint::Unix(path))
            }
            Listener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_syntax_parses_both_kinds() {
        assert_eq!(
            Endpoint::parse("unix:/tmp/s.sock"),
            Ok(Endpoint::Unix(PathBuf::from("/tmp/s.sock")))
        );
        assert_eq!(
            Endpoint::parse("/tmp/s.sock"),
            Ok(Endpoint::Unix(PathBuf::from("/tmp/s.sock")))
        );
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:7077"),
            Ok(Endpoint::Tcp("127.0.0.1:7077".into()))
        );
        assert!(Endpoint::parse("unix:").is_err());
        assert!(Endpoint::parse("tcp:nohost").is_err());
        assert!(Endpoint::parse("just-a-name").is_err());
    }

    #[test]
    fn tcp_streams_carry_bytes() {
        let listener = Endpoint::parse("tcp:127.0.0.1:0").unwrap().bind().unwrap();
        let endpoint = listener.local_endpoint().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = endpoint.connect().unwrap();
            stream.write_all(b"ping").unwrap();
            let mut buf = [0u8; 4];
            stream.read_exact(&mut buf).unwrap();
            buf
        });
        let mut served = listener.accept().unwrap();
        let mut buf = [0u8; 4];
        served.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        served.write_all(b"pong").unwrap();
        assert_eq!(&client.join().unwrap(), b"pong");
    }

    #[test]
    fn unix_streams_carry_bytes_and_rebind() {
        let dir = std::env::temp_dir().join(format!("schedd-net-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let endpoint = Endpoint::Unix(dir.join("s.sock"));
        // Bind twice: the second bind must clear the stale socket file.
        drop(endpoint.bind().unwrap());
        let listener = endpoint.bind().unwrap();
        let conn = {
            let endpoint = endpoint.clone();
            std::thread::spawn(move || {
                let mut stream = endpoint.connect().unwrap();
                stream.write_all(b"hi").unwrap();
            })
        };
        let mut served = listener.accept().unwrap();
        let mut buf = [0u8; 2];
        served.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
        conn.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
