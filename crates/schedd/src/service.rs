//! The daemon's compute pipeline, separated from all transport concerns.
//!
//! [`ServiceState::process`] is the whole pipeline after decode and
//! admission: **resolve → fingerprint → dedup → compile → simulate**.
//! It takes a decoded [`SubmitRequest`] and produces either a
//! [`SubmitReply`] or a typed [`ServiceError`]; the server wraps it in
//! socket plumbing, and the differential-conformance suite calls it (and
//! the registry directly) *in-process* to pin the daemon byte-identical
//! to library calls — which is only possible because nothing in here
//! knows about sockets.
//!
//! Two layers of reuse sit in front of the actual work:
//!
//! 1. [`SingleFlight`] coalesces *concurrent* identical requests onto
//!    one compile (keyed by the [`commcache::Fingerprint`], so "identical"
//!    means identical canonical bytes, not identical frames);
//! 2. [`commcache::SchedCache`] serves *repeat* requests from memory or
//!    the artifact store;
//! 3. an estimate memo does the same for simulation results, keyed
//!    (fingerprint, scheme, backend) — a duplicate-heavy load ends up
//!    touching neither the scheduler nor the simulator.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use commcache::{CacheConfig, CacheStats, InstanceKey, SchedCache};
use commrt::BackendReport;
use commsched::{registry, Schedule};
use simnet::MachineParams;

use crate::dedup::{FlightStats, SingleFlight};
use crate::protocol::{ErrorCode, ProtocolLimits, SubmitDeltaRequest, SubmitReply, SubmitRequest};

/// Tunables for a daemon instance.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Schedule-cache configuration (in-memory or persistent).
    pub cache: CacheConfig,
    /// Machine model priced by the simulation backends.
    pub params: MachineParams,
    /// Compile-queue capacity; a full queue rejects with `Overloaded`.
    pub queue_capacity: usize,
    /// Worker threads draining the compile queue.
    pub workers: usize,
    /// Per-connection in-flight cap; beyond it, `QuotaExceeded`.
    pub max_inflight_per_client: usize,
    /// Estimate-cache entry cap (clears wholesale when exceeded).
    pub estimate_cache_capacity: usize,
    /// Decode-time size limits (`--max-nodes` raises the node cap).
    pub limits: ProtocolLimits,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache: CacheConfig::in_memory(),
            params: MachineParams::ipsc860(),
            queue_capacity: 1024,
            workers: 2,
            max_inflight_per_client: 256,
            estimate_cache_capacity: 65_536,
            limits: ProtocolLimits::default(),
        }
    }
}

/// Typed pipeline failure. `Clone` so a coalesced flight can hand every
/// waiter the same error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// No registry entry under this name.
    UnknownScheduler(String),
    /// The entry declines the requested topology.
    UnsupportedTopology {
        /// The entry that declined.
        scheduler: String,
        /// The topology it declined.
        topology: String,
    },
    /// Decoded fine but semantically unservable.
    BadRequest(String),
    /// The simulation backend failed (stringified [`simnet::SimError`]).
    Sim(String),
    /// A delta submit named a base instance the daemon does not retain.
    /// Recoverable: the client resubmits the full matrix.
    UnknownBase(String),
}

impl ServiceError {
    /// The wire error code this failure maps to.
    pub fn code(&self) -> ErrorCode {
        match self {
            ServiceError::UnknownScheduler(_) => ErrorCode::UnknownScheduler,
            ServiceError::UnsupportedTopology { .. } => ErrorCode::UnsupportedTopology,
            ServiceError::BadRequest(_) => ErrorCode::BadRequest,
            ServiceError::Sim(_) => ErrorCode::SimFailed,
            ServiceError::UnknownBase(_) => ErrorCode::UnknownBase,
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownScheduler(name) => {
                write!(f, "no scheduler named `{name}` in the registry")
            }
            ServiceError::UnsupportedTopology {
                scheduler,
                topology,
            } => write!(f, "scheduler {scheduler} does not support {topology}"),
            ServiceError::BadRequest(what) => write!(f, "bad request: {what}"),
            ServiceError::Sim(what) => write!(f, "simulation failed: {what}"),
            ServiceError::UnknownBase(what) => write!(f, "unknown base: {what}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Cache of backend estimates keyed (fingerprint, scheme, backend).
///
/// Eviction is wholesale: when the table exceeds its cap it is cleared.
/// Crude, but the table is small (a few hundred bytes per entry), the
/// cap is large, and clearing costs one rebuild of a working set the
/// schedule cache still remembers — LRU bookkeeping on the daemon's
/// hottest path would cost more than it saves.
struct EstimateCache {
    entries: Mutex<HashMap<(u128, u8, u8), Arc<BackendReport>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EstimateCache {
    fn new(capacity: usize) -> EstimateCache {
        EstimateCache {
            entries: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn get(&self, key: (u128, u8, u8)) -> Option<Arc<BackendReport>> {
        let hit = self
            .entries
            .lock()
            .expect("estimate lock")
            .get(&key)
            .cloned();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn insert(&self, key: (u128, u8, u8), report: Arc<BackendReport>) {
        let mut entries = self.entries.lock().expect("estimate lock");
        if entries.len() >= self.capacity {
            entries.clear();
        }
        entries.insert(key, report);
    }
}

/// Everything the pipeline shares across requests and threads.
pub struct ServiceState {
    params: MachineParams,
    cache: SchedCache,
    flight: SingleFlight<u128, Arc<Schedule>, ServiceError>,
    estimates: EstimateCache,
    compiles: AtomicU64,
}

impl ServiceState {
    /// Build the pipeline from its tunables.
    pub fn new(config: &ServiceConfig) -> ServiceState {
        ServiceState {
            params: config.params.clone(),
            cache: SchedCache::new(config.cache.clone()),
            flight: SingleFlight::new(),
            estimates: EstimateCache::new(config.estimate_cache_capacity),
            compiles: AtomicU64::new(0),
        }
    }

    /// The machine model estimates are priced against.
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// Schedule-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Dedup-stage counters.
    pub fn flight_stats(&self) -> FlightStats {
        self.flight.stats()
    }

    /// Estimate-cache counters: `(hits, misses)`.
    pub fn estimate_stats(&self) -> (u64, u64) {
        (
            self.estimates.hits.load(Ordering::Relaxed),
            self.estimates.misses.load(Ordering::Relaxed),
        )
    }

    /// Compiles actually executed (true misses through every layer).
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    /// Incremental-layer counters, when the cache has the layer enabled.
    pub fn incremental_stats(&self) -> Option<commcache::IncrementalStats> {
        self.cache.incremental_stats()
    }

    /// Resolve a delta submit into the full request it denotes: fetch
    /// the retained base matrix, apply the edits, and hand back a
    /// [`SubmitRequest`] indistinguishable from a full submit of the
    /// perturbed matrix — which is what makes delta replies
    /// byte-identical to full-submit replies by construction.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownBase`] when the incremental layer is off
    /// or the named base is not resident; [`ServiceError::BadRequest`]
    /// when the delta does not apply to its base.
    pub fn resolve_delta(&self, req: &SubmitDeltaRequest) -> Result<SubmitRequest, ServiceError> {
        let inc = self.cache.incremental().ok_or_else(|| {
            ServiceError::UnknownBase(
                "incremental compilation is disabled on this daemon (start it with --incremental)"
                    .into(),
            )
        })?;
        let base = inc.base_matrix(req.base).ok_or_else(|| {
            ServiceError::UnknownBase(format!(
                "base instance {} is not retained (evicted or never submitted)",
                req.base.to_hex()
            ))
        })?;
        let matrix = req
            .delta
            .apply(&base)
            .map_err(|e| ServiceError::BadRequest(format!("delta does not apply to base: {e}")))?;
        Ok(SubmitRequest {
            request_id: req.request_id,
            want_schedule: req.want_schedule,
            topology: req.topology.clone(),
            scheduler: req.scheduler.clone(),
            scheme: req.scheme,
            backend: req.backend,
            seed: req.seed,
            matrix,
            cost_model: req.cost_model,
        })
    }

    /// Cheap pre-queue validation: the failures worth rejecting before
    /// spending a queue slot. Returns the entry's registry name on
    /// success (needed for nothing else; admission is pure).
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownScheduler`], [`ServiceError::UnsupportedTopology`],
    /// or [`ServiceError::BadRequest`] on a size mismatch.
    pub fn admit(&self, req: &SubmitRequest) -> Result<(), ServiceError> {
        let entry = registry::find(&req.scheduler)
            .ok_or_else(|| ServiceError::UnknownScheduler(req.scheduler.clone()))?;
        if req.matrix.n() != req.topology.num_nodes() {
            return Err(ServiceError::BadRequest(format!(
                "matrix spans {} nodes but topology {} has {}",
                req.matrix.n(),
                req.topology,
                req.topology.num_nodes()
            )));
        }
        let topo = req.topology.build();
        if !entry.supports_topology(topo.as_ref()) {
            return Err(ServiceError::UnsupportedTopology {
                scheduler: entry.name().to_string(),
                topology: req.topology.to_string(),
            });
        }
        Ok(())
    }

    /// The full pipeline for one admitted request.
    ///
    /// # Errors
    ///
    /// Everything [`admit`](Self::admit) can raise (so unadmitted
    /// callers still get typed errors), plus [`ServiceError::Sim`].
    pub fn process(&self, req: &SubmitRequest) -> Result<SubmitReply, ServiceError> {
        let entry = registry::find(&req.scheduler)
            .ok_or_else(|| ServiceError::UnknownScheduler(req.scheduler.clone()))?;
        if req.matrix.n() != req.topology.num_nodes() {
            return Err(ServiceError::BadRequest(format!(
                "matrix spans {} nodes but topology {} has {}",
                req.matrix.n(),
                req.topology,
                req.topology.num_nodes()
            )));
        }
        let topo = req.topology.build();
        if !entry.supports_topology(topo.as_ref()) {
            return Err(ServiceError::UnsupportedTopology {
                scheduler: entry.name().to_string(),
                topology: req.topology.to_string(),
            });
        }
        let key = InstanceKey::compute(&req.matrix, topo.as_ref());
        let fp = key.schedule_key(entry.name(), req.seed);

        // Dedup stage: concurrent identical fingerprints ride one
        // compile; the cache underneath serves repeats. `compiled_here`
        // distinguishes a true compile from a cache hit inside the led
        // flight. With the incremental layer enabled, a fingerprint miss
        // first tries to patch a retained base schedule; a validated
        // patch still counts as freshly compiled (this request produced
        // the schedule rather than being served one).
        let incremental = self.cache.incremental();
        let compiled_here = std::cell::Cell::new(false);
        let (schedule, led) = self.flight.run(fp.0, || {
            Ok(self.cache.get_or_compute_on(fp, topo.as_ref(), || {
                compiled_here.set(true);
                let patched = incremental.and_then(|inc| {
                    inc.get_patched(entry, key, &req.matrix, topo.as_ref(), req.seed)
                });
                match patched {
                    Some(schedule) => {
                        Arc::try_unwrap(schedule).unwrap_or_else(|arc| (*arc).clone())
                    }
                    None => entry.schedule(&req.matrix, topo.as_ref(), req.seed),
                }
            }))
        });
        let schedule = schedule?;
        if let Some(inc) = incremental {
            // Every served request becomes a future patch base, so
            // drifting patterns chain from iteration to iteration.
            inc.register(
                key,
                &req.matrix,
                topo.as_ref(),
                entry.name(),
                req.seed,
                Arc::clone(&schedule),
            );
        }
        let freshly_compiled = led && compiled_here.get();
        if freshly_compiled {
            self.compiles.fetch_add(1, Ordering::Relaxed);
        }

        let scheme = req.scheme.resolve(entry);
        // Schedules are cost-model agnostic (the scheduler never sees
        // link prices), so `fp` stays the cache/dedup key above. The
        // *estimate* is not: fold the canonical cost string into the
        // memo key via the fingerprint extension — the identity for
        // uniform, so pre-cost-model keys are unchanged.
        let est_fp = fp.with_cost_model(&req.cost_model.to_string());
        let estimate_key = (est_fp.0, scheme as u8, req.backend as u8);
        let estimate = match self.estimates.get(estimate_key) {
            Some(report) => report,
            None => {
                let report = req
                    .backend
                    .backend()
                    .estimate_costed(
                        &self.params,
                        &req.cost_model,
                        topo.as_ref(),
                        &req.matrix,
                        &schedule,
                        scheme,
                    )
                    .map_err(|e| ServiceError::Sim(e.to_string()))?;
                let report = Arc::new(report);
                self.estimates.insert(estimate_key, Arc::clone(&report));
                report
            }
        };

        Ok(SubmitReply {
            request_id: req.request_id,
            fingerprint: fp,
            freshly_compiled,
            estimate: (*estimate).clone(),
            schedule: req.want_schedule.then(|| Arc::clone(&schedule)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{SchemeChoice, TopologySpec};
    use commrt::{BackendKind, Scheme};
    use commsched::CommMatrix;
    use simnet::LinkCostModel;

    fn request(seed: u64, backend: BackendKind) -> SubmitRequest {
        let mut matrix = CommMatrix::new(8);
        matrix.set(0, 3, 512);
        matrix.set(3, 0, 512);
        matrix.set(1, 6, 256);
        SubmitRequest {
            request_id: 1,
            want_schedule: true,
            topology: TopologySpec::Hypercube { dims: 3 },
            scheduler: "RS_NL".into(),
            scheme: SchemeChoice::Default,
            backend,
            seed,
            matrix,
            cost_model: LinkCostModel::Uniform,
        }
    }

    #[test]
    fn process_matches_direct_library_calls() {
        let state = ServiceState::new(&ServiceConfig::default());
        let req = request(11, BackendKind::Des);
        let reply = state.process(&req).unwrap();
        assert!(reply.freshly_compiled);

        let entry = registry::find("RS_NL").unwrap();
        let topo = req.topology.build();
        let direct = entry.schedule(&req.matrix, topo.as_ref(), req.seed);
        assert_eq!(**reply.schedule.as_ref().unwrap(), direct);
        let direct_report = BackendKind::Des
            .backend()
            .estimate(
                state.params(),
                topo.as_ref(),
                &req.matrix,
                &direct,
                Scheme::S1,
            )
            .unwrap();
        assert_eq!(reply.estimate, direct_report);
    }

    #[test]
    fn repeats_hit_every_cache_layer() {
        let state = ServiceState::new(&ServiceConfig::default());
        let req = request(5, BackendKind::Analytic);
        let first = state.process(&req).unwrap();
        let second = state.process(&req).unwrap();
        assert!(first.freshly_compiled);
        assert!(!second.freshly_compiled);
        assert_eq!(first.fingerprint, second.fingerprint);
        assert_eq!(first.estimate, second.estimate);
        assert_eq!(state.compiles(), 1);
        assert_eq!(state.cache_stats().misses, 1);
        let (est_hits, est_misses) = state.estimate_stats();
        assert_eq!((est_hits, est_misses), (1, 1));
    }

    #[test]
    fn distinct_backends_share_the_compile_not_the_estimate() {
        let state = ServiceState::new(&ServiceConfig::default());
        let des = state.process(&request(5, BackendKind::Des)).unwrap();
        let analytic = state.process(&request(5, BackendKind::Analytic)).unwrap();
        assert_eq!(des.fingerprint, analytic.fingerprint);
        assert_eq!(state.compiles(), 1);
        let (_, est_misses) = state.estimate_stats();
        assert_eq!(est_misses, 2);
    }

    #[test]
    fn cost_models_share_the_compile_not_the_estimate() {
        let state = ServiceState::new(&ServiceConfig::default());
        let uniform = state.process(&request(5, BackendKind::Analytic)).unwrap();
        let mut priced = request(5, BackendKind::Analytic);
        priced.cost_model = "loggp:o=5000,g=1000,G=2.0".parse().unwrap();
        let costed = state.process(&priced).unwrap();
        // One compile: the schedule is cost-model agnostic.
        assert_eq!(state.compiles(), 1);
        assert_eq!(uniform.fingerprint, costed.fingerprint);
        // Two estimate-cache entries: pricing is not.
        let (_, est_misses) = state.estimate_stats();
        assert_eq!(est_misses, 2);
        assert!(costed.estimate.makespan_ns > uniform.estimate.makespan_ns);
        // Repeats of the priced request hit the costed memo entry.
        let again = state.process(&priced).unwrap();
        assert_eq!(again.estimate, costed.estimate);
        assert_eq!(state.estimate_stats().0, 1);
    }

    #[test]
    fn admission_rejects_with_typed_errors() {
        let state = ServiceState::new(&ServiceConfig::default());
        let mut unknown = request(1, BackendKind::Des);
        unknown.scheduler = "FASTER_THAN_LIGHT".into();
        assert!(matches!(
            state.admit(&unknown),
            Err(ServiceError::UnknownScheduler(_))
        ));
        // LP is pinned to e-cube hypercubes; a mesh must be declined.
        let mut mesh = request(1, BackendKind::Des);
        mesh.scheduler = "LP".into();
        mesh.topology = TopologySpec::Mesh2d { rows: 2, cols: 4 };
        assert!(matches!(
            state.admit(&mesh),
            Err(ServiceError::UnsupportedTopology { .. })
        ));
        let mut mismatched = request(1, BackendKind::Des);
        mismatched.topology = TopologySpec::Hypercube { dims: 4 };
        assert!(matches!(
            state.admit(&mismatched),
            Err(ServiceError::BadRequest(_))
        ));
        // Errors map to distinct wire codes.
        assert_eq!(
            state.admit(&unknown).unwrap_err().code(),
            ErrorCode::UnknownScheduler
        );
    }
}
