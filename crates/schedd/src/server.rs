//! The daemon shell: sockets, threads, admission, and graceful drain.
//!
//! Thread anatomy of a running [`Server`]:
//!
//! * one **acceptor** blocks on the listener and spawns a reader per
//!   connection;
//! * one **reader per connection** decodes frames and runs the
//!   admission stage (drain check → registry/topology validation →
//!   per-client quota → bounded-queue push). Every rejection is a typed
//!   error frame; the connection stays healthy;
//! * a fixed pool of **workers** pops admitted jobs and runs the
//!   [`ServiceState`] pipeline, writing responses under the
//!   connection's writer lock — which is why responses can overtake
//!   each other and every frame echoes its `request_id`.
//!
//! Graceful shutdown (from [`ServerHandle::shutdown`] or a client's
//! `Shutdown` frame) is an ordering, not a flag: mark draining (new
//! submits → `ShuttingDown`) → wake and join the acceptor → close the
//! queue and join the workers, which **drains every admitted job** →
//! unblock and join the readers → remove the Unix socket file. Nothing
//! admitted is dropped; nothing after the drain mark is accepted.

use std::collections::HashMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::net::{Endpoint, Listener, Stream};
use crate::protocol::{
    read_frame, write_frame, DaemonStats, ErrorCode, ErrorReply, FrameError, Request, Response,
    SubmitRequest,
};
use crate::queue::{BoundedQueue, PushError};
use crate::service::{ServiceConfig, ServiceState};

/// One admitted request on its way to the worker pool.
struct Job {
    req: SubmitRequest,
    writer: Arc<Mutex<Stream>>,
    conn: Arc<ConnState>,
}

/// Per-connection shared state (reader + workers).
struct ConnState {
    id: u64,
    inflight: AtomicU64,
}

/// Counters backing [`DaemonStats`]. Everything is a relaxed atomic:
/// these are metrics, not synchronization.
#[derive(Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_active: AtomicU64,
    disconnects_midstream: AtomicU64,
    submits: AtomicU64,
    delta_submits: AtomicU64,
    completed: AtomicU64,
    rejected_quota: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_shutdown: AtomicU64,
    errors_malformed: AtomicU64,
    errors_other: AtomicU64,
    write_failures: AtomicU64,
    inflight: AtomicU64,
}

/// State shared by every daemon thread.
struct Shared {
    state: ServiceState,
    queue: BoundedQueue<Job>,
    counters: Counters,
    config: ServiceConfig,
    endpoint: Endpoint,
    /// Set once a shutdown is requested; admission rejects from then on.
    draining: Mutex<bool>,
    drain_requested: Condvar,
    /// Live connections, by id, as extra socket handles for shutdown.
    conns: Mutex<HashMap<u64, Stream>>,
}

impl Shared {
    fn is_draining(&self) -> bool {
        *self.draining.lock().expect("drain lock")
    }

    fn request_drain(&self) {
        *self.draining.lock().expect("drain lock") = true;
        self.drain_requested.notify_all();
    }

    fn stats(&self) -> DaemonStats {
        let cache = self.state.cache_stats();
        let flight = self.state.flight_stats();
        let (estimate_hits, estimate_misses) = self.state.estimate_stats();
        let incr = self.state.incremental_stats().unwrap_or_default();
        let c = &self.counters;
        DaemonStats {
            connections_accepted: c.connections_accepted.load(Ordering::Relaxed),
            connections_active: c.connections_active.load(Ordering::Relaxed),
            disconnects_midstream: c.disconnects_midstream.load(Ordering::Relaxed),
            submits: c.submits.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            compiles: self.state.compiles(),
            coalesced: flight.coalesced,
            cache_requests: cache.requests,
            cache_mem_hits: cache.mem_hits,
            cache_store_hits: cache.store_hits,
            cache_misses: cache.misses,
            estimate_hits,
            estimate_misses,
            rejected_quota: c.rejected_quota.load(Ordering::Relaxed),
            rejected_overload: c.rejected_overload.load(Ordering::Relaxed),
            rejected_shutdown: c.rejected_shutdown.load(Ordering::Relaxed),
            errors_malformed: c.errors_malformed.load(Ordering::Relaxed),
            errors_other: c.errors_other.load(Ordering::Relaxed),
            write_failures: c.write_failures.load(Ordering::Relaxed),
            queue_depth: self.queue.len() as u64,
            inflight: c.inflight.load(Ordering::Relaxed),
            draining: u64::from(self.is_draining()),
            delta_submits: c.delta_submits.load(Ordering::Relaxed),
            incr_base_hits: incr.base_hits,
            incr_patches: incr.patches,
            incr_fallbacks: incr.fallbacks,
            incr_validation_rejections: incr.validation_rejections,
        }
    }

    /// Write one response frame under the connection's writer lock.
    fn write_response(&self, writer: &Arc<Mutex<Stream>>, resp: &Response) -> io::Result<()> {
        let body = resp.encode();
        let mut stream = writer.lock().expect("writer lock");
        write_frame(&mut *stream, &body)?;
        stream.flush()
    }

    /// Best-effort error frame; a dead client is not the daemon's
    /// problem here.
    fn write_error(
        &self,
        writer: &Arc<Mutex<Stream>>,
        request_id: u64,
        code: ErrorCode,
        detail: String,
    ) {
        let resp = Response::Error(ErrorReply {
            request_id,
            code,
            detail,
        });
        if self.write_response(writer, &resp).is_err() {
            self.counters.write_failures.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A running daemon.
pub struct Server;

/// Handle on a running daemon: stats, test hooks, shutdown.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `endpoint` and start serving.
    ///
    /// # Errors
    ///
    /// The bind error, if the endpoint cannot be listened on.
    pub fn start(config: ServiceConfig, endpoint: &Endpoint) -> io::Result<ServerHandle> {
        let listener = endpoint.bind()?;
        let bound = listener.local_endpoint()?;
        let shared = Arc::new(Shared {
            state: ServiceState::new(&config),
            queue: BoundedQueue::new(config.queue_capacity),
            counters: Counters::default(),
            config,
            endpoint: bound,
            draining: Mutex::new(false),
            drain_requested: Condvar::new(),
            conns: Mutex::new(HashMap::new()),
        });

        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("schedd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let readers = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let readers = Arc::clone(&readers);
            std::thread::Builder::new()
                .name("schedd-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared, &readers))
                .expect("spawn acceptor")
        };

        Ok(ServerHandle {
            shared,
            acceptor: Some(acceptor),
            readers,
            workers,
        })
    }
}

impl ServerHandle {
    /// The endpoint actually bound (TCP port 0 resolved).
    pub fn endpoint(&self) -> &Endpoint {
        &self.shared.endpoint
    }

    /// Snapshot every daemon counter.
    pub fn stats(&self) -> DaemonStats {
        self.shared.stats()
    }

    /// Test hook: stop workers from taking jobs, making queue depth and
    /// quota occupancy deterministic. Drain ([`shutdown`](Self::shutdown))
    /// overrides a pause.
    pub fn pause_workers(&self) {
        self.shared.queue.pause();
    }

    /// Undo [`pause_workers`](Self::pause_workers).
    pub fn resume_workers(&self) {
        self.shared.queue.resume();
    }

    /// Block until some client sends a `Shutdown` frame (the daemon
    /// binary's main-thread parking spot).
    pub fn wait_shutdown_requested(&self) {
        let mut draining = self.shared.draining.lock().expect("drain lock");
        while !*draining {
            draining = self
                .shared
                .drain_requested
                .wait(draining)
                .expect("drain lock");
        }
    }

    /// Drain and stop: serve everything admitted, reject everything
    /// new, join every thread, remove the Unix socket file.
    pub fn shutdown(mut self) {
        self.shared.request_drain();

        // The acceptor is parked in accept(); a throwaway connection
        // wakes it so it can observe the drain flag and exit.
        if let Ok(stream) = self.shared.endpoint.connect() {
            drop(stream);
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }

        // Closing the queue lets workers drain admitted jobs and exit.
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }

        // Readers are parked in read_frame(); shutting the sockets down
        // turns that into EOF.
        for (_, stream) in self.shared.conns.lock().expect("conns lock").drain() {
            stream.shutdown_both();
        }
        let handles: Vec<_> = self
            .readers
            .lock()
            .expect("readers lock")
            .drain(..)
            .collect();
        for reader in handles {
            let _ = reader.join();
        }

        if let Endpoint::Unix(path) = &self.shared.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn acceptor_loop(
    listener: &Listener,
    shared: &Arc<Shared>,
    readers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_conn_id: u64 = 1;
    loop {
        let stream = match listener.accept() {
            Ok(stream) => stream,
            Err(_) if shared.is_draining() => return,
            Err(_) => continue,
        };
        if shared.is_draining() {
            // The wake-up connection (or a late client): drop it.
            return;
        }
        let conn_id = next_conn_id;
        next_conn_id += 1;
        shared
            .counters
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .connections_active
            .fetch_add(1, Ordering::Relaxed);
        if let Ok(extra) = stream.try_clone() {
            shared
                .conns
                .lock()
                .expect("conns lock")
                .insert(conn_id, extra);
        }
        let shared = Arc::clone(shared);
        let reader = std::thread::Builder::new()
            .name(format!("schedd-conn-{conn_id}"))
            .spawn(move || {
                reader_loop(stream, conn_id, &shared);
                shared.conns.lock().expect("conns lock").remove(&conn_id);
                shared
                    .counters
                    .connections_active
                    .fetch_sub(1, Ordering::Relaxed);
            })
            .expect("spawn reader");
        readers.lock().expect("readers lock").push(reader);
    }
}

fn reader_loop(stream: Stream, conn_id: u64, shared: &Arc<Shared>) {
    let mut reading = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => stream,
    };
    let writer = Arc::new(Mutex::new(match reading.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    }));
    let conn = Arc::new(ConnState {
        id: conn_id,
        inflight: AtomicU64::new(0),
    });
    loop {
        match read_frame(&mut reading) {
            Ok(None) => return, // clean close between frames
            Ok(Some(body)) => match Request::decode_with(&body, &shared.config.limits) {
                Ok(req) => handle_request(req, &writer, &conn, shared),
                Err(e) => {
                    shared
                        .counters
                        .errors_malformed
                        .fetch_add(1, Ordering::Relaxed);
                    // Framing is intact, so the stream stays usable.
                    shared.write_error(&writer, 0, ErrorCode::Malformed, e.to_string());
                }
            },
            Err(e) => {
                match &e {
                    FrameError::Io(_) | FrameError::Truncated => {
                        shared
                            .counters
                            .disconnects_midstream
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    FrameError::BadMagic(_) | FrameError::Oversized(_) | FrameError::Checksum => {
                        shared
                            .counters
                            .errors_malformed
                            .fetch_add(1, Ordering::Relaxed);
                        // Byte-stream sync is lost; tell the peer why,
                        // then hang up.
                        shared.write_error(&writer, 0, ErrorCode::Malformed, e.to_string());
                    }
                }
                return;
            }
        }
    }
}

fn handle_request(
    req: Request,
    writer: &Arc<Mutex<Stream>>,
    conn: &Arc<ConnState>,
    shared: &Arc<Shared>,
) {
    match req {
        Request::Stats { request_id } => {
            let resp = Response::Stats {
                request_id,
                stats: shared.stats(),
            };
            if shared.write_response(writer, &resp).is_err() {
                shared
                    .counters
                    .write_failures
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        Request::Shutdown { request_id } => {
            let resp = Response::ShutdownAck { request_id };
            if shared.write_response(writer, &resp).is_err() {
                shared
                    .counters
                    .write_failures
                    .fetch_add(1, Ordering::Relaxed);
            }
            shared.request_drain();
        }
        Request::Submit(req) => handle_submit(req, writer, conn, shared),
        Request::SubmitDelta(req) => {
            // Resolve the delta against its retained base, then the
            // reconstructed full request rides the ordinary submit path —
            // same fingerprint, same cache, byte-identical replies.
            shared
                .counters
                .delta_submits
                .fetch_add(1, Ordering::Relaxed);
            match shared.state.resolve_delta(&req) {
                Ok(full) => handle_submit(full, writer, conn, shared),
                Err(e) => {
                    shared.counters.errors_other.fetch_add(1, Ordering::Relaxed);
                    shared.write_error(writer, req.request_id, e.code(), e.to_string());
                }
            }
        }
    }
}

/// The admission stage: drain check → semantic validation → quota →
/// queue. Rejections are typed error frames; the connection survives.
fn handle_submit(
    req: SubmitRequest,
    writer: &Arc<Mutex<Stream>>,
    conn: &Arc<ConnState>,
    shared: &Arc<Shared>,
) {
    shared.counters.submits.fetch_add(1, Ordering::Relaxed);
    let request_id = req.request_id;
    if shared.is_draining() {
        shared
            .counters
            .rejected_shutdown
            .fetch_add(1, Ordering::Relaxed);
        shared.write_error(
            writer,
            request_id,
            ErrorCode::ShuttingDown,
            "daemon is draining".into(),
        );
        return;
    }
    if let Err(e) = shared.state.admit(&req) {
        shared.counters.errors_other.fetch_add(1, Ordering::Relaxed);
        shared.write_error(writer, request_id, e.code(), e.to_string());
        return;
    }
    // Quota: optimistic increment, revert on rejection — never exceeds
    // the cap even with a racing pipelined client.
    let quota = shared.config.max_inflight_per_client as u64;
    if conn.inflight.fetch_add(1, Ordering::AcqRel) >= quota {
        conn.inflight.fetch_sub(1, Ordering::AcqRel);
        shared
            .counters
            .rejected_quota
            .fetch_add(1, Ordering::Relaxed);
        shared.write_error(
            writer,
            request_id,
            ErrorCode::QuotaExceeded,
            format!(
                "more than {quota} requests in flight on connection {}",
                conn.id
            ),
        );
        return;
    }
    shared.counters.inflight.fetch_add(1, Ordering::Relaxed);
    let job = Job {
        req,
        writer: Arc::clone(writer),
        conn: Arc::clone(conn),
    };
    if let Err((job, push_err)) = shared.queue.try_push(job) {
        job.conn.inflight.fetch_sub(1, Ordering::AcqRel);
        shared.counters.inflight.fetch_sub(1, Ordering::Relaxed);
        let (code, counter, detail) = match push_err {
            PushError::Full => (
                ErrorCode::Overloaded,
                &shared.counters.rejected_overload,
                format!("compile queue full ({} jobs)", shared.config.queue_capacity),
            ),
            PushError::Closed => (
                ErrorCode::ShuttingDown,
                &shared.counters.rejected_shutdown,
                "daemon is draining".to_string(),
            ),
        };
        counter.fetch_add(1, Ordering::Relaxed);
        shared.write_error(writer, request_id, code, detail);
    }
}

/// Worker: pop, run the pipeline, write the answer.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let resp = match shared.state.process(&job.req) {
            Ok(reply) => Response::Schedule(reply),
            Err(e) => {
                shared.counters.errors_other.fetch_add(1, Ordering::Relaxed);
                Response::Error(ErrorReply {
                    request_id: job.req.request_id,
                    code: e.code(),
                    detail: e.to_string(),
                })
            }
        };
        let wrote = shared.write_response(&job.writer, &resp).is_ok();
        match (&resp, wrote) {
            (Response::Schedule(_), true) => {
                shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            }
            (_, false) => {
                shared
                    .counters
                    .write_failures
                    .fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        job.conn.inflight.fetch_sub(1, Ordering::AcqRel);
        shared.counters.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}
