//! `schedd` — the scheduling daemon.
//!
//! ```text
//! schedd --unix /tmp/schedd.sock [--workers 2] [--queue 1024]
//! schedd --tcp 127.0.0.1:7077 --store /var/cache/ipsc-sched
//! ```
//!
//! Serves schedule requests until a client sends a `Shutdown` frame
//! (`schedctl shutdown --addr ...`), then drains admitted work and
//! exits 0.

use std::process::ExitCode;

use commcache::CacheConfig;
use schedd::{Endpoint, ProtocolLimits, Server, ServiceConfig};

const USAGE: &str = "\
schedd - scheduling daemon serving compiled schedules + cost estimates

USAGE:
    schedd (--unix <path> | --tcp <host:port> | --addr <endpoint>) [options]

OPTIONS:
    --unix <path>        listen on a Unix domain socket
    --tcp <host:port>    listen on TCP (port 0 picks a free port)
    --addr <endpoint>    unix:<path> or tcp:<host:port>
    --workers <n>        compile worker threads        [default: 2]
    --queue <n>          compile queue capacity        [default: 1024]
    --quota <n>          per-connection in-flight cap  [default: 256]
    --max-nodes <n>      largest request node count    [default: 1024]
                         (raises the dimension cap to ceil(log2(n));
                         the matrix-cell allocation guard stays in force)
    --store <dir>        persistent artifact store for the schedule cache
    --estimate-cache <n> estimate cache entry cap      [default: 65536]
    --incremental        retain recent base instances and serve drifted
                         matrices by patching (enables SubmitDelta)
    -h, --help           print this help
";

fn parse_args() -> Result<(ServiceConfig, Endpoint), String> {
    let mut endpoint: Option<Endpoint> = None;
    let mut config = ServiceConfig::default();
    let mut incremental = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match arg.as_str() {
            "--unix" => endpoint = Some(Endpoint::Unix(value("--unix")?.into())),
            "--tcp" => endpoint = Some(Endpoint::Tcp(value("--tcp")?)),
            "--addr" => endpoint = Some(Endpoint::parse(&value("--addr")?)?),
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                config.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--quota" => {
                config.max_inflight_per_client = value("--quota")?
                    .parse()
                    .map_err(|e| format!("--quota: {e}"))?
            }
            "--max-nodes" => {
                let nodes: u64 = value("--max-nodes")?
                    .parse()
                    .map_err(|e| format!("--max-nodes: {e}"))?;
                if nodes < 2 {
                    return Err("--max-nodes: need at least 2 nodes".into());
                }
                config.limits = ProtocolLimits::with_max_nodes(nodes);
            }
            "--store" => config.cache = CacheConfig::persistent(value("--store")?),
            "--estimate-cache" => {
                config.estimate_cache_capacity = value("--estimate-cache")?
                    .parse()
                    .map_err(|e| format!("--estimate-cache: {e}"))?
            }
            "--incremental" => incremental = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let endpoint = endpoint.ok_or("one of --unix/--tcp/--addr is required")?;
    // Applied last so it composes with `--store` (which replaces the
    // cache config wholesale).
    if incremental {
        config.cache = config.cache.incremental_default();
    }
    Ok((config, endpoint))
}

fn main() -> ExitCode {
    let (config, endpoint) = match parse_args() {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("schedd: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let handle = match Server::start(config, &endpoint) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("schedd: cannot listen on {endpoint}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("schedd: listening on {}", handle.endpoint());
    handle.wait_shutdown_requested();
    println!("schedd: shutdown requested, draining");
    let stats = handle.stats();
    handle.shutdown();
    println!(
        "schedd: served {} requests ({} compiles, {} coalesced, dedup hit rate {:.1}%), exiting",
        stats.completed,
        stats.compiles,
        stats.coalesced,
        stats.dedup_hit_rate() * 100.0
    );
    ExitCode::SUCCESS
}
