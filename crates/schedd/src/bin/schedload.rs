//! `schedload` — duplicate-heavy load generator for a live `schedd`.
//!
//! Replays a randomized stream of schedule requests drawn from a small
//! pool of unique instances (the "persistent, slightly-varying
//! pattern" scenario), pipelined over one or more connections, and
//! records sustained requests/sec, the daemon-measured dedup hit rate,
//! and client-side p50/p99 latency into `BENCH_schedd_load.json`.
//!
//! ```text
//! schedload --addr unix:/tmp/schedd.sock --requests 1000000 --unique 32
//! ```
//!
//! `--perturb <rate>` turns the given fraction of requests into
//! *drifted* variants shipped as `SubmitDelta` frames against their
//! pool instance — the drifting-pattern scenario. The daemon must run
//! with `--incremental` for these to patch; the run records the
//! daemon-measured patch rate alongside the dedup rate.
//!
//! With `--expect-rps` / `--expect-dedup-rate` / `--expect-patch-rate`
//! the process exits non-zero when the measured numbers fall short —
//! the CI smoke job's assertion mechanism.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use commcache::InstanceKey;
use commrt::BackendKind;
use commsched::{CommMatrix, MatrixDelta};
use hypercube::NodeId;
use schedd::{
    Client, Endpoint, Request, Response, SchemeChoice, SubmitDeltaRequest, SubmitRequest,
    TopologySpec,
};
use workloads::Generator;

const USAGE: &str = "\
schedload - duplicate-heavy load generator for schedd

USAGE:
    schedload --addr <endpoint> [options]

OPTIONS:
    --addr <endpoint>        unix:<path> or tcp:<host:port> (required)
    --requests <n>           total requests to replay        [default: 200000]
    --connections <n>        concurrent client connections   [default: 1]
    --batch <n>              pipelined requests per window   [default: 64]
    --unique <n>             unique instances in the pool    [default: 16]
    --dims <n>               hypercube dimension             [default: 4]
    --degree <n>             messages per node               [default: 4]
    --bytes <n>              message size in bytes           [default: 1024]
    --scheduler <name>       registry scheduler              [default: RS_NL]
    --backend <des|analytic> estimate backend                [default: analytic]
    --want-schedule          stream schedule payloads back too
    --perturb <rate>         fraction of requests drifted and shipped as
                             SubmitDelta frames (0..1)        [default: 0]
    --json <path>            report path    [default: BENCH_schedd_load.json]
    --expect-rps <x>         exit 1 if sustained req/s falls below x
    --expect-dedup-rate <x>  exit 1 if dedup hit rate falls below x (0..1)
    --expect-patch-rate <x>  exit 1 if delta patch rate falls below x (0..1)
    -h, --help               print this help
";

struct Opts {
    addr: Endpoint,
    requests: usize,
    connections: usize,
    batch: usize,
    unique: usize,
    dims: u32,
    degree: usize,
    bytes: u32,
    scheduler: String,
    backend: BackendKind,
    want_schedule: bool,
    perturb: f64,
    json: String,
    expect_rps: Option<f64>,
    expect_dedup: Option<f64>,
    expect_patch: Option<f64>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        addr: Endpoint::Unix("/tmp/schedd.sock".into()),
        requests: 200_000,
        connections: 1,
        batch: 64,
        unique: 16,
        dims: 4,
        degree: 4,
        bytes: 1024,
        scheduler: "RS_NL".into(),
        backend: BackendKind::Analytic,
        want_schedule: false,
        perturb: 0.0,
        json: "BENCH_schedd_load.json".into(),
        expect_rps: None,
        expect_dedup: None,
        expect_patch: None,
    };
    let mut saw_addr = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        fn num<T: std::str::FromStr>(flag: &str, v: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("{flag}: {e}"))
        }
        match arg.as_str() {
            "--addr" => {
                opts.addr = Endpoint::parse(&value("--addr")?)?;
                saw_addr = true;
            }
            "--requests" => opts.requests = num("--requests", value("--requests")?)?,
            "--connections" => opts.connections = num("--connections", value("--connections")?)?,
            "--batch" => opts.batch = num("--batch", value("--batch")?)?,
            "--unique" => opts.unique = num("--unique", value("--unique")?)?,
            "--dims" => opts.dims = num("--dims", value("--dims")?)?,
            "--degree" => opts.degree = num("--degree", value("--degree")?)?,
            "--bytes" => opts.bytes = num("--bytes", value("--bytes")?)?,
            "--scheduler" => opts.scheduler = value("--scheduler")?,
            "--backend" => {
                let v = value("--backend")?;
                opts.backend = BackendKind::parse(&v).ok_or(format!("unknown backend `{v}`"))?;
            }
            "--want-schedule" => opts.want_schedule = true,
            "--perturb" => opts.perturb = num("--perturb", value("--perturb")?)?,
            "--json" => opts.json = value("--json")?,
            "--expect-rps" => opts.expect_rps = Some(num("--expect-rps", value("--expect-rps")?)?),
            "--expect-dedup-rate" => {
                opts.expect_dedup = Some(num("--expect-dedup-rate", value("--expect-dedup-rate")?)?)
            }
            "--expect-patch-rate" => {
                opts.expect_patch = Some(num("--expect-patch-rate", value("--expect-patch-rate")?)?)
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if !saw_addr {
        return Err("--addr is required".into());
    }
    if opts.connections == 0 || opts.batch == 0 || opts.unique == 0 || opts.requests == 0 {
        return Err("--requests/--connections/--batch/--unique must be positive".into());
    }
    if !(0.0..=1.0).contains(&opts.perturb) {
        return Err("--perturb must be in 0..1".into());
    }
    Ok(opts)
}

/// splitmix64: cheap, seedable index mixer for the duplicate pool.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic one-message drift of `base`: zero one existing
/// message and redirect its bytes (salt-varied) to a currently-free
/// destination, expressed as a delta against the unperturbed base.
fn drifted_delta(base: &CommMatrix, salt: u64) -> MatrixDelta {
    let msgs: Vec<(NodeId, NodeId, u32)> = base.messages().collect();
    let (src, old_dst, _) = msgs[mix(salt) as usize % msgs.len()];
    let n = base.n();
    let mut target = base.clone();
    target.set(src.0 as usize, old_dst.0 as usize, 0);
    let start = mix(salt ^ 0xD1F7) as usize % n;
    for off in 0..n {
        let dst = (start + off) % n;
        if dst != src.0 as usize && dst != old_dst.0 as usize && base.get(src.0 as usize, dst) == 0
        {
            let bytes = 64 + (mix(salt ^ 0xB17E) % 4096) as u32;
            target.set(src.0 as usize, dst, bytes);
            break;
        }
    }
    MatrixDelta::diff(base, &target).expect("same-dimension matrices always diff")
}

struct ConnResult {
    completed: usize,
    server_errors: usize,
    latencies_us: Vec<u64>,
}

/// Replay `count` requests over one pipelined connection.
fn run_connection(
    opts: &Opts,
    pool: &[SubmitRequest],
    keys: &[InstanceKey],
    conn_index: usize,
    count: usize,
) -> Result<ConnResult, String> {
    let mut client =
        Client::connect(&opts.addr).map_err(|e| format!("connect {}: {e}", opts.addr))?;
    let mut latencies_us = Vec::with_capacity(count);
    let mut sent_at: Vec<Instant> = Vec::with_capacity(count + 1);
    sent_at.push(Instant::now()); // id 0 unused; ids start at 1
    let mut completed = 0usize;
    let mut server_errors = 0usize;
    let mut sent = 0usize;
    let mut received = 0usize;
    while received < count {
        while sent < count && sent - received < opts.batch {
            let salt = (conn_index as u64) << 32 | sent as u64;
            let pick = mix(salt) as usize % pool.len();
            let drifted =
                opts.perturb > 0.0 && (mix(salt ^ 0x5EED) as f64 / u64::MAX as f64) < opts.perturb;
            let request = if drifted {
                let base = &pool[pick];
                Request::SubmitDelta(SubmitDeltaRequest {
                    request_id: client.next_request_id(),
                    want_schedule: base.want_schedule,
                    topology: base.topology.clone(),
                    scheduler: base.scheduler.clone(),
                    scheme: base.scheme,
                    backend: base.backend,
                    seed: base.seed,
                    base: keys[pick],
                    delta: drifted_delta(&base.matrix, mix(salt ^ 0xDE17A)),
                    cost_model: base.cost_model,
                })
            } else {
                let mut req = pool[pick].clone();
                req.request_id = client.next_request_id();
                Request::Submit(req)
            };
            sent_at.push(Instant::now());
            client.send(&request).map_err(|e| format!("send: {e}"))?;
            sent += 1;
        }
        let resp = client.recv().map_err(|e| format!("recv: {e}"))?;
        let id = resp.request_id() as usize;
        if id == 0 || id >= sent_at.len() {
            return Err(format!("response for unknown request id {id}"));
        }
        latencies_us.push(sent_at[id].elapsed().as_micros() as u64);
        match resp {
            Response::Schedule(_) => completed += 1,
            Response::Error(err) => {
                server_errors += 1;
                if server_errors <= 3 {
                    eprintln!("schedload: server error: {err}");
                }
            }
            other => {
                return Err(format!(
                    "unexpected response kind for id {}",
                    other.request_id()
                ))
            }
        }
        received += 1;
    }
    Ok(ConnResult {
        completed,
        server_errors,
        latencies_us,
    })
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[rank]
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("schedload: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    // The duplicate pool: `unique` instances varying only by seed, so
    // every repeat is an exact fingerprint duplicate.
    let n = 1usize << opts.dims;
    let pool: Vec<SubmitRequest> = (0..opts.unique)
        .map(|i| SubmitRequest {
            request_id: 0,
            want_schedule: opts.want_schedule,
            topology: TopologySpec::Hypercube { dims: opts.dims },
            scheduler: opts.scheduler.clone(),
            scheme: SchemeChoice::Default,
            backend: opts.backend,
            seed: i as u64,
            matrix: Generator::dregular(n, opts.degree.min(n - 1), opts.bytes).generate(i as u64),
            cost_model: schedd::LinkCostModel::Uniform,
        })
        .collect();
    let topo = TopologySpec::Hypercube { dims: opts.dims }.build();
    let keys: Vec<InstanceKey> = pool
        .iter()
        .map(|req| InstanceKey::compute(&req.matrix, topo.as_ref()))
        .collect();

    // Daemon counters before/after bracket exactly this run.
    let mut control = match Client::connect(&opts.addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("schedload: cannot connect to {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    // Drifted requests patch against their pool instance, so seed every
    // base into the daemon first — outside the measured bracket.
    if opts.perturb > 0.0 {
        for req in &pool {
            if let Err(e) = control.submit(req.clone()) {
                eprintln!("schedload: seeding base instance failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let before = match control.stats() {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("schedload: stats failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let started = Instant::now();
    let per_conn = opts.requests / opts.connections;
    let remainder = opts.requests % opts.connections;
    let results: Vec<Result<ConnResult, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.connections)
            .map(|c| {
                let opts = &opts;
                let pool = &pool;
                let count = per_conn + usize::from(c < remainder);
                let keys = &keys;
                scope.spawn(move || run_connection(opts, pool, keys, c, count))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("conn thread"))
            .collect()
    });
    let wall = started.elapsed();

    let mut completed = 0usize;
    let mut server_errors = 0usize;
    let mut latencies: Vec<u64> = Vec::with_capacity(opts.requests);
    for result in results {
        match result {
            Ok(conn) => {
                completed += conn.completed;
                server_errors += conn.server_errors;
                latencies.extend(conn.latencies_us);
            }
            Err(msg) => {
                eprintln!("schedload: connection failed: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    latencies.sort_unstable();

    let after = match control.stats() {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("schedload: stats failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let wall_s = wall.as_secs_f64();
    let rps = completed as f64 / wall_s.max(1e-9);
    let d_completed = after.completed.saturating_sub(before.completed);
    let d_compiles = after.compiles.saturating_sub(before.compiles);
    let dedup_rate = if d_completed == 0 {
        0.0
    } else {
        1.0 - d_compiles as f64 / d_completed as f64
    };
    let d_delta = after.delta_submits.saturating_sub(before.delta_submits);
    let d_patches = after.incr_patches.saturating_sub(before.incr_patches);
    let d_fallbacks = after.incr_fallbacks.saturating_sub(before.incr_fallbacks);
    let patch_rate = if d_delta == 0 {
        0.0
    } else {
        d_patches as f64 / d_delta as f64
    };
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let max = latencies.last().copied().unwrap_or(0);

    println!(
        "schedload: {completed}/{} ok ({server_errors} server errors) in {wall_s:.2}s -> {rps:.0} req/s",
        opts.requests
    );
    println!(
        "schedload: dedup hit rate {:.2}% ({d_compiles} compiles / {d_completed} completed), latency p50 {p50}us p99 {p99}us max {max}us",
        dedup_rate * 100.0
    );
    if opts.perturb > 0.0 {
        println!(
            "schedload: patch rate {:.2}% ({d_patches} patches / {d_delta} delta submits, {d_fallbacks} fallbacks)",
            patch_rate * 100.0
        );
    }

    let json = format!(
        "{{\n  \"group\": \"schedd_load\",\n  \"config\": {{\n    \"requests\": {},\n    \"connections\": {},\n    \"batch\": {},\n    \"unique\": {},\n    \"dims\": {},\n    \"degree\": {},\n    \"bytes\": {},\n    \"scheduler\": \"{}\",\n    \"backend\": \"{}\",\n    \"want_schedule\": {},\n    \"perturb\": {:.6}\n  }},\n  \"results\": {{\n    \"completed\": {},\n    \"server_errors\": {},\n    \"wall_seconds\": {:.6},\n    \"requests_per_sec\": {:.1},\n    \"dedup_hit_rate\": {:.6},\n    \"compiles\": {},\n    \"coalesced\": {},\n    \"delta_submits\": {},\n    \"patches\": {},\n    \"patch_fallbacks\": {},\n    \"patch_rate\": {:.6},\n    \"latency_us\": {{ \"p50\": {}, \"p99\": {}, \"max\": {} }}\n  }}\n}}\n",
        opts.requests,
        opts.connections,
        opts.batch,
        opts.unique,
        opts.dims,
        opts.degree,
        opts.bytes,
        opts.scheduler,
        opts.backend.label(),
        opts.want_schedule,
        opts.perturb,
        completed,
        server_errors,
        wall_s,
        rps,
        dedup_rate,
        d_compiles,
        after.coalesced.saturating_sub(before.coalesced),
        d_delta,
        d_patches,
        d_fallbacks,
        patch_rate,
        p50,
        p99,
        max,
    );
    match std::fs::File::create(&opts.json).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("schedload: wrote {}", opts.json),
        Err(e) => {
            eprintln!("schedload: cannot write {}: {e}", opts.json);
            return ExitCode::FAILURE;
        }
    }

    let mut failed = false;
    if let Some(expect) = opts.expect_rps {
        if rps < expect {
            eprintln!("schedload: FAIL sustained {rps:.0} req/s < expected {expect:.0}");
            failed = true;
        }
    }
    if let Some(expect) = opts.expect_dedup {
        if dedup_rate < expect {
            eprintln!("schedload: FAIL dedup hit rate {dedup_rate:.3} < expected {expect:.3}");
            failed = true;
        }
    }
    if let Some(expect) = opts.expect_patch {
        if patch_rate < expect {
            eprintln!("schedload: FAIL patch rate {patch_rate:.3} < expected {expect:.3}");
            failed = true;
        }
    }
    if server_errors > 0 {
        eprintln!("schedload: FAIL {server_errors} server errors");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
