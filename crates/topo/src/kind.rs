use std::fmt;
use std::sync::Arc;

use hypercube::{Hypercube, Mesh2d, Topology};

use crate::{FatTree, Torus};

/// A topology as *data*: a parsed, validated description that can be
/// stored, printed, compared, sent over a wire, and built into a live
/// [`Topology`] on demand.
///
/// The string grammar (one kind tag, a colon, a kind-specific spec):
///
/// | string | builds |
/// |--------|--------|
/// | `cube:d=6` | [`Hypercube::new`]`(6)` — 64 nodes |
/// | `mesh:4x8` | [`Mesh2d::new`]`(4, 8)` — 32 nodes |
/// | `torus:4x4x4x4` | [`Torus::new`]`(&[4, 4, 4, 4])` — 256 nodes |
/// | `fattree:k=8` | [`FatTree::new`]`(8)` — 128 hosts |
///
/// [`TopologyKind::parse`] validates eagerly (the same bounds the
/// constructors enforce), so a parsed kind always builds without
/// panicking. [`fmt::Display`] renders the canonical string back, and
/// parse ∘ display is the identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyKind {
    /// Binary hypercube of `dims` dimensions.
    Cube {
        /// Number of dimensions (`2^dims` nodes), 1..=20.
        dims: u32,
    },
    /// 2-D mesh, XY-routed.
    Mesh {
        /// Rows.
        rows: u32,
        /// Columns.
        cols: u32,
    },
    /// k-ary n-cube torus.
    Torus {
        /// Per-dimension ring sizes, each >= 2, 1..=8 dimensions.
        extents: Vec<u32>,
    },
    /// k-ary fat-tree.
    FatTree {
        /// Arity (even, 2..=64); `k^3/4` hosts.
        k: u32,
    },
}

/// Why a kind string failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KindError {
    /// The text before the colon names no known kind.
    UnknownKind(String),
    /// The kind is known but its spec is malformed or out of bounds.
    BadSpec {
        /// The kind tag that was recognized.
        kind: &'static str,
        /// What is wrong with the spec.
        detail: String,
    },
}

impl fmt::Display for KindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KindError::UnknownKind(s) => write!(
                f,
                "unknown topology kind {s:?} (expected cube:d=N, mesh:RxC, torus:AxBx..., or fattree:k=N)"
            ),
            KindError::BadSpec { kind, detail } => write!(f, "bad {kind} spec: {detail}"),
        }
    }
}

impl std::error::Error for KindError {}

impl std::str::FromStr for TopologyKind {
    type Err = KindError;

    fn from_str(s: &str) -> Result<TopologyKind, KindError> {
        TopologyKind::parse(s)
    }
}

fn parse_u32(kind: &'static str, s: &str) -> Result<u32, KindError> {
    s.parse().map_err(|_| KindError::BadSpec {
        kind,
        detail: format!("expected a number, got {s:?}"),
    })
}

impl TopologyKind {
    /// Parse a kind string (see the type-level grammar table).
    ///
    /// # Errors
    ///
    /// [`KindError::UnknownKind`] for an unrecognized tag,
    /// [`KindError::BadSpec`] for a malformed or out-of-bounds spec.
    pub fn parse(s: &str) -> Result<TopologyKind, KindError> {
        let (kind, spec) = s
            .split_once(':')
            .ok_or_else(|| KindError::UnknownKind(s.to_string()))?;
        match kind {
            "cube" => {
                let dims = spec
                    .strip_prefix("d=")
                    .ok_or_else(|| KindError::BadSpec {
                        kind: "cube",
                        detail: format!("expected d=N, got {spec:?}"),
                    })
                    .and_then(|d| parse_u32("cube", d))?;
                if !(1..=20).contains(&dims) {
                    return Err(KindError::BadSpec {
                        kind: "cube",
                        detail: format!("dimension must be in 1..=20, got {dims}"),
                    });
                }
                Ok(TopologyKind::Cube { dims })
            }
            "mesh" => {
                let (rows, cols) = spec.split_once('x').ok_or_else(|| KindError::BadSpec {
                    kind: "mesh",
                    detail: format!("expected RxC, got {spec:?}"),
                })?;
                let (rows, cols) = (parse_u32("mesh", rows)?, parse_u32("mesh", cols)?);
                if rows == 0 || cols == 0 {
                    return Err(KindError::BadSpec {
                        kind: "mesh",
                        detail: "extents must be positive".to_string(),
                    });
                }
                if rows.checked_mul(cols).is_none_or(|n| n > 1 << 20) {
                    return Err(KindError::BadSpec {
                        kind: "mesh",
                        detail: format!("mesh larger than 2^20 nodes: {rows}x{cols}"),
                    });
                }
                Ok(TopologyKind::Mesh { rows, cols })
            }
            "torus" => {
                let extents = spec
                    .split('x')
                    .map(|e| parse_u32("torus", e))
                    .collect::<Result<Vec<u32>, _>>()?;
                if !(1..=8).contains(&extents.len()) {
                    return Err(KindError::BadSpec {
                        kind: "torus",
                        detail: format!("must have 1..=8 dimensions, got {}", extents.len()),
                    });
                }
                if extents.iter().any(|&k| k < 2) {
                    return Err(KindError::BadSpec {
                        kind: "torus",
                        detail: "every extent must be >= 2".to_string(),
                    });
                }
                let nodes = extents
                    .iter()
                    .try_fold(1u64, |n, &k| {
                        n.checked_mul(u64::from(k)).filter(|&n| n <= 1 << 20)
                    })
                    .ok_or_else(|| KindError::BadSpec {
                        kind: "torus",
                        detail: format!("torus larger than 2^20 nodes: {spec}"),
                    })?;
                debug_assert!(nodes >= 2);
                Ok(TopologyKind::Torus { extents })
            }
            "fattree" => {
                let k = spec
                    .strip_prefix("k=")
                    .ok_or_else(|| KindError::BadSpec {
                        kind: "fattree",
                        detail: format!("expected k=N, got {spec:?}"),
                    })
                    .and_then(|k| parse_u32("fattree", k))?;
                if !(2..=64).contains(&k) || k % 2 != 0 {
                    return Err(KindError::BadSpec {
                        kind: "fattree",
                        detail: format!("arity must be even and in 2..=64, got {k}"),
                    });
                }
                Ok(TopologyKind::FatTree { k })
            }
            other => Err(KindError::UnknownKind(other.to_string())),
        }
    }

    /// Node count without building the topology, saturating at
    /// `usize::MAX` on overflow.
    ///
    /// A *parsed* kind never overflows — `parse` bounds every family at
    /// `2^20` nodes — but the variant fields are public, so a
    /// hand-constructed hostile kind must saturate (and then fail
    /// [`TopologyKind::try_build`]'s bounds), never wrap or panic.
    pub fn num_nodes(&self) -> usize {
        match self {
            TopologyKind::Cube { dims } => 1usize.checked_shl(*dims).unwrap_or(usize::MAX),
            TopologyKind::Mesh { rows, cols } => (*rows as usize).saturating_mul(*cols as usize),
            TopologyKind::Torus { extents } => extents
                .iter()
                .try_fold(1usize, |n, &k| n.checked_mul(k as usize))
                .unwrap_or(usize::MAX),
            TopologyKind::FatTree { k } => {
                let k = *k as usize;
                k.saturating_mul(k).saturating_mul(k) / 4
            }
        }
    }

    /// Build the live topology this kind describes. A parsed kind never
    /// panics here — `parse` enforces the constructors' bounds.
    pub fn build(&self) -> Box<dyn Topology> {
        match self.try_build() {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`TopologyKind::build`] for kinds that did not come from
    /// [`TopologyKind::parse`] (hand-constructed, e.g. decoded from a
    /// hostile wire frame): constructor bounds surface as typed
    /// [`KindError::BadSpec`] errors instead of panics.
    ///
    /// # Errors
    ///
    /// [`KindError::BadSpec`] naming the violated constructor bound.
    pub fn try_build(&self) -> Result<Box<dyn Topology>, KindError> {
        match self {
            TopologyKind::Cube { dims } => {
                if !(1..=20).contains(dims) {
                    return Err(KindError::BadSpec {
                        kind: "cube",
                        detail: format!("dimension must be in 1..=20, got {dims}"),
                    });
                }
                Ok(Box::new(Hypercube::new(*dims)))
            }
            TopologyKind::Mesh { rows, cols } => {
                if *rows == 0 || *cols == 0 || self.num_nodes() > 1 << 20 {
                    return Err(KindError::BadSpec {
                        kind: "mesh",
                        detail: format!("mesh bounds violated: {rows}x{cols}"),
                    });
                }
                Ok(Box::new(Mesh2d::new(*rows as usize, *cols as usize)))
            }
            TopologyKind::Torus { extents } => {
                let extents: Vec<usize> = extents.iter().map(|&k| k as usize).collect();
                Torus::try_new(&extents)
                    .map(|t| Box::new(t) as Box<dyn Topology>)
                    .map_err(|e| KindError::BadSpec {
                        kind: "torus",
                        detail: e.to_string(),
                    })
            }
            TopologyKind::FatTree { k } => FatTree::try_new(*k as usize)
                .map(|t| Box::new(t) as Box<dyn Topology>)
                .map_err(|e| KindError::BadSpec {
                    kind: "fattree",
                    detail: e.to_string(),
                }),
        }
    }

    /// [`TopologyKind::build`], shared — the shape grid axes want.
    pub fn build_arc(&self) -> Arc<dyn Topology> {
        Arc::from(self.build())
    }
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyKind::Cube { dims } => write!(f, "cube:d={dims}"),
            TopologyKind::Mesh { rows, cols } => write!(f, "mesh:{rows}x{cols}"),
            TopologyKind::Torus { extents } => {
                write!(f, "torus:")?;
                for (i, k) in extents.iter().enumerate() {
                    if i > 0 {
                        write!(f, "x")?;
                    }
                    write!(f, "{k}")?;
                }
                Ok(())
            }
            TopologyKind::FatTree { k } => write!(f, "fattree:k={k}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_builds_what_it_names() {
        for (s, nodes, name) in [
            ("cube:d=4", 16, "hypercube(dims=4, nodes=16)"),
            ("mesh:3x5", 15, "mesh2d(3x5)"),
            ("torus:4x4", 16, "torus(4x4)"),
            ("torus:2x2x2x2", 16, "torus(2x2x2x2)"),
            ("fattree:k=4", 16, "fattree(k=4, hosts=16)"),
        ] {
            let kind = TopologyKind::parse(s).unwrap();
            assert_eq!(kind.num_nodes(), nodes, "{s}");
            let topo = kind.build();
            assert_eq!(topo.num_nodes(), nodes, "{s}");
            assert_eq!(topo.name(), name, "{s}");
        }
    }

    #[test]
    fn display_roundtrips() {
        for s in ["cube:d=6", "mesh:4x8", "torus:4x4x4x4", "fattree:k=8"] {
            let kind = TopologyKind::parse(s).unwrap();
            assert_eq!(kind.to_string(), s);
            assert_eq!(TopologyKind::parse(&kind.to_string()).unwrap(), kind);
        }
    }

    #[test]
    fn typed_errors_never_panics() {
        for (s, want_unknown) in [
            ("ring:8", true),
            ("cube", true),
            ("cube:d=0", false),
            ("cube:d=21", false),
            ("cube:n=6", false),
            ("mesh:0x4", false),
            ("mesh:4", false),
            ("torus:4x1", false),
            ("torus:", false),
            ("torus:4x4x4x4x4x4x4x4x4", false),
            ("torus:1024x1024x1024", false),
            ("fattree:k=5", false),
            ("fattree:k=66", false),
            ("fattree:8", false),
        ] {
            match TopologyKind::parse(s) {
                Err(KindError::UnknownKind(_)) => assert!(want_unknown, "{s}"),
                Err(KindError::BadSpec { .. }) => assert!(!want_unknown, "{s}"),
                Ok(k) => panic!("{s} parsed as {k:?}"),
            }
        }
    }

    #[test]
    fn error_display_is_actionable() {
        let e = TopologyKind::parse("ring:8").unwrap_err();
        assert!(e.to_string().contains("unknown topology kind"));
        let e = TopologyKind::parse("fattree:k=5").unwrap_err();
        assert!(e.to_string().contains("even"));
    }

    #[test]
    fn hostile_hand_built_kinds_fail_typed_never_panic() {
        // Variant fields are public: a kind that skipped `parse` (e.g.
        // decoded from a hostile wire frame) must saturate its node
        // count and fail `try_build` with a typed error — the unchecked
        // arithmetic here used to wrap in release and panic in debug.
        let k = TopologyKind::Torus {
            extents: vec![u32::MAX; 8],
        };
        assert_eq!(k.num_nodes(), usize::MAX, "saturates, never wraps");
        assert!(matches!(
            k.try_build(),
            Err(KindError::BadSpec { kind: "torus", .. })
        ));
        let k = TopologyKind::Mesh {
            rows: u32::MAX,
            cols: u32::MAX,
        };
        assert!(k.num_nodes() > 1 << 20);
        assert!(matches!(
            k.try_build(),
            Err(KindError::BadSpec { kind: "mesh", .. })
        ));
        let k = TopologyKind::Cube { dims: 64 };
        assert_eq!(k.num_nodes(), usize::MAX);
        assert!(matches!(
            k.try_build(),
            Err(KindError::BadSpec { kind: "cube", .. })
        ));
        let k = TopologyKind::FatTree { k: u32::MAX };
        assert!(matches!(
            k.try_build(),
            Err(KindError::BadSpec {
                kind: "fattree",
                ..
            })
        ));
        // Parsed kinds still build infallibly through the same path.
        assert!(TopologyKind::parse("torus:4x4")
            .unwrap()
            .try_build()
            .is_ok());
    }

    #[test]
    fn equal_node_count_family() {
        // The fig_topo comparison set: 16 nodes under four fabrics.
        let kinds = [
            "cube:d=4",
            "mesh:4x4",
            "torus:4x4",
            "torus:2x2x2x2",
            "fattree:k=4",
        ];
        for s in kinds {
            assert_eq!(TopologyKind::parse(s).unwrap().num_nodes(), 16, "{s}");
        }
    }
}
