use hypercube::{LinkId, NodeId, Path, RoutingProperties, Topology};

use crate::BuildError;

/// Direction encoding for torus channels: around the ring toward higher
/// coordinates.
const PLUS: u32 = 0;
/// Toward lower coordinates.
const MINUS: u32 = 1;

/// A k-ary n-cube: `n` dimensions, each a wraparound ring of `k` nodes
/// (extents may differ per dimension — `4x4x2` is legal).
///
/// Nodes are numbered mixed-radix with dimension 0 fastest: node id
/// `= Σ coordᵢ · strideᵢ` where `stride₀ = 1` and
/// `strideᵢ₊₁ = strideᵢ · extentᵢ`.
///
/// Routing is **dimension-ordered** (dimension 0 first, like the mesh's
/// XY order) and walks each ring in the *shorter* direction; when both
/// directions are equally long (an even extent, distance exactly `k/2`)
/// the tie breaks toward the positive direction, keeping the route a
/// pure function of the endpoints. Every route is therefore minimal and
/// `hops`/`diameter` have closed forms: the per-dimension ring distance
/// `min(Δ, k−Δ)` sums across dimensions, and the diameter is
/// `Σ ⌊extentᵢ/2⌋`.
///
/// Every node owns two directed channels per dimension, one per
/// direction: `LinkId = node · 2n + 2·dim + dir`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Torus {
    extents: Vec<u32>,
    /// Mixed-radix strides; `strides[d]` is the id delta of one positive
    /// step in dimension `d` (before wraparound).
    strides: Vec<u32>,
    nodes: u32,
    name: String,
}

impl Torus {
    /// A torus with the given per-dimension ring sizes.
    ///
    /// # Panics
    ///
    /// Panics on any spec [`Torus::try_new`] rejects. Use `try_new` on
    /// untrusted input (wire frames, CLI flags) — overflowing node
    /// counts included, this constructor never returns a typed error.
    pub fn new(extents: &[usize]) -> Self {
        match Self::try_new(extents) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Torus::new`]: a typed [`BuildError`] instead of a
    /// panic for hostile or out-of-bounds specs — no dimensions, more
    /// than 8 of them, an extent below 2 (a 1-ring has no links), or a
    /// node count above `2^20` (mirroring the hypercube's cap), however
    /// astronomically the extents multiply out.
    ///
    /// # Errors
    ///
    /// [`BuildError`] naming the violated bound.
    pub fn try_new(extents: &[usize]) -> Result<Self, BuildError> {
        if !(1..=8).contains(&extents.len()) {
            return Err(BuildError::new(format!(
                "torus must have 1..=8 dimensions, got {}",
                extents.len()
            )));
        }
        let mut nodes: usize = 1;
        let mut strides = Vec::with_capacity(extents.len());
        for &k in extents {
            if !(2..=1 << 20).contains(&k) {
                return Err(BuildError::new(format!(
                    "torus extent must be >= 2, got {k}"
                )));
            }
            strides.push(nodes as u32);
            // Checked, then bounded: `u32::MAX x u32::MAX x ...` wire
            // specs must surface as this same typed error, not wrap or
            // panic.
            nodes = nodes
                .checked_mul(k)
                .filter(|&n| n <= 1 << 20)
                .ok_or_else(|| BuildError::new("torus larger than 2^20 nodes".to_string()))?;
        }
        // This string is hashed into cache fingerprints; it must never
        // change shape.
        let name = format!(
            "torus({})",
            extents
                .iter()
                .map(|k| k.to_string())
                .collect::<Vec<_>>()
                .join("x")
        );
        Ok(Torus {
            extents: extents.iter().map(|&k| k as u32).collect(),
            strides,
            nodes: nodes as u32,
            name,
        })
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.extents.len()
    }

    /// Per-dimension ring sizes.
    #[inline]
    pub fn extents(&self) -> &[u32] {
        &self.extents
    }

    /// Coordinate of `node` along `dim`.
    #[inline]
    pub fn coord(&self, node: NodeId, dim: usize) -> u32 {
        (node.0 / self.strides[dim]) % self.extents[dim]
    }

    /// The directed channel leaving `node` along `dim` in `dir`
    /// (0 = positive, 1 = negative).
    #[inline]
    fn channel(&self, node: u32, dim: usize, dir: u32) -> LinkId {
        LinkId(node * (2 * self.extents.len() as u32) + 2 * dim as u32 + dir)
    }

    /// Decode a [`LinkId`] back into `(source node, dimension, direction)`.
    pub fn link_endpoints(&self, link: LinkId) -> (NodeId, usize, u32) {
        let per_node = 2 * self.extents.len() as u32;
        (
            NodeId(link.0 / per_node),
            ((link.0 % per_node) / 2) as usize,
            link.0 % 2,
        )
    }

    /// The ring neighbour of `node` along `dim` in `dir`.
    pub fn neighbor(&self, node: NodeId, dim: usize, dir: u32) -> NodeId {
        let k = self.extents[dim];
        let stride = self.strides[dim];
        let c = self.coord(node, dim);
        NodeId(match dir {
            PLUS if c + 1 < k => node.0 + stride,
            PLUS => node.0 - (k - 1) * stride,
            _ if c > 0 => node.0 - stride,
            _ => node.0 + (k - 1) * stride,
        })
    }

    /// Append the dimension-ordered route to `out` without intermediate
    /// allocation — shared by `route` and the `route_into` override.
    fn route_into_vec(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkId>) {
        debug_assert!(
            src.0 < self.nodes && dst.0 < self.nodes,
            "nodes outside torus"
        );
        let mut cur = src;
        for dim in 0..self.ndims() {
            let k = self.extents[dim];
            let s = self.coord(cur, dim);
            let d = self.coord(dst, dim);
            let fwd = (d + k - s) % k;
            if fwd == 0 {
                continue;
            }
            let bwd = k - fwd;
            let (steps, dir) = if fwd <= bwd {
                (fwd, PLUS)
            } else {
                (bwd, MINUS)
            };
            for _ in 0..steps {
                out.push(self.channel(cur.0, dim, dir));
                cur = self.neighbor(cur, dim, dir);
            }
        }
        debug_assert_eq!(cur, dst);
    }

    /// Walk `steps` hops along `dim` in `dir` from `start`, appending
    /// links to `out`; rolls `out` back and returns `None` if any link
    /// on the arc is down.
    fn walk_clear(
        &self,
        start: NodeId,
        dim: usize,
        dir: u32,
        steps: u32,
        down: &dyn Fn(LinkId) -> bool,
        out: &mut Vec<LinkId>,
    ) -> Option<NodeId> {
        let mark = out.len();
        let mut cur = start;
        for _ in 0..steps {
            let l = self.channel(cur.0, dim, dir);
            if down(l) {
                out.truncate(mark);
                return None;
            }
            out.push(l);
            cur = self.neighbor(cur, dim, dir);
        }
        Some(cur)
    }
}

impl Topology for Torus {
    fn num_nodes(&self) -> usize {
        self.nodes as usize
    }

    fn link_count(&self) -> usize {
        self.nodes as usize * 2 * self.ndims()
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Path {
        let mut links = Vec::with_capacity(self.hops(src, dst));
        self.route_into_vec(src, dst, &mut links);
        Path::new(src, dst, links)
    }

    fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        (0..self.ndims())
            .map(|dim| {
                let k = self.extents[dim];
                let fwd = (self.coord(dst, dim) + k - self.coord(src, dim)) % k;
                fwd.min(k - fwd) as usize
            })
            .sum()
    }

    fn route_into(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkId>) {
        out.clear();
        self.route_into_vec(src, dst, out);
        debug_assert_eq!(out.len(), self.hops(src, dst));
    }

    /// The wraparound detour: each ring can be walked in either
    /// direction, so a dimension whose preferred (shorter) arc crosses a
    /// down link reroutes the long way around that ring. Dimensions stay
    /// ordered — if *both* arcs of some ring are blocked the fault has
    /// cut the dimension-ordered route entirely and this router gives up
    /// (`None`) rather than search non-dimension-ordered paths.
    fn route_avoiding(
        &self,
        src: NodeId,
        dst: NodeId,
        down: &dyn Fn(LinkId) -> bool,
    ) -> Option<Path> {
        let mut links = Vec::new();
        let mut cur = src;
        for dim in 0..self.ndims() {
            let k = self.extents[dim];
            let s = self.coord(cur, dim);
            let d = self.coord(dst, dim);
            let fwd = (d + k - s) % k;
            if fwd == 0 {
                continue;
            }
            let bwd = k - fwd;
            let (steps, dir) = if fwd <= bwd {
                (fwd, PLUS)
            } else {
                (bwd, MINUS)
            };
            let (alt_steps, alt_dir) = (k - steps, if dir == PLUS { MINUS } else { PLUS });
            match self.walk_clear(cur, dim, dir, steps, down, &mut links) {
                Some(end) => cur = end,
                None => match self.walk_clear(cur, dim, alt_dir, alt_steps, down, &mut links) {
                    Some(end) => cur = end,
                    None => return None,
                },
            }
        }
        debug_assert_eq!(cur, dst);
        Some(Path::new(src, dst, links))
    }

    fn routing(&self) -> RoutingProperties {
        RoutingProperties {
            deterministic: true,
            minimal: true,
            ecube_hypercube: false,
            wraparound: true,
        }
    }

    fn diameter(&self) -> usize {
        self.extents.iter().map(|&k| (k / 2) as usize).sum()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "extent must be >= 2")]
    fn unit_ring_rejected() {
        Torus::new(&[4, 1]);
    }

    #[test]
    #[should_panic(expected = "1..=8 dimensions")]
    fn zero_dims_rejected() {
        Torus::new(&[]);
    }

    #[test]
    fn try_new_surfaces_typed_errors_never_panics() {
        assert!(Torus::try_new(&[]).is_err());
        assert!(Torus::try_new(&[4, 1]).is_err());
        assert!(Torus::try_new(&[2; 9]).is_err());
        // Extents individually in bounds whose product overflows the cap
        // must surface the same typed error — the old constructor's
        // `checked_mul(..).expect(..)` panicked here.
        let e = Torus::try_new(&[1 << 20, 1 << 20]).unwrap_err();
        assert!(e.to_string().contains("2^20"), "{e}");
        // And extents big enough to overflow usize itself.
        let e = Torus::try_new(&[usize::MAX, usize::MAX]).unwrap_err();
        assert!(e.to_string().contains("extent"), "{e}");
        // The happy path still builds.
        assert_eq!(Torus::try_new(&[4, 4]).unwrap().num_nodes(), 16);
    }

    #[test]
    fn route_avoiding_with_nothing_down_matches_route() {
        let t = Torus::new(&[4, 3]);
        let up = |_: LinkId| false;
        for s in 0..12u32 {
            for d in 0..12u32 {
                let p = t.route_avoiding(NodeId(s), NodeId(d), &up).unwrap();
                assert_eq!(p.links(), t.route(NodeId(s), NodeId(d)).links());
            }
        }
    }

    #[test]
    fn route_avoiding_detours_the_long_way_around() {
        let t = Torus::new(&[5]);
        // The primary route 0 -> 1 is one positive hop; down that link.
        let blocked = t.channel(0, 0, PLUS);
        let down = |l: LinkId| l == blocked;
        let p = t.route_avoiding(NodeId(0), NodeId(1), &down).unwrap();
        assert_eq!(p.hops(), 4, "the long way around the 5-ring");
        assert!(p.links().iter().all(|&l| l != blocked));
        // The detour is a connected walk ending at the destination.
        let mut cur = NodeId(0);
        for &l in p.links() {
            let (from, dim, dir) = t.link_endpoints(l);
            assert_eq!(from, cur);
            cur = t.neighbor(cur, dim, dir);
        }
        assert_eq!(cur, NodeId(1));
    }

    #[test]
    fn route_avoiding_gives_up_when_both_arcs_are_cut() {
        let t = Torus::new(&[4, 4]);
        // Every dimension-0 link is down: no route can change the
        // dimension-0 coordinate.
        let down = |l: LinkId| t.link_endpoints(l).1 == 0;
        assert!(t.route_avoiding(NodeId(0), NodeId(1), &down).is_none());
        // But a pure dimension-1 move still routes.
        let p = t.route_avoiding(NodeId(0), NodeId(4), &down).unwrap();
        assert_eq!(p.hops(), 1);
    }

    #[test]
    fn name_nodes_and_links() {
        let t = Torus::new(&[4, 4, 2]);
        assert_eq!(t.name(), "torus(4x4x2)");
        assert_eq!(t.num_nodes(), 32);
        assert_eq!(t.link_count(), 32 * 6);
        assert_eq!(t.diameter(), 2 + 2 + 1);
    }

    #[test]
    fn wraparound_is_one_hop() {
        let t = Torus::new(&[5]);
        assert_eq!(t.hops(NodeId(0), NodeId(4)), 1);
        let p = t.route(NodeId(0), NodeId(4));
        assert_eq!(p.links(), &[t.channel(0, 0, MINUS)]);
    }

    #[test]
    fn even_ring_tie_breaks_positive() {
        // Distance exactly k/2: both directions are 2 hops; the route
        // must deterministically take the positive one.
        let t = Torus::new(&[4]);
        let p = t.route(NodeId(0), NodeId(2));
        assert_eq!(p.links(), &[t.channel(0, 0, PLUS), t.channel(1, 0, PLUS)]);
    }

    #[test]
    fn routes_are_dimension_ordered_and_endpoint_correct() {
        let t = Torus::new(&[3, 4, 2]);
        for s in 0..t.num_nodes() as u32 {
            for d in 0..t.num_nodes() as u32 {
                let p = t.route(NodeId(s), NodeId(d));
                // Walk the path link by link; dimensions never decrease.
                let mut cur = NodeId(s);
                let mut last_dim = 0usize;
                for &l in p.links() {
                    let (from, dim, dir) = t.link_endpoints(l);
                    assert_eq!(from, cur, "link leaves the current node");
                    assert!(dim >= last_dim, "dimension order violated");
                    last_dim = dim;
                    cur = t.neighbor(cur, dim, dir);
                }
                assert_eq!(cur, NodeId(d), "route ends at the destination");
                assert_eq!(p.hops(), t.hops(NodeId(s), NodeId(d)));
                assert!(p.hops() <= t.diameter());
            }
        }
    }

    #[test]
    fn hops_is_symmetric_and_bounded() {
        let t = Torus::new(&[4, 4]);
        for s in 0..16u32 {
            for d in 0..16u32 {
                assert_eq!(t.hops(NodeId(s), NodeId(d)), t.hops(NodeId(d), NodeId(s)));
            }
        }
        // Opposite corners of a 4x4 torus are 4 apart (2 per dimension).
        assert_eq!(t.hops(NodeId(0), NodeId(10)), 4);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn route_into_override_matches_route() {
        let t = Torus::new(&[4, 3]);
        let mut buf = Vec::new();
        for s in 0..12u32 {
            for d in 0..12u32 {
                t.route_into(NodeId(s), NodeId(d), &mut buf);
                assert_eq!(buf, t.route(NodeId(s), NodeId(d)).links());
            }
        }
    }

    #[test]
    fn links_in_range_and_unique_per_route() {
        let t = Torus::new(&[4, 4]);
        for s in 0..16u32 {
            for d in 0..16u32 {
                let p = t.route(NodeId(s), NodeId(d));
                let mut seen = std::collections::HashSet::new();
                for l in p.links() {
                    assert!(l.index() < t.link_count());
                    assert!(seen.insert(*l), "minimal routes never revisit a link");
                }
            }
        }
    }

    #[test]
    fn link_endpoints_roundtrip() {
        let t = Torus::new(&[3, 5]);
        for v in 0..15u32 {
            for dim in 0..2 {
                for dir in [PLUS, MINUS] {
                    let l = t.channel(v, dim, dir);
                    assert_eq!(t.link_endpoints(l), (NodeId(v), dim, dir));
                }
            }
        }
    }

    #[test]
    fn routing_report() {
        let t = Torus::new(&[4, 4]);
        let props = t.routing();
        assert!(props.deterministic && props.minimal && props.wraparound);
        assert!(!props.ecube_hypercube);
        assert!(!t.is_ecube_hypercube());
    }
}
