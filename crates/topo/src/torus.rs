use hypercube::{LinkId, NodeId, Path, RoutingProperties, Topology};

/// Direction encoding for torus channels: around the ring toward higher
/// coordinates.
const PLUS: u32 = 0;
/// Toward lower coordinates.
const MINUS: u32 = 1;

/// A k-ary n-cube: `n` dimensions, each a wraparound ring of `k` nodes
/// (extents may differ per dimension — `4x4x2` is legal).
///
/// Nodes are numbered mixed-radix with dimension 0 fastest: node id
/// `= Σ coordᵢ · strideᵢ` where `stride₀ = 1` and
/// `strideᵢ₊₁ = strideᵢ · extentᵢ`.
///
/// Routing is **dimension-ordered** (dimension 0 first, like the mesh's
/// XY order) and walks each ring in the *shorter* direction; when both
/// directions are equally long (an even extent, distance exactly `k/2`)
/// the tie breaks toward the positive direction, keeping the route a
/// pure function of the endpoints. Every route is therefore minimal and
/// `hops`/`diameter` have closed forms: the per-dimension ring distance
/// `min(Δ, k−Δ)` sums across dimensions, and the diameter is
/// `Σ ⌊extentᵢ/2⌋`.
///
/// Every node owns two directed channels per dimension, one per
/// direction: `LinkId = node · 2n + 2·dim + dir`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Torus {
    extents: Vec<u32>,
    /// Mixed-radix strides; `strides[d]` is the id delta of one positive
    /// step in dimension `d` (before wraparound).
    strides: Vec<u32>,
    nodes: u32,
    name: String,
}

impl Torus {
    /// A torus with the given per-dimension ring sizes.
    ///
    /// # Panics
    ///
    /// Panics when there are no dimensions, more than 8 of them, an
    /// extent is below 2 (a 1-ring has no links), or the node count
    /// exceeds `2^20` (a million-node torus is assumed to be a bug in
    /// the caller, mirroring the hypercube's cap).
    pub fn new(extents: &[usize]) -> Self {
        assert!(
            (1..=8).contains(&extents.len()),
            "torus must have 1..=8 dimensions, got {}",
            extents.len()
        );
        let mut nodes: usize = 1;
        let mut strides = Vec::with_capacity(extents.len());
        for &k in extents {
            assert!(
                (2..=1 << 20).contains(&k),
                "torus extent must be >= 2, got {k}"
            );
            strides.push(nodes as u32);
            nodes = nodes.checked_mul(k).expect("torus node count overflow");
            assert!(nodes <= 1 << 20, "torus larger than 2^20 nodes");
        }
        // This string is hashed into cache fingerprints; it must never
        // change shape.
        let name = format!(
            "torus({})",
            extents
                .iter()
                .map(|k| k.to_string())
                .collect::<Vec<_>>()
                .join("x")
        );
        Torus {
            extents: extents.iter().map(|&k| k as u32).collect(),
            strides,
            nodes: nodes as u32,
            name,
        }
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.extents.len()
    }

    /// Per-dimension ring sizes.
    #[inline]
    pub fn extents(&self) -> &[u32] {
        &self.extents
    }

    /// Coordinate of `node` along `dim`.
    #[inline]
    pub fn coord(&self, node: NodeId, dim: usize) -> u32 {
        (node.0 / self.strides[dim]) % self.extents[dim]
    }

    /// The directed channel leaving `node` along `dim` in `dir`
    /// (0 = positive, 1 = negative).
    #[inline]
    fn channel(&self, node: u32, dim: usize, dir: u32) -> LinkId {
        LinkId(node * (2 * self.extents.len() as u32) + 2 * dim as u32 + dir)
    }

    /// Decode a [`LinkId`] back into `(source node, dimension, direction)`.
    pub fn link_endpoints(&self, link: LinkId) -> (NodeId, usize, u32) {
        let per_node = 2 * self.extents.len() as u32;
        (
            NodeId(link.0 / per_node),
            ((link.0 % per_node) / 2) as usize,
            link.0 % 2,
        )
    }

    /// The ring neighbour of `node` along `dim` in `dir`.
    pub fn neighbor(&self, node: NodeId, dim: usize, dir: u32) -> NodeId {
        let k = self.extents[dim];
        let stride = self.strides[dim];
        let c = self.coord(node, dim);
        NodeId(match dir {
            PLUS if c + 1 < k => node.0 + stride,
            PLUS => node.0 - (k - 1) * stride,
            _ if c > 0 => node.0 - stride,
            _ => node.0 + (k - 1) * stride,
        })
    }

    /// Append the dimension-ordered route to `out` without intermediate
    /// allocation — shared by `route` and the `route_into` override.
    fn route_into_vec(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkId>) {
        debug_assert!(
            src.0 < self.nodes && dst.0 < self.nodes,
            "nodes outside torus"
        );
        let mut cur = src;
        for dim in 0..self.ndims() {
            let k = self.extents[dim];
            let s = self.coord(cur, dim);
            let d = self.coord(dst, dim);
            let fwd = (d + k - s) % k;
            if fwd == 0 {
                continue;
            }
            let bwd = k - fwd;
            let (steps, dir) = if fwd <= bwd {
                (fwd, PLUS)
            } else {
                (bwd, MINUS)
            };
            for _ in 0..steps {
                out.push(self.channel(cur.0, dim, dir));
                cur = self.neighbor(cur, dim, dir);
            }
        }
        debug_assert_eq!(cur, dst);
    }
}

impl Topology for Torus {
    fn num_nodes(&self) -> usize {
        self.nodes as usize
    }

    fn link_count(&self) -> usize {
        self.nodes as usize * 2 * self.ndims()
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Path {
        let mut links = Vec::with_capacity(self.hops(src, dst));
        self.route_into_vec(src, dst, &mut links);
        Path::new(src, dst, links)
    }

    fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        (0..self.ndims())
            .map(|dim| {
                let k = self.extents[dim];
                let fwd = (self.coord(dst, dim) + k - self.coord(src, dim)) % k;
                fwd.min(k - fwd) as usize
            })
            .sum()
    }

    fn route_into(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkId>) {
        out.clear();
        self.route_into_vec(src, dst, out);
        debug_assert_eq!(out.len(), self.hops(src, dst));
    }

    fn routing(&self) -> RoutingProperties {
        RoutingProperties {
            deterministic: true,
            minimal: true,
            ecube_hypercube: false,
            wraparound: true,
        }
    }

    fn diameter(&self) -> usize {
        self.extents.iter().map(|&k| (k / 2) as usize).sum()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "extent must be >= 2")]
    fn unit_ring_rejected() {
        Torus::new(&[4, 1]);
    }

    #[test]
    #[should_panic(expected = "1..=8 dimensions")]
    fn zero_dims_rejected() {
        Torus::new(&[]);
    }

    #[test]
    fn name_nodes_and_links() {
        let t = Torus::new(&[4, 4, 2]);
        assert_eq!(t.name(), "torus(4x4x2)");
        assert_eq!(t.num_nodes(), 32);
        assert_eq!(t.link_count(), 32 * 6);
        assert_eq!(t.diameter(), 2 + 2 + 1);
    }

    #[test]
    fn wraparound_is_one_hop() {
        let t = Torus::new(&[5]);
        assert_eq!(t.hops(NodeId(0), NodeId(4)), 1);
        let p = t.route(NodeId(0), NodeId(4));
        assert_eq!(p.links(), &[t.channel(0, 0, MINUS)]);
    }

    #[test]
    fn even_ring_tie_breaks_positive() {
        // Distance exactly k/2: both directions are 2 hops; the route
        // must deterministically take the positive one.
        let t = Torus::new(&[4]);
        let p = t.route(NodeId(0), NodeId(2));
        assert_eq!(p.links(), &[t.channel(0, 0, PLUS), t.channel(1, 0, PLUS)]);
    }

    #[test]
    fn routes_are_dimension_ordered_and_endpoint_correct() {
        let t = Torus::new(&[3, 4, 2]);
        for s in 0..t.num_nodes() as u32 {
            for d in 0..t.num_nodes() as u32 {
                let p = t.route(NodeId(s), NodeId(d));
                // Walk the path link by link; dimensions never decrease.
                let mut cur = NodeId(s);
                let mut last_dim = 0usize;
                for &l in p.links() {
                    let (from, dim, dir) = t.link_endpoints(l);
                    assert_eq!(from, cur, "link leaves the current node");
                    assert!(dim >= last_dim, "dimension order violated");
                    last_dim = dim;
                    cur = t.neighbor(cur, dim, dir);
                }
                assert_eq!(cur, NodeId(d), "route ends at the destination");
                assert_eq!(p.hops(), t.hops(NodeId(s), NodeId(d)));
                assert!(p.hops() <= t.diameter());
            }
        }
    }

    #[test]
    fn hops_is_symmetric_and_bounded() {
        let t = Torus::new(&[4, 4]);
        for s in 0..16u32 {
            for d in 0..16u32 {
                assert_eq!(t.hops(NodeId(s), NodeId(d)), t.hops(NodeId(d), NodeId(s)));
            }
        }
        // Opposite corners of a 4x4 torus are 4 apart (2 per dimension).
        assert_eq!(t.hops(NodeId(0), NodeId(10)), 4);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn route_into_override_matches_route() {
        let t = Torus::new(&[4, 3]);
        let mut buf = Vec::new();
        for s in 0..12u32 {
            for d in 0..12u32 {
                t.route_into(NodeId(s), NodeId(d), &mut buf);
                assert_eq!(buf, t.route(NodeId(s), NodeId(d)).links());
            }
        }
    }

    #[test]
    fn links_in_range_and_unique_per_route() {
        let t = Torus::new(&[4, 4]);
        for s in 0..16u32 {
            for d in 0..16u32 {
                let p = t.route(NodeId(s), NodeId(d));
                let mut seen = std::collections::HashSet::new();
                for l in p.links() {
                    assert!(l.index() < t.link_count());
                    assert!(seen.insert(*l), "minimal routes never revisit a link");
                }
            }
        }
    }

    #[test]
    fn link_endpoints_roundtrip() {
        let t = Torus::new(&[3, 5]);
        for v in 0..15u32 {
            for dim in 0..2 {
                for dir in [PLUS, MINUS] {
                    let l = t.channel(v, dim, dir);
                    assert_eq!(t.link_endpoints(l), (NodeId(v), dim, dir));
                }
            }
        }
    }

    #[test]
    fn routing_report() {
        let t = Torus::new(&[4, 4]);
        let props = t.routing();
        assert!(props.deterministic && props.minimal && props.wraparound);
        assert!(!props.ecube_hypercube);
        assert!(!t.is_ecube_hypercube());
    }
}
