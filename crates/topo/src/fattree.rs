use hypercube::{LinkId, NodeId, Path, RoutingProperties, Topology};

use crate::BuildError;

/// A k-ary fat-tree (Clos) with deterministic up-down routing.
///
/// The standard three-tier construction: `k` pods, each with `k/2` edge
/// switches and `k/2` aggregation switches; every edge switch serves
/// `k/2` hosts; `(k/2)²` core switches each connect to one aggregation
/// switch in every pod. Hosts — the only [`NodeId`]-addressable compute
/// nodes — number `k³/4`, laid out pod-major: host
/// `h = pod·(k/2)² + edge·(k/2) + pos`.
///
/// Routing is **up-down**: up from the source host as far as necessary
/// (edge, aggregation, core), then down to the destination. Where a real
/// Clos would spread load with ECMP, this router is *deterministic*: the
/// aggregation switch is chosen by the destination's position within its
/// edge switch (`dst % (k/2)`) and the core by the destination's edge
/// index (`(dst/(k/2)) % (k/2)`), so every host pair owns exactly one
/// circuit and the schedulers can reserve links ahead of time. Routes
/// are minimal within the tree: 2 hops under one edge switch, 4 within
/// a pod, 6 across pods — the diameter.
///
/// Every wire of the tree appears as an up/down *channel pair*: graph
/// edge `e` owns `LinkId 2e` (upward, toward the core) and `2e+1`
/// (downward). Edges are numbered host↔edge first, then edge↔agg, then
/// agg↔core, giving `3k³/2` directed links in all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FatTree {
    k: u32,
    /// k/2 — the fan-out of every tier.
    half: u32,
    hosts: u32,
    name: String,
}

/// Upward direction of a channel pair (toward the core).
const UP: u32 = 0;
/// Downward direction (toward the hosts).
const DOWN: u32 = 1;

impl FatTree {
    /// A fat-tree of arity `k`.
    ///
    /// # Panics
    ///
    /// Panics on any spec [`FatTree::try_new`] rejects.
    pub fn new(k: usize) -> Self {
        match Self::try_new(k) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`FatTree::new`]: a typed [`BuildError`] instead of a
    /// panic unless `k` is even and in `2..=64` (k = 64 is already a
    /// 65 536-host fabric).
    ///
    /// # Errors
    ///
    /// [`BuildError`] naming the violated bound.
    pub fn try_new(k: usize) -> Result<Self, BuildError> {
        if !(2..=64).contains(&k) || !k.is_multiple_of(2) {
            return Err(BuildError::new(format!(
                "fat-tree arity must be even and in 2..=64, got {k}"
            )));
        }
        let k = k as u32;
        let hosts = k * k * k / 4;
        // This string is hashed into cache fingerprints; it must never
        // change shape.
        let name = format!("fattree(k={k}, hosts={hosts})");
        Ok(FatTree {
            k,
            half: k / 2,
            hosts,
            name,
        })
    }

    /// The arity `k`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// `(pod, edge switch index, position under the edge switch)` of a
    /// host.
    #[inline]
    pub fn host_coords(&self, host: NodeId) -> (u32, u32, u32) {
        let per_pod = self.half * self.half;
        (
            host.0 / per_pod,
            (host.0 / self.half) % self.half,
            host.0 % self.half,
        )
    }

    /// Number of undirected wires (channel pairs) in the tree.
    #[inline]
    fn edge_pairs(&self) -> u32 {
        // host↔edge + edge↔agg + agg↔core, k³/4 wires per tier.
        3 * self.hosts
    }

    /// Channel of the host↔edge wire of `host`.
    #[inline]
    fn host_channel(&self, host: u32, dir: u32) -> LinkId {
        LinkId(2 * host + dir)
    }

    /// Channel of the wire between edge switch `edge` and aggregation
    /// switch `agg` inside `pod`.
    #[inline]
    fn edge_agg_channel(&self, pod: u32, edge: u32, agg: u32, dir: u32) -> LinkId {
        let idx = (pod * self.half + edge) * self.half + agg;
        LinkId(2 * self.hosts + 2 * idx + dir)
    }

    /// Channel of the wire between aggregation switch `agg` of `pod` and
    /// its `m`-th core switch (core id `agg·(k/2) + m`).
    #[inline]
    fn agg_core_channel(&self, pod: u32, agg: u32, m: u32, dir: u32) -> LinkId {
        let idx = (pod * self.half + agg) * self.half + m;
        LinkId(2 * self.hosts + 2 * self.hosts + 2 * idx + dir)
    }

    /// Append the up-down route to `out` without intermediate allocation.
    fn route_into_vec(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkId>) {
        debug_assert!(
            src.0 < self.hosts && dst.0 < self.hosts,
            "hosts outside tree"
        );
        if src == dst {
            return;
        }
        let (sp, se, _) = self.host_coords(src);
        let (dp, de, dpos) = self.host_coords(dst);
        out.push(self.host_channel(src.0, UP));
        if sp == dp && se == de {
            out.push(self.host_channel(dst.0, DOWN));
            return;
        }
        // Deterministic up-path: the aggregation switch is the
        // destination's position, the core the destination's edge index.
        let agg = dpos;
        out.push(self.edge_agg_channel(sp, se, agg, UP));
        if sp != dp {
            let m = de;
            out.push(self.agg_core_channel(sp, agg, m, UP));
            out.push(self.agg_core_channel(dp, agg, m, DOWN));
        }
        out.push(self.edge_agg_channel(dp, de, agg, DOWN));
        out.push(self.host_channel(dst.0, DOWN));
    }
}

impl Topology for FatTree {
    fn num_nodes(&self) -> usize {
        self.hosts as usize
    }

    fn link_count(&self) -> usize {
        2 * self.edge_pairs() as usize
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Path {
        let mut links = Vec::with_capacity(self.hops(src, dst));
        self.route_into_vec(src, dst, &mut links);
        Path::new(src, dst, links)
    }

    fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        if src == dst {
            return 0;
        }
        let (sp, se, _) = self.host_coords(src);
        let (dp, de, _) = self.host_coords(dst);
        if sp != dp {
            6
        } else if se != de {
            4
        } else {
            2
        }
    }

    fn route_into(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkId>) {
        out.clear();
        self.route_into_vec(src, dst, out);
        debug_assert_eq!(out.len(), self.hops(src, dst));
    }

    fn routing(&self) -> RoutingProperties {
        RoutingProperties {
            deterministic: true,
            minimal: true,
            ecube_hypercube: false,
            wraparound: false,
        }
    }

    fn diameter(&self) -> usize {
        6
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_arity_rejected() {
        FatTree::new(5);
    }

    #[test]
    fn try_new_surfaces_typed_errors() {
        assert!(FatTree::try_new(0).is_err());
        assert!(FatTree::try_new(5).is_err());
        assert!(FatTree::try_new(66).is_err());
        assert!(FatTree::try_new(usize::MAX).is_err());
        assert_eq!(FatTree::try_new(4).unwrap().num_nodes(), 16);
    }

    #[test]
    fn counts_for_k4() {
        let t = FatTree::new(4);
        assert_eq!(t.name(), "fattree(k=4, hosts=16)");
        assert_eq!(t.num_nodes(), 16);
        // 3 tiers of 16 wires, two directed channels each.
        assert_eq!(t.link_count(), 96);
        assert_eq!(t.diameter(), 6);
    }

    #[test]
    fn hop_tiers() {
        let t = FatTree::new(4);
        // Hosts 0 and 1 share edge switch 0 of pod 0.
        assert_eq!(t.hops(NodeId(0), NodeId(1)), 2);
        // Hosts 0 and 2 share pod 0 but not an edge switch.
        assert_eq!(t.hops(NodeId(0), NodeId(2)), 4);
        // Hosts 0 and 4 live in different pods.
        assert_eq!(t.hops(NodeId(0), NodeId(4)), 6);
        assert_eq!(t.hops(NodeId(7), NodeId(7)), 0);
    }

    /// A vertex of the tree, for walking routes in tests.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum Vertex {
        Host(u32),
        Edge(u32, u32),
        Agg(u32, u32),
        Core(u32, u32),
    }

    /// Decode a [`LinkId`] into its (from, to) vertices.
    fn endpoints(t: &FatTree, l: LinkId) -> (Vertex, Vertex) {
        let hosts = t.hosts;
        let half = t.half;
        let (pair, dir) = (l.0 / 2, l.0 % 2);
        let (lo, hi) = if pair < hosts {
            let host = pair;
            let pod = host / (half * half);
            let edge = (host / half) % half;
            (Vertex::Host(host), Vertex::Edge(pod, edge))
        } else if pair < 2 * hosts {
            let idx = pair - hosts;
            let pod = idx / (half * half);
            let edge = (idx / half) % half;
            let agg = idx % half;
            (Vertex::Edge(pod, edge), Vertex::Agg(pod, agg))
        } else {
            let idx = pair - 2 * hosts;
            let pod = idx / (half * half);
            let agg = (idx / half) % half;
            let m = idx % half;
            (Vertex::Agg(pod, agg), Vertex::Core(agg, m))
        };
        if dir == UP {
            (lo, hi)
        } else {
            (hi, lo)
        }
    }

    #[test]
    fn every_route_is_a_connected_walk_from_src_to_dst() {
        let t = FatTree::new(4);
        for s in 0..16u32 {
            for d in 0..16u32 {
                let p = t.route(NodeId(s), NodeId(d));
                assert_eq!(p.hops(), t.hops(NodeId(s), NodeId(d)));
                if s == d {
                    assert!(p.links().is_empty());
                    continue;
                }
                let mut cur = Vertex::Host(s);
                for &l in p.links() {
                    assert!(l.index() < t.link_count());
                    let (from, to) = endpoints(&t, l);
                    assert_eq!(from, cur, "{s} -> {d}: link leaves the current vertex");
                    cur = to;
                }
                assert_eq!(cur, Vertex::Host(d), "route ends at the destination");
            }
        }
    }

    #[test]
    fn down_paths_are_destination_owned_across_sources() {
        // The deterministic up-path choice keys on the destination, so
        // two different-pod sources sending to the same host converge on
        // the same core and share no *upward* links — their down-paths
        // coincide (that is the determinism), their up-paths are disjoint.
        let t = FatTree::new(4);
        let dst = NodeId(13);
        let a = t.route(NodeId(0), dst);
        let b = t.route(NodeId(4), dst);
        let ups = |p: &Path| {
            p.links()
                .iter()
                .filter(|l| l.0 % 2 == UP)
                .copied()
                .collect::<Vec<_>>()
        };
        assert!(ups(&a).iter().all(|l| !ups(&b).contains(l)));
    }

    #[test]
    fn route_into_override_matches_route() {
        let t = FatTree::new(4);
        let mut buf = Vec::new();
        for s in 0..16u32 {
            for d in 0..16u32 {
                t.route_into(NodeId(s), NodeId(d), &mut buf);
                assert_eq!(buf, t.route(NodeId(s), NodeId(d)).links());
            }
        }
    }

    #[test]
    fn smallest_and_larger_arities() {
        let t2 = FatTree::new(2);
        assert_eq!(t2.num_nodes(), 2);
        assert_eq!(
            t2.hops(NodeId(0), NodeId(1)),
            6,
            "k=2 hosts sit in different pods"
        );
        let t8 = FatTree::new(8);
        assert_eq!(t8.num_nodes(), 128);
        assert_eq!(t8.link_count(), 3 * 8 * 8 * 8 / 2);
    }

    #[test]
    fn routing_report() {
        let props = FatTree::new(4).routing();
        assert!(props.deterministic && props.minimal);
        assert!(!props.ecube_hypercube && !props.wraparound);
    }
}
