//! The pluggable topology family beyond the hypercube.
//!
//! The scheduling stack programs against [`hypercube::Topology`] — a
//! deterministic, oblivious router over directed channels — and the paper
//! only ever instantiates it with the iPSC/860 binary cube. This crate
//! opens the scenario space the ROADMAP names:
//!
//! * [`Torus`] — the k-ary n-cube with wraparound rings per dimension and
//!   dimension-ordered routing that walks the shorter direction around
//!   each ring (ties break toward the positive direction), with
//!   closed-form `hops`/`diameter`. The QCDSP machine (hep-lat/9908024)
//!   is a 4D instance.
//! * [`FatTree`] — the k-ary fat-tree (k/2² hosts per pod, k pods,
//!   (k/2)² core switches) under deterministic up-down routing: the
//!   upward aggregation and core choices are pure functions of the
//!   destination, so every host pair owns exactly one circuit.
//! * [`TopologyKind`] — a parser/registry making topologies *data*:
//!   `"cube:d=6"`, `"mesh:4x8"`, `"torus:4x4x4x4"`, `"fattree:k=8"`
//!   round-trip through strings at every entry point (CLI flags, grid
//!   axes, daemon requests, test sweeps).
//!
//! Schedulers do not name these types; they probe
//! [`hypercube::RoutingProperties`] (`topology.routing()`) and decide
//! honestly — RS families run anywhere routing is deterministic, LP
//! declines anything that is not an e-cube hypercube.
//!
//! # Example
//!
//! ```
//! use topo::TopologyKind;
//! use hypercube::{NodeId, Topology};
//!
//! let torus = TopologyKind::parse("torus:4x4").unwrap().build();
//! assert_eq!(torus.num_nodes(), 16);
//! // Wraparound: 0 -> 3 is one hop around the ring, not three across.
//! assert_eq!(torus.hops(NodeId(0), NodeId(3)), 1);
//! assert!(torus.routing().wraparound);
//! ```

#![forbid(unsafe_code)]

use std::fmt;

mod fattree;
mod kind;
mod torus;

pub use fattree::FatTree;
pub use kind::{KindError, TopologyKind};
pub use torus::Torus;

/// Why a topology could not be constructed — the typed alternative to
/// the constructors' panics, for untrusted input paths (wire frames,
/// CLI flags, env vars).
///
/// [`Torus::try_new`] and [`FatTree::try_new`] return this;
/// [`TopologyKind::parse`] folds it into [`KindError::BadSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuildError {
    detail: String,
}

impl BuildError {
    pub(crate) fn new(detail: String) -> Self {
        BuildError { detail }
    }

    /// What bound the spec violated.
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.detail)
    }
}

impl std::error::Error for BuildError {}
