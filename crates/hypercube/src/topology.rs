use crate::{LinkId, NodeId, Path};

/// What a topology's routing function guarantees, as data.
///
/// Schedulers probe this report instead of downcasting: RS_NL only needs
/// `deterministic` (its shadow `PATHS` reservation table requires the
/// route to be a pure function of the endpoints), while LP's XOR phases
/// are contention-free only on an `ecube_hypercube`. New topologies
/// describe themselves here and every scheduler's `supports_topology`
/// answer follows without naming any concrete type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoutingProperties {
    /// The circuit between two nodes is a pure function of the endpoints.
    pub deterministic: bool,
    /// Every route is a shortest path (hop count equals the graph
    /// distance).
    pub minimal: bool,
    /// The network is a binary hypercube routed e-cube (LSB-first
    /// bit-fixing) — the structure LP's pairing argument relies on.
    pub ecube_hypercube: bool,
    /// Links wrap around at the boundary (torus rings), so routes may
    /// take either direction around a dimension.
    pub wraparound: bool,
}

/// A point-to-point interconnection network with **deterministic, oblivious
/// routing**: the circuit between two nodes is a pure function of the
/// endpoints.
///
/// Determinism is the property the link-contention-avoiding scheduler
/// (RS_NL, Section 5 of the paper) relies on: because the hardware route is
/// known at scheduling time, the scheduler can reserve links in a shadow
/// `PATHS` table and guarantee that no two transfers of one phase share a
/// channel.
pub trait Topology: Send + Sync {
    /// Number of compute nodes. Node ids are `0..num_nodes()`.
    fn num_nodes(&self) -> usize;

    /// Upper bound (exclusive) on [`crate::LinkId`] values used by
    /// [`Topology::route`]; occupancy tables are sized `link_count()`.
    fn link_count(&self) -> usize;

    /// The deterministic circuit from `src` to `dst`.
    ///
    /// Must return an empty path when `src == dst`.
    fn route(&self, src: NodeId, dst: NodeId) -> Path;

    /// Hop distance between two nodes (length of [`Topology::route`]).
    ///
    /// Implementations usually have a closed form that avoids materializing
    /// the path.
    fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        self.route(src, dst).hops()
    }

    /// Write the links of the `src -> dst` circuit into `out` (cleared
    /// first). Schedulers call this in their inner loops; implementations
    /// should avoid allocating.
    fn route_into(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkId>) {
        out.clear();
        out.extend_from_slice(self.route(src, dst).links());
        debug_assert_eq!(
            out.len(),
            self.hops(src, dst),
            "hops() disagrees with route() length for {}",
            self.name()
        );
    }

    /// Whether this topology is a hypercube under e-cube routing.
    ///
    /// Some scheduling guarantees are e-cube-specific — LP's XOR phases
    /// are link-contention-free *only* under e-cube routing on a cube —
    /// so schedulers that rely on that structure probe it here instead of
    /// guessing from the node count. Defaults to `false`. Prefer the
    /// richer [`Topology::routing`] report in new code.
    fn is_ecube_hypercube(&self) -> bool {
        false
    }

    /// The capability report of this topology's routing function.
    ///
    /// The default describes the common case for this workspace — a
    /// deterministic minimal router without wraparound — and derives the
    /// e-cube flag from [`Topology::is_ecube_hypercube`]. Topologies with
    /// wraparound links or non-minimal routing override this.
    fn routing(&self) -> RoutingProperties {
        RoutingProperties {
            deterministic: true,
            minimal: true,
            ecube_hypercube: self.is_ecube_hypercube(),
            wraparound: false,
        }
    }

    /// An alternative `src -> dst` circuit that avoids every link for
    /// which `down` returns `true`, or `None` when the router cannot
    /// offer one.
    ///
    /// This is the fault-tolerance escape hatch for link-cost models
    /// with dead links: fabrics whose routing admits a detour (torus
    /// rings can run the long way around a dimension —
    /// [`RoutingProperties::wraparound`]) override this; strictly
    /// deterministic single-path routers keep the default `None`, and a
    /// down link on their route surfaces as a typed error upstream.
    ///
    /// Implementations must return a path whose links all pass `down ==
    /// false`; the detour need not be minimal.
    fn route_avoiding(
        &self,
        src: NodeId,
        dst: NodeId,
        down: &dyn Fn(LinkId) -> bool,
    ) -> Option<Path> {
        let _ = (src, dst, down);
        None
    }

    /// Network diameter: the maximum hop distance over all node pairs.
    fn diameter(&self) -> usize;

    /// Human-readable topology name for reports. Borrowed from the
    /// topology — implementations precompute it at construction so report
    /// rows and fingerprints never allocate a fresh `String` per call.
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Hypercube;

    #[test]
    fn trait_object_safety_and_default_hops() {
        // Use through a trait object to guarantee object safety.
        let cube: Box<dyn Topology> = Box::new(Hypercube::new(4));
        assert_eq!(cube.num_nodes(), 16);
        assert_eq!(cube.hops(NodeId(0), NodeId(0b1011)), 3);
        assert_eq!(cube.diameter(), 4);
    }

    #[test]
    fn default_routing_report_follows_ecube_probe() {
        let cube = Hypercube::new(3);
        let props = cube.routing();
        assert!(props.deterministic);
        assert!(props.minimal);
        assert!(props.ecube_hypercube, "derived from is_ecube_hypercube");
        assert!(!props.wraparound);

        let mesh = crate::Mesh2d::new(2, 3);
        let props = mesh.routing();
        assert!(props.deterministic);
        assert!(!props.ecube_hypercube);
        assert!(!props.wraparound);
    }
}
