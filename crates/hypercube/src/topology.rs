use crate::{LinkId, NodeId, Path};

/// A point-to-point interconnection network with **deterministic, oblivious
/// routing**: the circuit between two nodes is a pure function of the
/// endpoints.
///
/// Determinism is the property the link-contention-avoiding scheduler
/// (RS_NL, Section 5 of the paper) relies on: because the hardware route is
/// known at scheduling time, the scheduler can reserve links in a shadow
/// `PATHS` table and guarantee that no two transfers of one phase share a
/// channel.
pub trait Topology: Send + Sync {
    /// Number of compute nodes. Node ids are `0..num_nodes()`.
    fn num_nodes(&self) -> usize;

    /// Upper bound (exclusive) on [`crate::LinkId`] values used by
    /// [`Topology::route`]; occupancy tables are sized `link_count()`.
    fn link_count(&self) -> usize;

    /// The deterministic circuit from `src` to `dst`.
    ///
    /// Must return an empty path when `src == dst`.
    fn route(&self, src: NodeId, dst: NodeId) -> Path;

    /// Hop distance between two nodes (length of [`Topology::route`]).
    ///
    /// Implementations usually have a closed form that avoids materializing
    /// the path.
    fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        self.route(src, dst).hops()
    }

    /// Write the links of the `src -> dst` circuit into `out` (cleared
    /// first). Schedulers call this in their inner loops; implementations
    /// should avoid allocating.
    fn route_into(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkId>) {
        out.clear();
        out.extend_from_slice(self.route(src, dst).links());
    }

    /// Whether this topology is a hypercube under e-cube routing.
    ///
    /// Some scheduling guarantees are e-cube-specific — LP's XOR phases
    /// are link-contention-free *only* under e-cube routing on a cube —
    /// so schedulers that rely on that structure probe it here instead of
    /// guessing from the node count. Defaults to `false`.
    fn is_ecube_hypercube(&self) -> bool {
        false
    }

    /// Network diameter: the maximum hop distance over all node pairs.
    fn diameter(&self) -> usize;

    /// Human-readable topology name for reports.
    fn name(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Hypercube;

    #[test]
    fn trait_object_safety_and_default_hops() {
        // Use through a trait object to guarantee object safety.
        let cube: Box<dyn Topology> = Box::new(Hypercube::new(4));
        assert_eq!(cube.num_nodes(), 16);
        assert_eq!(cube.hops(NodeId(0), NodeId(0b1011)), 3);
        assert_eq!(cube.diameter(), 4);
    }
}
