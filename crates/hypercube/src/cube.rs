use crate::{LinkId, NodeId, Path, Topology};

/// The binary hypercube interconnect of the Intel iPSC/860.
///
/// `Hypercube::new(d)` models a `2^d`-node machine; the CalTech machine in
/// the paper is `Hypercube::new(6)` (64 nodes). Every node has one
/// full-duplex wire per dimension, giving `2^d * d` **directed** channels.
///
/// Routing is **e-cube**: a message corrects the differing address bits from
/// least- to most-significant. The route is deterministic and the hardware
/// pre-claims the whole path (circuit switching) before data flows, which is
/// why link contention translates into blocked circuits rather than slow
/// shared links.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hypercube {
    dims: u32,
    name: String,
}

impl Hypercube {
    /// A hypercube with `dims` dimensions (`2^dims` nodes).
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0` or `dims > 20` (a million-node cube is assumed
    /// to be a bug in the caller).
    pub fn new(dims: u32) -> Self {
        assert!(
            (1..=20).contains(&dims),
            "hypercube dimension must be in 1..=20, got {dims}"
        );
        // This string is hashed into cache fingerprints; it must never
        // change shape.
        let name = format!("hypercube(dims={}, nodes={})", dims, 1usize << dims);
        Hypercube { dims, name }
    }

    /// A hypercube sized for (at least) `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two and at least 2: the paper's
    /// algorithms (notably LP's `i XOR k` pairing) require the node count of
    /// the physical cube.
    pub fn for_nodes(n: usize) -> Self {
        assert!(
            n >= 2 && n.is_power_of_two(),
            "hypercube node count must be a power of two >= 2, got {n}"
        );
        Hypercube::new(n.trailing_zeros())
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// The directed channel leaving `node` along `dim`.
    #[inline]
    pub fn link(&self, node: NodeId, dim: u32) -> LinkId {
        debug_assert!(dim < self.dims);
        LinkId(node.0 * self.dims + dim)
    }

    /// Decode a [`LinkId`] back into `(source node, dimension)`.
    #[inline]
    pub fn link_endpoints(&self, link: LinkId) -> (NodeId, u32) {
        (NodeId(link.0 / self.dims), link.0 % self.dims)
    }

    /// Iterate the e-cube route without allocating the [`Path`].
    ///
    /// Calls `f(cur, dim, link)` for every hop: the circuit extends from
    /// node `cur` across dimension `dim` over directed channel `link`.
    #[inline]
    pub fn for_each_hop<F: FnMut(NodeId, u32, LinkId)>(&self, src: NodeId, dst: NodeId, mut f: F) {
        let mut cur = src.0;
        let diff = src.0 ^ dst.0;
        debug_assert!(diff >> self.dims == 0, "nodes outside the cube");
        for dim in 0..self.dims {
            if diff & (1 << dim) != 0 {
                f(NodeId(cur), dim, LinkId(cur * self.dims + dim));
                cur ^= 1 << dim;
            }
        }
        debug_assert_eq!(cur, dst.0);
    }
}

impl Topology for Hypercube {
    fn num_nodes(&self) -> usize {
        1usize << self.dims
    }

    fn link_count(&self) -> usize {
        (1usize << self.dims) * self.dims as usize
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Path {
        let mut links = Vec::with_capacity(src.hamming(dst) as usize);
        self.for_each_hop(src, dst, |_, _, link| links.push(link));
        Path::new(src, dst, links)
    }

    fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        src.hamming(dst) as usize
    }

    fn route_into(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkId>) {
        out.clear();
        self.for_each_hop(src, dst, |_, _, link| out.push(link));
        debug_assert_eq!(out.len(), self.hops(src, dst));
    }

    fn is_ecube_hypercube(&self) -> bool {
        true
    }

    fn diameter(&self) -> usize {
        self.dims as usize
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "hypercube dimension")]
    fn zero_dims_rejected() {
        Hypercube::new(0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        Hypercube::for_nodes(48);
    }

    #[test]
    fn for_nodes_sizes() {
        assert_eq!(Hypercube::for_nodes(64).dims(), 6);
        assert_eq!(Hypercube::for_nodes(2).dims(), 1);
        assert_eq!(Hypercube::for_nodes(1024).dims(), 10);
    }

    #[test]
    fn ecube_fixes_bits_lsb_first() {
        let cube = Hypercube::new(3);
        // 0 -> 7 must go 0 -> 1 -> 3 -> 7 (bits 0, 1, 2 in that order).
        let path = cube.route(NodeId(0), NodeId(7));
        assert_eq!(
            path.links(),
            &[
                cube.link(NodeId(0), 0),
                cube.link(NodeId(1), 1),
                cube.link(NodeId(3), 2)
            ]
        );
    }

    #[test]
    fn route_is_empty_for_self() {
        let cube = Hypercube::new(6);
        assert_eq!(cube.route(NodeId(9), NodeId(9)).hops(), 0);
    }

    #[test]
    fn route_length_is_hamming_distance() {
        let cube = Hypercube::new(6);
        for s in 0..64u32 {
            for t in 0..64u32 {
                let p = cube.route(NodeId(s), NodeId(t));
                assert_eq!(p.hops() as u32, NodeId(s).hamming(NodeId(t)));
                assert_eq!(cube.hops(NodeId(s), NodeId(t)), p.hops());
            }
        }
    }

    #[test]
    fn route_links_are_in_range() {
        let cube = Hypercube::new(5);
        for s in 0..32u32 {
            for t in 0..32u32 {
                for l in cube.route(NodeId(s), NodeId(t)).links() {
                    assert!(l.index() < cube.link_count());
                }
            }
        }
    }

    #[test]
    fn link_endpoints_roundtrip() {
        let cube = Hypercube::new(6);
        for v in 0..64u32 {
            for d in 0..6 {
                let l = cube.link(NodeId(v), d);
                assert_eq!(cube.link_endpoints(l), (NodeId(v), d));
            }
        }
    }

    #[test]
    fn forward_and_reverse_routes_are_link_disjoint() {
        // Directed channels: x->y and y->x never share a LinkId, so pairwise
        // exchange never self-contends. (For adjacent nodes they use the two
        // directions of the same wire; for distant nodes even the wires
        // differ because e-cube visits different intermediate nodes.)
        let cube = Hypercube::new(6);
        for s in 0..64u32 {
            for t in 0..64u32 {
                if s == t {
                    continue;
                }
                let fwd = cube.route(NodeId(s), NodeId(t));
                let rev = cube.route(NodeId(t), NodeId(s));
                assert!(!fwd.intersects(&rev), "{s} <-> {t}");
            }
        }
    }

    #[test]
    fn paths_visit_monotone_dimensions() {
        // The e-cube invariant that makes hold-and-wait link claiming
        // deadlock-free: every circuit claims channels in strictly
        // increasing dimension order.
        let cube = Hypercube::new(6);
        for s in 0..64u32 {
            for t in 0..64u32 {
                let mut last_dim = None;
                cube.for_each_hop(NodeId(s), NodeId(t), |_, dim, _| {
                    if let Some(prev) = last_dim {
                        assert!(dim > prev);
                    }
                    last_dim = Some(dim);
                });
            }
        }
    }
}
