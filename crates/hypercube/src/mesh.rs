use crate::{LinkId, NodeId, Path, Topology};

/// A 2-D mesh with dimension-ordered (XY) routing.
///
/// The paper's `PATHS` reservation table "can be much smaller for regular
/// topologies like mesh and hypercube" (Section 5); this topology exists to
/// demonstrate that the scheduling layer is topology-generic: RS_NL works
/// unchanged on a mesh because all it needs is deterministic routing.
///
/// Nodes are numbered row-major: node `(r, c)` has id `r * cols + c`.
/// Routing goes along X (columns) first, then along Y (rows) — the standard
/// deadlock-free dimension order. Each node has four directed outgoing
/// channels (E, W, S, N), so `LinkId = node * 4 + direction`; ids at the
/// mesh boundary are simply never produced by `route`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mesh2d {
    rows: usize,
    cols: usize,
    name: String,
}

/// Direction encoding for mesh channels.
const EAST: u32 = 0;
const WEST: u32 = 1;
const SOUTH: u32 = 2;
const NORTH: u32 = 3;

impl Mesh2d {
    /// A mesh with `rows x cols` nodes.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero or the node count overflows `u32`.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "mesh extents must be positive");
        assert!(
            rows.checked_mul(cols)
                .is_some_and(|n| n <= u32::MAX as usize),
            "mesh too large"
        );
        // This string is hashed into cache fingerprints; it must never
        // change shape.
        let name = format!("mesh2d({rows}x{cols})");
        Mesh2d { rows, cols, name }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(row, col)` coordinates of a node.
    #[inline]
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        (node.index() / self.cols, node.index() % self.cols)
    }

    /// Node id at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates lie outside the mesh.
    #[inline]
    pub fn node_at(&self, row: usize, col: usize) -> NodeId {
        assert!(
            row < self.rows && col < self.cols,
            "({row},{col}) outside mesh"
        );
        NodeId((row * self.cols + col) as u32)
    }

    #[inline]
    fn channel(&self, node: u32, dir: u32) -> LinkId {
        LinkId(node * 4 + dir)
    }

    /// Append the XY route to `out` without intermediate allocation —
    /// shared by `route` and the allocation-free `route_into` override.
    fn route_into_vec(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkId>) {
        let (sr, sc) = self.coords(src);
        let (dr, dc) = self.coords(dst);
        let mut cur = src.0;
        // X first: walk the column coordinate toward dc.
        let mut c = sc;
        while c != dc {
            if c < dc {
                out.push(self.channel(cur, EAST));
                cur += 1;
                c += 1;
            } else {
                out.push(self.channel(cur, WEST));
                cur -= 1;
                c -= 1;
            }
        }
        // Then Y: walk the row coordinate toward dr.
        let mut r = sr;
        while r != dr {
            if r < dr {
                out.push(self.channel(cur, SOUTH));
                cur += self.cols as u32;
                r += 1;
            } else {
                out.push(self.channel(cur, NORTH));
                cur -= self.cols as u32;
                r -= 1;
            }
        }
        debug_assert_eq!(cur, dst.0);
    }
}

impl Topology for Mesh2d {
    fn num_nodes(&self) -> usize {
        self.rows * self.cols
    }

    fn link_count(&self) -> usize {
        self.rows * self.cols * 4
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Path {
        let mut links = Vec::with_capacity(self.hops(src, dst));
        self.route_into_vec(src, dst, &mut links);
        Path::new(src, dst, links)
    }

    fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        let (sr, sc) = self.coords(src);
        let (dr, dc) = self.coords(dst);
        sr.abs_diff(dr) + sc.abs_diff(dc)
    }

    fn route_into(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkId>) {
        out.clear();
        self.route_into_vec(src, dst, out);
        debug_assert_eq!(out.len(), self.hops(src, dst));
    }

    fn diameter(&self) -> usize {
        (self.rows - 1) + (self.cols - 1)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "extents must be positive")]
    fn zero_extent_rejected() {
        Mesh2d::new(0, 4);
    }

    #[test]
    fn coords_roundtrip() {
        let m = Mesh2d::new(3, 5);
        for r in 0..3 {
            for c in 0..5 {
                assert_eq!(m.coords(m.node_at(r, c)), (r, c));
            }
        }
    }

    #[test]
    fn xy_routing_goes_x_then_y() {
        let m = Mesh2d::new(4, 4);
        // (0,0) -> (2,2): east, east, south, south.
        let p = m.route(m.node_at(0, 0), m.node_at(2, 2));
        assert_eq!(p.hops(), 4);
        assert_eq!(
            p.links(),
            &[
                LinkId(EAST),          // node 0, east
                LinkId(4 + EAST),      // node 1, east
                LinkId(2 * 4 + SOUTH), // node 2, south
                LinkId(6 * 4 + SOUTH), // node 6, south
            ]
        );
    }

    #[test]
    fn hops_is_manhattan_distance() {
        let m = Mesh2d::new(5, 7);
        for a in 0..m.num_nodes() {
            for b in 0..m.num_nodes() {
                let (ar, ac) = m.coords(NodeId(a as u32));
                let (br, bc) = m.coords(NodeId(b as u32));
                let d = ar.abs_diff(br) + ac.abs_diff(bc);
                assert_eq!(m.hops(NodeId(a as u32), NodeId(b as u32)), d);
                assert_eq!(m.route(NodeId(a as u32), NodeId(b as u32)).hops(), d);
            }
        }
    }

    #[test]
    fn route_self_is_empty() {
        let m = Mesh2d::new(2, 2);
        assert_eq!(m.route(NodeId(3), NodeId(3)).hops(), 0);
    }

    #[test]
    fn links_in_range() {
        let m = Mesh2d::new(4, 6);
        for a in 0..m.num_nodes() {
            for b in 0..m.num_nodes() {
                for l in m.route(NodeId(a as u32), NodeId(b as u32)).links() {
                    assert!(l.index() < m.link_count());
                }
            }
        }
    }

    #[test]
    fn route_into_override_matches_route() {
        let m = Mesh2d::new(3, 4);
        let mut buf = Vec::new();
        for a in 0..m.num_nodes() {
            for b in 0..m.num_nodes() {
                let (a, b) = (NodeId(a as u32), NodeId(b as u32));
                m.route_into(a, b, &mut buf);
                assert_eq!(buf, m.route(a, b).links());
            }
        }
    }

    #[test]
    fn diameter_corner_to_corner() {
        let m = Mesh2d::new(4, 6);
        assert_eq!(m.diameter(), 8);
        assert_eq!(m.hops(m.node_at(0, 0), m.node_at(3, 5)), 8);
    }
}
