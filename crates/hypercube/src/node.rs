use std::fmt;

/// Identifier of a compute node (processor) in a topology.
///
/// Nodes are numbered `0..n`. On the hypercube the binary representation of
/// the id *is* the node's position: bit `d` selects the side of dimension
/// `d`, and neighbours differ in exactly one bit.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index as a `usize`, for direct table indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The neighbour of this node across hypercube dimension `dim`.
    ///
    /// Only meaningful on a hypercube topology; on other topologies use
    /// [`crate::Topology::route`].
    #[inline]
    pub fn cube_neighbor(self, dim: u32) -> NodeId {
        NodeId(self.0 ^ (1 << dim))
    }

    /// Hamming distance to `other` — the hypercube hop distance.
    #[inline]
    pub fn hamming(self, other: NodeId) -> u32 {
        (self.0 ^ other.0).count_ones()
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(v: usize) -> Self {
        NodeId(v as u32)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_neighbor_flips_one_bit() {
        let n = NodeId(0b1010);
        assert_eq!(n.cube_neighbor(0), NodeId(0b1011));
        assert_eq!(n.cube_neighbor(1), NodeId(0b1000));
        assert_eq!(n.cube_neighbor(3), NodeId(0b0010));
    }

    #[test]
    fn neighbor_is_involution() {
        for v in 0..64u32 {
            for d in 0..6 {
                assert_eq!(NodeId(v).cube_neighbor(d).cube_neighbor(d), NodeId(v));
            }
        }
    }

    #[test]
    fn hamming_distance() {
        assert_eq!(NodeId(0).hamming(NodeId(0)), 0);
        assert_eq!(NodeId(0).hamming(NodeId(0b111)), 3);
        assert_eq!(NodeId(0b101).hamming(NodeId(0b011)), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", NodeId(7)), "P7");
        assert_eq!(format!("{:?}", NodeId(7)), "P7");
    }
}
