use crate::{LinkId, NodeId};

/// The circuit a message claims between a source and a destination node:
/// an ordered sequence of directed links, as produced by the topology's
/// deterministic routing function.
///
/// The paper writes this as `path(i,j) = {edge(i,m1), edge(m1,m2), ...,
/// edge(mx,j)}`. An empty path means `src == dst` (a node never contends
/// with itself; local "sends" are free).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    src: NodeId,
    dst: NodeId,
    links: Vec<LinkId>,
}

impl Path {
    /// Build a path from its endpoints and the directed links it claims.
    pub fn new(src: NodeId, dst: NodeId, links: Vec<LinkId>) -> Self {
        Path { src, dst, links }
    }

    /// Source endpoint.
    #[inline]
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Destination endpoint.
    #[inline]
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// The directed links claimed by this circuit, in traversal order.
    #[inline]
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Number of hops (links) on the path.
    #[inline]
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// Whether this path shares any directed link with `other`.
    ///
    /// This is the paper's *link contention* predicate. Paths are short
    /// (at most the network diameter, 6 on the 64-node cube), so the
    /// quadratic scan beats any hashing scheme.
    pub fn intersects(&self, other: &Path) -> bool {
        self.links
            .iter()
            .any(|l| other.links.iter().any(|m| m == l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: u32, dst: u32, links: &[u32]) -> Path {
        Path::new(
            NodeId(src),
            NodeId(dst),
            links.iter().map(|&l| LinkId(l)).collect(),
        )
    }

    #[test]
    fn empty_path_never_intersects() {
        let empty = p(3, 3, &[]);
        let busy = p(0, 1, &[0, 1, 2]);
        assert!(!empty.intersects(&busy));
        assert!(!busy.intersects(&empty));
    }

    #[test]
    fn intersection_is_symmetric() {
        let a = p(0, 5, &[0, 4, 9]);
        let b = p(2, 7, &[4, 11]);
        let c = p(2, 7, &[3, 11]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(!c.intersects(&a));
    }

    #[test]
    fn accessors() {
        let a = p(0, 5, &[0, 4]);
        assert_eq!(a.src(), NodeId(0));
        assert_eq!(a.dst(), NodeId(5));
        assert_eq!(a.hops(), 2);
        assert_eq!(a.links(), &[LinkId(0), LinkId(4)]);
    }
}
