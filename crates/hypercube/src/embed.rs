//! Classic hypercube embeddings: Gray codes map rings and grids onto the
//! cube so that logical neighbours are physical neighbours — the standard
//! technique (Ranka & Sahni, reference 13 of the paper) for laying out the structured workloads
//! this stack generates.

use crate::NodeId;

/// The `bits`-bit binary-reflected Gray code: `gray(i) = i ^ (i >> 1)`.
///
/// Successive codes differ in exactly one bit, so walking `0..2^bits`
/// through [`gray`] traverses a Hamiltonian cycle of the hypercube.
#[inline]
pub fn gray(i: u32) -> u32 {
    i ^ (i >> 1)
}

/// Inverse Gray code: the rank of a code word in the reflected sequence.
#[inline]
pub fn gray_inverse(mut g: u32) -> u32 {
    let mut i = g;
    while g > 0 {
        g >>= 1;
        i ^= g;
    }
    i
}

/// Embed a ring of `2^dims` logical positions into the cube: position `p`
/// lives on node `gray(p)`, making ring neighbours cube neighbours.
///
/// # Panics
///
/// Panics if `dims > 20` (consistency with [`crate::Hypercube::new`]).
pub fn ring_embedding(dims: u32) -> Vec<NodeId> {
    assert!(dims <= 20, "cube too large");
    (0..(1u32 << dims)).map(|p| NodeId(gray(p))).collect()
}

/// Embed a `2^r x 2^c` logical grid into a `2^(r+c)`-node cube by crossing
/// two Gray codes: grid position `(y, x)` lives on node
/// `gray(y) << c | gray(x)`. Grid neighbours (up/down/left/right, no
/// wraparound needed — Gray codes also connect the wrapped ends) are cube
/// neighbours.
///
/// # Panics
///
/// Panics if `r + c > 20`.
pub fn grid_embedding(r: u32, c: u32) -> Vec<Vec<NodeId>> {
    assert!(r + c <= 20, "cube too large");
    (0..(1u32 << r))
        .map(|y| {
            (0..(1u32 << c))
                .map(|x| NodeId((gray(y) << c) | gray(x)))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_codes_differ_in_one_bit() {
        for i in 0..1023u32 {
            assert_eq!((gray(i) ^ gray(i + 1)).count_ones(), 1);
        }
    }

    #[test]
    fn gray_is_a_bijection_with_inverse() {
        let mut seen = [false; 1024];
        for i in 0..1024u32 {
            let g = gray(i);
            assert!(!seen[g as usize]);
            seen[g as usize] = true;
            assert_eq!(gray_inverse(g), i);
        }
    }

    #[test]
    fn ring_embedding_is_a_hamiltonian_cycle() {
        let ring = ring_embedding(6);
        assert_eq!(ring.len(), 64);
        for w in ring.windows(2) {
            assert_eq!(w[0].hamming(w[1]), 1);
        }
        // And it closes the loop.
        assert_eq!(ring[0].hamming(ring[63]), 1);
    }

    #[test]
    fn grid_embedding_neighbours_are_adjacent() {
        let grid = grid_embedding(3, 3); // 8x8 on a 64-node cube
        for y in 0..8 {
            for x in 0..8 {
                if x + 1 < 8 {
                    assert_eq!(grid[y][x].hamming(grid[y][x + 1]), 1);
                }
                if y + 1 < 8 {
                    assert_eq!(grid[y][x].hamming(grid[y + 1][x]), 1);
                }
            }
        }
        // All 64 nodes used exactly once.
        let mut seen = [false; 64];
        for row in &grid {
            for n in row {
                assert!(!seen[n.index()]);
                seen[n.index()] = true;
            }
        }
    }
}
