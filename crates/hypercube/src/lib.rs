//! Interconnection-network topologies with deterministic, oblivious routing.
//!
//! This crate is the topology substrate for the Wang & Ranka (1994)
//! unstructured-communication scheduling stack. It provides:
//!
//! * [`Hypercube`] — the binary hypercube of the Intel iPSC/860, with
//!   **e-cube** routing (bits corrected from least- to most-significant, the
//!   exact deterministic algorithm the iPSC/860 hardware used),
//! * [`Mesh2d`] — a 2-D mesh with dimension-ordered (XY) routing, showing
//!   that the link-reservation machinery of the scheduling layer generalizes
//!   beyond hypercubes (Section 5 of the paper),
//! * the [`Topology`] trait that the simulator and the schedulers program
//!   against, and
//! * permutation utilities ([`perm`]) for the special contention-free
//!   communication classes the paper exploits (XOR / linear permutations,
//!   bit-complement).
//!
//! # Conventions
//!
//! Links are **directed channels**: every physical full-duplex wire between
//! neighbours `u` and `v` appears as two independent [`LinkId`]s, one per
//! direction. This matches the iPSC/860, where a pairwise exchange between
//! neighbours proceeds concurrently in both directions. A *circuit* (the
//! unit of circuit-switched reservation) is an ordered sequence of directed
//! links returned by [`Topology::route`].
//!
//! # Example
//!
//! ```
//! use hypercube::{Hypercube, NodeId, Topology};
//!
//! let cube = Hypercube::new(6); // the 64-node iPSC/860 at CalTech
//! assert_eq!(cube.num_nodes(), 64);
//!
//! let path = cube.route(NodeId(0), NodeId(5));
//! // e-cube fixes bit 0 first (0 -> 1), then bit 2 (1 -> 5).
//! assert_eq!(path.hops(), 2);
//! ```

#![forbid(unsafe_code)]

mod cube;
pub mod embed;
mod link;
mod mesh;
mod node;
mod path;
pub mod perm;
mod topology;

pub use cube::Hypercube;
pub use link::LinkId;
pub use mesh::Mesh2d;
pub use node::NodeId;
pub use path::Path;
pub use topology::{RoutingProperties, Topology};
