//! Special permutation classes with known contention properties.
//!
//! The LP algorithm (Section 4.1 of the paper) schedules phase `k` as the
//! *XOR permutation* `i -> i XOR k`. Under e-cube routing on the hypercube,
//! every XOR permutation is **link-contention-free**: all `n` circuits of a
//! phase are pairwise link-disjoint (a classic result the paper cites to
//! [3, 13]; [`xor_permutation_is_link_free`] re-verifies it exhaustively in
//! tests). The bit-complement permutation is the special case `k = n - 1`.

use crate::{NodeId, Path, Topology};

/// The XOR (linear) permutation `i -> i ^ k` over `n` nodes.
///
/// Returns the full destination vector. For `k = 0` this is the identity
/// (every node "sends" to itself, i.e. no traffic).
///
/// # Panics
///
/// Panics if `n` is not a power of two or `k >= n`.
pub fn xor_permutation(n: usize, k: usize) -> Vec<NodeId> {
    assert!(n.is_power_of_two(), "XOR permutations need power-of-two n");
    assert!(k < n, "phase index {k} out of range for n={n}");
    (0..n).map(|i| NodeId((i ^ k) as u32)).collect()
}

/// The bit-complement permutation `i -> !i (mod n)`.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn bit_complement(n: usize) -> Vec<NodeId> {
    xor_permutation(n, n - 1)
}

/// The bit-reverse permutation over `n = 2^d` nodes (a classically *bad*
/// permutation for e-cube: many circuits collide). Used by workloads and
/// ablation benches as a contention stress case.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn bit_reverse(n: usize) -> Vec<NodeId> {
    assert!(n.is_power_of_two(), "bit reverse needs power-of-two n");
    let bits = n.trailing_zeros();
    (0..n)
        .map(|i| NodeId(((i as u32).reverse_bits() >> (32 - bits)) & (n as u32 - 1)))
        .collect()
}

/// Check whether a (partial) permutation is link-contention-free on the
/// given topology: no two circuits of the phase share a directed channel.
///
/// `dests[i] = Some(j)` means node `i` sends to node `j` in this phase.
pub fn is_link_free<T: Topology + ?Sized>(topo: &T, dests: &[Option<NodeId>]) -> bool {
    let mut claimed = vec![false; topo.link_count()];
    let mut route = Vec::with_capacity(topo.diameter());
    for (i, dst) in dests.iter().enumerate() {
        let Some(dst) = dst else { continue };
        topo.route_into(NodeId(i as u32), *dst, &mut route);
        for link in &route {
            if claimed[link.index()] {
                return false;
            }
            claimed[link.index()] = true;
        }
    }
    true
}

/// Check whether every XOR permutation phase on `topo` is link-free.
/// (True for hypercubes with e-cube routing; false in general for meshes.)
pub fn xor_permutation_is_link_free<T: Topology>(topo: &T, k: usize) -> bool {
    let n = topo.num_nodes();
    let dests: Vec<Option<NodeId>> = (0..n).map(|i| Some(NodeId((i ^ k) as u32))).collect();
    is_link_free(topo, &dests)
}

/// Collect all pairwise path intersections of a phase, for diagnostics:
/// returns `(i, j)` sender pairs whose circuits share at least one link.
pub fn link_conflicts<T: Topology>(topo: &T, dests: &[Option<NodeId>]) -> Vec<(NodeId, NodeId)> {
    let paths: Vec<Option<Path>> = dests
        .iter()
        .enumerate()
        .map(|(i, d)| d.map(|dst| topo.route(NodeId(i as u32), dst)))
        .collect();
    let mut out = Vec::new();
    for i in 0..paths.len() {
        for j in (i + 1)..paths.len() {
            if let (Some(a), Some(b)) = (&paths[i], &paths[j]) {
                if a.intersects(b) {
                    out.push((NodeId(i as u32), NodeId(j as u32)));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Hypercube, Mesh2d};

    #[test]
    fn xor_perm_is_an_involution() {
        let p = xor_permutation(64, 21);
        for (i, d) in p.iter().enumerate() {
            assert_eq!(p[d.index()], NodeId(i as u32));
        }
    }

    #[test]
    fn every_xor_phase_is_link_free_on_the_cube() {
        // The key property LP relies on, verified exhaustively for the
        // paper's 64-node machine: all 63 non-trivial phases are
        // contention-free under e-cube.
        let cube = Hypercube::new(6);
        for k in 0..64 {
            assert!(xor_permutation_is_link_free(&cube, k), "phase {k}");
        }
    }

    #[test]
    fn xor_phases_link_free_on_smaller_cubes() {
        for dims in 1..=5 {
            let cube = Hypercube::new(dims);
            for k in 0..cube.num_nodes() {
                assert!(xor_permutation_is_link_free(&cube, k));
            }
        }
    }

    #[test]
    fn bit_complement_is_xor_with_all_ones() {
        assert_eq!(bit_complement(8), xor_permutation(8, 7));
    }

    #[test]
    fn bit_reverse_is_a_permutation() {
        let p = bit_reverse(64);
        let mut seen = [false; 64];
        for d in &p {
            assert!(!seen[d.index()]);
            seen[d.index()] = true;
        }
        // And it is self-inverse.
        for (i, d) in p.iter().enumerate() {
            assert_eq!(p[d.index()], NodeId(i as u32));
        }
    }

    #[test]
    fn bit_reverse_contends_on_the_cube() {
        // Sanity check that our "bad permutation" really is bad: bit
        // reversal under e-cube has link conflicts on cubes of dim >= 3.
        let cube = Hypercube::new(6);
        let dests: Vec<_> = bit_reverse(64).into_iter().map(Some).collect();
        assert!(!is_link_free(&cube, &dests));
        assert!(!link_conflicts(&cube, &dests).is_empty());
    }

    #[test]
    fn xor_phase_can_contend_on_a_mesh() {
        // On a mesh, XOR phases are NOT guaranteed link-free; this is why
        // LP is a hypercube-specific algorithm while RS_NL generalizes.
        let mesh = Mesh2d::new(4, 4);
        let any_conflict = (1..16).any(|k| !xor_permutation_is_link_free(&mesh, k));
        assert!(any_conflict);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn xor_perm_rejects_non_power_of_two() {
        xor_permutation(12, 3);
    }

    #[test]
    fn identity_phase_is_trivially_link_free() {
        let cube = Hypercube::new(4);
        assert!(xor_permutation_is_link_free(&cube, 0));
    }
}
