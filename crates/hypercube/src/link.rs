use std::fmt;

/// Identifier of a **directed** communication channel.
///
/// Every full-duplex physical wire contributes two `LinkId`s, one per
/// direction. The encoding is topology-specific (see
/// [`crate::Topology::link_count`]); for the hypercube the outgoing channel
/// of node `u` along dimension `d` has id `u * dims + d`.
///
/// Directed channels are the unit of circuit-switched reservation: two
/// circuits contend if and only if they share a `LinkId`. Opposite
/// directions of the same wire never contend, which is what makes pairwise
/// exchange between neighbours fully concurrent on the iPSC/860.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The link's index as a `usize`, for direct occupancy-table indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        assert_eq!(LinkId(17).index(), 17);
        assert_eq!(format!("{}", LinkId(3)), "L3");
    }
}
