//! Matrix deltas and schedule patching — the core of the incremental
//! compilation path.
//!
//! Real unstructured workloads re-schedule *near-identical* matrices every
//! timestep (AMR halo exchanges, iterative solvers with drifting
//! sparsity). A [`MatrixDelta`] captures exactly what changed between two
//! [`CommMatrix`] instances of the same size — messages added, removed,
//! or resized — and [`Scheduler::patch_schedule`](crate::Scheduler::patch_schedule)
//! turns a previously computed schedule of the base matrix into a schedule
//! of the perturbed one by editing only the touched phases, instead of
//! recompiling from scratch.
//!
//! Patched schedules are **never presumed valid**: every consumer of the
//! patching path (the `commcache` incremental layer, the daemon) gates the
//! result through [`crate::validate_schedule`] and falls back to a full
//! recompile on rejection. Patching trades *exact schedule reproduction*
//! (op counts and phase placement may differ from a cold compile) for
//! compile latency; it never trades correctness.
//!
//! # Example
//!
//! ```
//! use commsched::{registry, validate_schedule, CommMatrix, MatrixDelta};
//! use hypercube::Hypercube;
//!
//! let cube = Hypercube::new(4);
//! let mut base = CommMatrix::new(16);
//! base.set(0, 5, 1024);
//! base.set(5, 0, 1024);
//! let mut drifted = base.clone();
//! drifted.set(3, 7, 64); // one new message
//!
//! let delta = MatrixDelta::diff(&base, &drifted).unwrap();
//! assert_eq!(delta.change_count(), 1);
//!
//! let entry = registry::find("RS_NL").unwrap();
//! let cold = entry.schedule(&base, &cube, 7);
//! let patched = entry.patch_schedule(&cold, &delta, &cube, 7).unwrap();
//! validate_schedule(&drifted, &patched).unwrap();
//! assert!(patched.link_contention_free(&cube));
//! ```

use std::collections::HashSet;
use std::fmt;

use hypercube::{NodeId, Topology};

use crate::{CommMatrix, PartialPermutation, Schedule, ScheduleKind};

/// Why a delta could not be built or applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// Delta and matrix disagree on the node count.
    WrongSize {
        /// Nodes the delta spans.
        delta: usize,
        /// Nodes in the matrix it was applied to.
        matrix: usize,
    },
    /// An endpoint lies outside `0..n`.
    OutOfRange {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
        /// Node count of the delta.
        n: usize,
    },
    /// A delta entry names a self-message.
    SelfMessage {
        /// The node sending to itself.
        node: usize,
    },
    /// An added or resized entry carries zero bytes (that is a removal).
    ZeroBytes {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
    },
    /// The same `(src, dst)` cell appears in more than one delta entry.
    DuplicateCell {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
    },
    /// An added message already exists in the base matrix.
    AddExisting {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
    },
    /// A removed or resized message does not exist in the base matrix.
    MissingMessage {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::WrongSize { delta, matrix } => {
                write!(f, "delta spans {delta} nodes, matrix {matrix}")
            }
            DeltaError::OutOfRange { src, dst, n } => {
                write!(f, "delta entry {src}->{dst} out of range for {n} nodes")
            }
            DeltaError::SelfMessage { node } => {
                write!(f, "delta entry {node}->{node} is a self-message")
            }
            DeltaError::ZeroBytes { src, dst } => {
                write!(f, "delta entry {src}->{dst} carries zero bytes")
            }
            DeltaError::DuplicateCell { src, dst } => {
                write!(f, "cell {src}->{dst} appears in more than one delta entry")
            }
            DeltaError::AddExisting { src, dst } => {
                write!(f, "added message {src}->{dst} already exists in the base")
            }
            DeltaError::MissingMessage { src, dst } => {
                write!(f, "message {src}->{dst} not present in the base")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// The difference between two same-sized communication matrices, as three
/// disjoint edit lists in row-major cell order:
///
/// * **added** — messages present in the target, absent in the base;
/// * **removed** — messages present in the base, absent in the target;
/// * **resized** — messages present in both with a different byte count
///   (the entry records the *target* byte count).
///
/// Resizes never change schedule *structure* (phases carry no byte
/// counts), so a resize-only delta patches for free. A delta built by
/// [`MatrixDelta::diff`] applied to its base via [`MatrixDelta::apply`]
/// reproduces the target exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatrixDelta {
    n: usize,
    added: Vec<(NodeId, NodeId, u32)>,
    removed: Vec<(NodeId, NodeId)>,
    resized: Vec<(NodeId, NodeId, u32)>,
}

impl MatrixDelta {
    /// Diff `target` against `base`.
    ///
    /// # Errors
    ///
    /// [`DeltaError::WrongSize`] when the matrices span different node
    /// counts — deltas only relate same-sized instances.
    pub fn diff(base: &CommMatrix, target: &CommMatrix) -> Result<MatrixDelta, DeltaError> {
        if base.n() != target.n() {
            return Err(DeltaError::WrongSize {
                delta: target.n(),
                matrix: base.n(),
            });
        }
        let n = base.n();
        let mut delta = MatrixDelta {
            n,
            added: Vec::new(),
            removed: Vec::new(),
            resized: Vec::new(),
        };
        for i in 0..n {
            for j in 0..n {
                let (old, new) = (base.get(i, j), target.get(i, j));
                if old == new {
                    continue;
                }
                let (src, dst) = (NodeId(i as u32), NodeId(j as u32));
                match (old, new) {
                    (0, b) => delta.added.push((src, dst, b)),
                    (_, 0) => delta.removed.push((src, dst)),
                    (_, b) => delta.resized.push((src, dst, b)),
                }
            }
        }
        Ok(delta)
    }

    /// Reassemble a delta from its edit lists — the decode path of
    /// external serializers (the daemon's `SubmitDelta` frame). Unlike
    /// [`MatrixDelta::diff`] output, hand-assembled lists are checked:
    /// endpoints must be in range, self-messages and zero-byte
    /// adds/resizes are rejected, and no cell may appear twice.
    ///
    /// # Errors
    ///
    /// The first malformed entry found, as a [`DeltaError`].
    pub fn from_parts(
        n: usize,
        added: Vec<(NodeId, NodeId, u32)>,
        removed: Vec<(NodeId, NodeId)>,
        resized: Vec<(NodeId, NodeId, u32)>,
    ) -> Result<MatrixDelta, DeltaError> {
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        let mut check = |src: NodeId, dst: NodeId, bytes: Option<u32>| -> Result<(), DeltaError> {
            let (s, d) = (src.index(), dst.index());
            if s >= n || d >= n {
                return Err(DeltaError::OutOfRange { src: s, dst: d, n });
            }
            if s == d {
                return Err(DeltaError::SelfMessage { node: s });
            }
            if bytes == Some(0) {
                return Err(DeltaError::ZeroBytes { src: s, dst: d });
            }
            if !seen.insert((src.0, dst.0)) {
                return Err(DeltaError::DuplicateCell { src: s, dst: d });
            }
            Ok(())
        };
        for &(src, dst, bytes) in &added {
            check(src, dst, Some(bytes))?;
        }
        for &(src, dst) in &removed {
            check(src, dst, None)?;
        }
        for &(src, dst, bytes) in &resized {
            check(src, dst, Some(bytes))?;
        }
        Ok(MatrixDelta {
            n,
            added,
            removed,
            resized,
        })
    }

    /// Node count the delta spans.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Messages added by the delta, with their byte counts.
    pub fn added(&self) -> &[(NodeId, NodeId, u32)] {
        &self.added
    }

    /// Messages removed by the delta.
    pub fn removed(&self) -> &[(NodeId, NodeId)] {
        &self.removed
    }

    /// Messages resized by the delta, with their *new* byte counts.
    pub fn resized(&self) -> &[(NodeId, NodeId, u32)] {
        &self.resized
    }

    /// Total edits (added + removed + resized).
    pub fn change_count(&self) -> usize {
        self.added.len() + self.removed.len() + self.resized.len()
    }

    /// Whether the delta edits nothing (base and target are identical).
    pub fn is_empty(&self) -> bool {
        self.change_count() == 0
    }

    /// Edits that change schedule *structure* (added + removed); resizes
    /// patch for free, so fallback thresholds meter this count.
    pub fn structural_count(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Apply the delta to `base`, producing the target matrix.
    ///
    /// # Errors
    ///
    /// [`DeltaError`] when the delta does not describe an edit of `base`:
    /// wrong size, an added message that already exists, or a
    /// removed/resized message that does not. A delta from
    /// [`MatrixDelta::diff`] applied to its own base never fails.
    pub fn apply(&self, base: &CommMatrix) -> Result<CommMatrix, DeltaError> {
        if base.n() != self.n {
            return Err(DeltaError::WrongSize {
                delta: self.n,
                matrix: base.n(),
            });
        }
        let mut out = base.clone();
        for &(src, dst, bytes) in &self.added {
            let (s, d) = (src.index(), dst.index());
            if out.get(s, d) != 0 {
                return Err(DeltaError::AddExisting { src: s, dst: d });
            }
            out.set(s, d, bytes);
        }
        for &(src, dst) in &self.removed {
            let (s, d) = (src.index(), dst.index());
            if out.get(s, d) == 0 {
                return Err(DeltaError::MissingMessage { src: s, dst: d });
            }
            out.set(s, d, 0);
        }
        for &(src, dst, bytes) in &self.resized {
            let (s, d) = (src.index(), dst.index());
            if out.get(s, d) == 0 {
                return Err(DeltaError::MissingMessage { src: s, dst: d });
            }
            out.set(s, d, bytes);
        }
        Ok(out)
    }
}

/// Patch a **phased** base schedule by structural edit — the generic
/// patcher behind the RS-family and GREEDY
/// [`Scheduler::patch_schedule`](crate::Scheduler::patch_schedule)
/// implementations.
///
/// * Removed messages vacate their slot in the phase that carried them.
/// * Resized messages change nothing (phases carry no byte counts).
/// * Added messages go to the first phase — probed **newest first** — in
///   which the sender is silent, the receiver is free, and (when
///   `require_link_free`) the message's route shares no link with the
///   phase's existing circuits; a fresh phase is appended when no phase
///   admits the message.
/// * Phases emptied by removals are dropped.
///
/// Newest-first probing is what keeps a patch O(edits), not O(matrix):
/// dense early phases of a tight base schedule rarely admit a new
/// message anyway, while the sparse appendix phases earlier patches
/// created admit cheaply — and their link occupancy, built lazily per
/// probed phase, costs O(circuits in that phase) instead of a full
/// O(messages) sweep. The tradeoff is a patched schedule that may carry
/// a few more phases than a cold compile; the patch contract is
/// validity, not reproduction.
///
/// Op accounting: the base schedule's op count plus one op per slot or
/// link probed while patching — deterministic, and honest about the
/// (small) work the patch performed.
///
/// Returns `None` when the base is not patchable: an async schedule, a
/// node-count mismatch, or a removed message the base never scheduled
/// (the delta does not describe this schedule's matrix). Callers fall
/// back to a full recompile.
pub fn patch_phased(
    base: &Schedule,
    delta: &MatrixDelta,
    topo: &dyn Topology,
    require_link_free: bool,
) -> Option<Schedule> {
    if base.kind() != ScheduleKind::Phased || base.n() != delta.n() {
        return None;
    }
    let n = base.n();
    let mut phases: Vec<Vec<Option<NodeId>>> = base
        .phases()
        .iter()
        .map(|pm| (0..n).map(|i| pm.dest(i)).collect())
        .collect();
    let mut probes: u64 = 0;

    // Per-phase occupancy, maintained across edits — probing a phase per
    // candidate message must be O(route), not O(n), or a patch costs as
    // much as the compile it replaces.
    let mut scratch = Vec::with_capacity(topo.diameter());
    let mut receiver_busy: Vec<Vec<bool>> = phases
        .iter()
        .map(|phase| {
            let mut busy = vec![false; n];
            for d in phase.iter().flatten() {
                busy[d.index()] = true;
            }
            busy
        })
        .collect();
    // Link maps are built lazily, only for phases the add loop probes past
    // the sender/receiver checks. Removals all precede adds, so every map
    // is built from (and reflects) the post-removal phase — no unclaiming
    // needed.
    let mut claimed: Vec<Option<Vec<bool>>> = vec![None; phases.len()];

    for &(src, dst) in delta.removed() {
        let mut found = false;
        for (k, phase) in phases.iter_mut().enumerate() {
            probes += 1;
            if phase[src.index()] == Some(dst) {
                phase[src.index()] = None;
                receiver_busy[k][dst.index()] = false;
                found = true;
                break;
            }
        }
        if !found {
            return None;
        }
    }

    let mut route = Vec::with_capacity(topo.diameter());
    for &(src, dst, _bytes) in delta.added() {
        if require_link_free {
            topo.route_into(src, dst, &mut route);
        }
        let mut placed = None;
        for k in (0..phases.len()).rev() {
            probes += 1;
            if phases[k][src.index()].is_some() || receiver_busy[k][dst.index()] {
                continue;
            }
            if require_link_free {
                let map = claimed[k].get_or_insert_with(|| {
                    claimed_links(&phases[k], topo, &mut scratch, &mut probes)
                });
                let free = route.iter().all(|l| !map[l.index()]);
                probes += route.len() as u64;
                if !free {
                    continue;
                }
            }
            placed = Some(k);
            break;
        }
        match placed {
            Some(k) => {
                phases[k][src.index()] = Some(dst);
                receiver_busy[k][dst.index()] = true;
                if require_link_free {
                    let map = claimed[k].as_mut().expect("map built during probe");
                    for l in &route {
                        probes += 1;
                        map[l.index()] = true;
                    }
                }
            }
            None => {
                let mut fresh = vec![None; n];
                fresh[src.index()] = Some(dst);
                let mut busy = vec![false; n];
                busy[dst.index()] = true;
                if require_link_free {
                    let mut c = vec![false; topo.link_count()];
                    for l in &route {
                        probes += 1;
                        c[l.index()] = true;
                    }
                    claimed.push(Some(c));
                } else {
                    claimed.push(None);
                }
                phases.push(fresh);
                receiver_busy.push(busy);
            }
        }
    }

    phases.retain(|phase| phase.iter().any(|d| d.is_some()));
    Some(Schedule::from_parts(
        ScheduleKind::Phased,
        base.algorithm(),
        n,
        phases
            .into_iter()
            .map(PartialPermutation::from_dests)
            .collect(),
        base.ops() + probes,
        base.compress_ops(),
    ))
}

/// Links claimed by a phase's circuits, as a dense bitmap.
fn claimed_links(
    phase: &[Option<NodeId>],
    topo: &dyn Topology,
    scratch: &mut Vec<hypercube::LinkId>,
    probes: &mut u64,
) -> Vec<bool> {
    let mut claimed = vec![false; topo.link_count()];
    for (i, d) in phase.iter().enumerate() {
        if let Some(d) = d {
            topo.route_into(NodeId(i as u32), *d, scratch);
            for l in scratch.iter() {
                *probes += 1;
                claimed[l.index()] = true;
            }
        }
    }
    claimed
}

/// Patch an LP base schedule **exactly**: in LP, message `i -> j` lives in
/// phase `(i ^ j) - 1` by construction, so edits land structurally —
/// removals vacate that slot, additions fill it (the slot is necessarily
/// free in a valid LP schedule of the base), resizes change nothing. The
/// result is bit-identical to `lp(target)`: same `n - 1` phases (empties
/// retained), same op counts.
///
/// Returns `None` when the base does not have LP's shape (`n` not a power
/// of two, phase count not `n - 1`, an edit inconsistent with the base).
pub fn patch_lp(base: &Schedule, delta: &MatrixDelta) -> Option<Schedule> {
    let n = base.n();
    if base.kind() != ScheduleKind::Phased
        || n != delta.n()
        || !n.is_power_of_two()
        || base.num_phases() != n - 1
    {
        return None;
    }
    let mut phases: Vec<Vec<Option<NodeId>>> = base
        .phases()
        .iter()
        .map(|pm| (0..n).map(|i| pm.dest(i)).collect())
        .collect();
    for &(src, dst) in delta.removed() {
        let k = (src.0 ^ dst.0) as usize - 1;
        if phases[k][src.index()] != Some(dst) {
            return None;
        }
        phases[k][src.index()] = None;
    }
    for &(src, dst, _bytes) in delta.added() {
        let k = (src.0 ^ dst.0) as usize - 1;
        if phases[k][src.index()].is_some() {
            return None;
        }
        phases[k][src.index()] = Some(dst);
    }
    Some(Schedule::from_parts(
        ScheduleKind::Phased,
        base.algorithm(),
        n,
        phases
            .into_iter()
            .map(PartialPermutation::from_dests)
            .collect(),
        base.ops(),
        base.compress_ops(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lp, registry, rs_nl, validate_schedule};
    use hypercube::Hypercube;

    fn sample_com(n: usize) -> CommMatrix {
        let mut com = CommMatrix::new(n);
        for i in 0..n {
            com.set(i, (i + 1) % n, 256);
            com.set(i, (i + 5) % n, 512);
        }
        com
    }

    #[test]
    fn diff_classifies_and_apply_roundtrips() {
        let base = sample_com(16);
        let mut target = base.clone();
        target.set(0, 1, 0); // removed
        target.set(0, 5, 999); // resized
        target.set(2, 9, 64); // added
        let delta = MatrixDelta::diff(&base, &target).unwrap();
        assert_eq!(delta.added().len(), 1);
        assert_eq!(delta.removed().len(), 1);
        assert_eq!(delta.resized().len(), 1);
        assert_eq!(delta.change_count(), 3);
        assert_eq!(delta.structural_count(), 2);
        assert_eq!(delta.apply(&base).unwrap(), target);
    }

    #[test]
    fn empty_delta_between_identical_matrices() {
        let base = sample_com(8);
        let delta = MatrixDelta::diff(&base, &base.clone()).unwrap();
        assert!(delta.is_empty());
        assert_eq!(delta.apply(&base).unwrap(), base);
    }

    #[test]
    fn diff_rejects_size_mismatch() {
        let err = MatrixDelta::diff(&CommMatrix::new(8), &CommMatrix::new(16)).unwrap_err();
        assert!(matches!(err, DeltaError::WrongSize { .. }));
    }

    #[test]
    fn from_parts_rejects_malformed_entries() {
        let n = 8;
        let oob = MatrixDelta::from_parts(n, vec![(NodeId(0), NodeId(9), 5)], vec![], vec![]);
        assert!(matches!(oob, Err(DeltaError::OutOfRange { .. })));
        let selfm = MatrixDelta::from_parts(n, vec![], vec![(NodeId(3), NodeId(3))], vec![]);
        assert!(matches!(selfm, Err(DeltaError::SelfMessage { node: 3 })));
        let zero = MatrixDelta::from_parts(n, vec![(NodeId(0), NodeId(1), 0)], vec![], vec![]);
        assert!(matches!(zero, Err(DeltaError::ZeroBytes { .. })));
        let dup = MatrixDelta::from_parts(
            n,
            vec![(NodeId(0), NodeId(1), 5)],
            vec![(NodeId(0), NodeId(1))],
            vec![],
        );
        assert!(matches!(dup, Err(DeltaError::DuplicateCell { .. })));
    }

    #[test]
    fn apply_rejects_inconsistent_edits() {
        let base = sample_com(8);
        let add_existing =
            MatrixDelta::from_parts(8, vec![(NodeId(0), NodeId(1), 5)], vec![], vec![]).unwrap();
        assert!(matches!(
            add_existing.apply(&base),
            Err(DeltaError::AddExisting { src: 0, dst: 1 })
        ));
        let remove_missing =
            MatrixDelta::from_parts(8, vec![], vec![(NodeId(0), NodeId(2))], vec![]).unwrap();
        assert!(matches!(
            remove_missing.apply(&base),
            Err(DeltaError::MissingMessage { src: 0, dst: 2 })
        ));
    }

    #[test]
    fn patch_phased_preserves_validity_and_link_freedom() {
        let cube = Hypercube::new(5);
        let base = sample_com(32);
        let mut target = base.clone();
        target.set(0, 1, 0);
        target.set(4, 20, 77);
        target.set(7, 12, 1);
        target.set(3, 8, 2048); // resize
        let delta = MatrixDelta::diff(&base, &target).unwrap();
        let cold = rs_nl(&base, &cube, 11);
        let patched = patch_phased(&cold, &delta, &cube, true).expect("patchable");
        validate_schedule(&target, &patched).unwrap();
        assert!(patched.link_contention_free(&cube));
        assert!(patched.ops() > cold.ops(), "probes are accounted");
    }

    #[test]
    fn patch_phased_rejects_foreign_deltas() {
        let cube = Hypercube::new(4);
        let base = sample_com(16);
        let cold = rs_nl(&base, &cube, 3);
        // A removal the base never scheduled: not this schedule's matrix.
        let foreign =
            MatrixDelta::from_parts(16, vec![], vec![(NodeId(0), NodeId(9))], vec![]).unwrap();
        assert!(patch_phased(&cold, &foreign, &cube, true).is_none());
        // Node-count mismatch.
        let wrong = MatrixDelta::from_parts(8, vec![], vec![], vec![]).unwrap();
        assert!(patch_phased(&cold, &wrong, &cube, true).is_none());
    }

    #[test]
    fn patch_lp_is_bit_identical_to_cold_lp() {
        let base = sample_com(16);
        let mut target = base.clone();
        target.set(0, 1, 0);
        target.set(2, 9, 64);
        target.set(0, 5, 4096);
        let delta = MatrixDelta::diff(&base, &target).unwrap();
        let patched = patch_lp(&lp(&base), &delta).expect("patchable");
        assert_eq!(patched, lp(&target));
    }

    #[test]
    fn registry_patches_validate_across_entries() {
        let cube = Hypercube::new(5);
        let base = sample_com(32);
        let mut target = base.clone();
        target.set(0, 1, 0);
        target.set(9, 3, 128);
        target.set(4, 9, 100);
        let delta = MatrixDelta::diff(&base, &target).unwrap();
        let mut patchable = 0;
        for entry in registry::all() {
            let cold = entry.schedule(&base, &cube, 5);
            match entry.patch_schedule(&cold, &delta, &cube, 5) {
                Some(patched) => {
                    patchable += 1;
                    validate_schedule(&target, &patched)
                        .unwrap_or_else(|e| panic!("{}: {e}", entry.name()));
                    if entry.link_contention_free() {
                        assert!(patched.link_contention_free(&cube), "{}", entry.name());
                    }
                    if entry.node_contention_free() {
                        for pm in patched.phases() {
                            assert!(pm.is_partial_permutation(), "{}", entry.name());
                        }
                    }
                }
                None => assert_eq!(entry.name(), "AC", "only AC declines patching"),
            }
        }
        assert_eq!(patchable, registry::all().len() - 1);
    }

    #[test]
    fn resize_only_delta_patches_to_an_identical_structure() {
        let cube = Hypercube::new(4);
        let base = sample_com(16);
        let mut target = base.clone();
        target.set(0, 5, 9999);
        let delta = MatrixDelta::diff(&base, &target).unwrap();
        let cold = rs_nl(&base, &cube, 1);
        let patched = patch_phased(&cold, &delta, &cube, true).unwrap();
        assert_eq!(patched.phases(), cold.phases());
        validate_schedule(&target, &patched).unwrap();
    }
}
