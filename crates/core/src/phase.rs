use hypercube::{NodeId, Topology};

/// One communication phase: a **partial permutation** `pm` with
/// `pm[i] = Some(j)` meaning node `i` sends its pending message to node `j`
/// in this phase, and `None` meaning node `i` stays silent (the paper's
/// `pm_i = -1`).
///
/// The defining property (Section 2) is injectivity: no two senders target
/// the same receiver, so every node sends at most one and receives at most
/// one message — no *node contention*.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialPermutation {
    dests: Vec<Option<NodeId>>,
}

impl PartialPermutation {
    /// An all-silent phase over `n` nodes.
    pub fn empty(n: usize) -> Self {
        PartialPermutation {
            dests: vec![None; n],
        }
    }

    /// Build from a destination vector.
    pub fn from_dests(dests: Vec<Option<NodeId>>) -> Self {
        PartialPermutation { dests }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.dests.len()
    }

    /// Destination of node `i` in this phase.
    #[inline]
    pub fn dest(&self, i: usize) -> Option<NodeId> {
        self.dests[i]
    }

    /// Assign `src -> dst`.
    ///
    /// # Panics
    ///
    /// Panics if `src` already has a destination in this phase (node
    /// contention on the send side is a scheduler bug, not a runtime
    /// condition).
    pub fn assign(&mut self, src: NodeId, dst: NodeId) {
        assert!(
            self.dests[src.index()].is_none(),
            "{src} already sends in this phase"
        );
        self.dests[src.index()] = Some(dst);
    }

    /// Iterate `(src, dst)` pairs of the phase.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.dests
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|dst| (NodeId(i as u32), dst)))
    }

    /// Number of messages in the phase.
    pub fn len(&self) -> usize {
        self.dests.iter().filter(|d| d.is_some()).count()
    }

    /// Whether the phase carries no messages.
    pub fn is_empty(&self) -> bool {
        self.dests.iter().all(|d| d.is_none())
    }

    /// Check the partial-permutation property: distinct senders have
    /// distinct receivers, and nobody sends to itself.
    pub fn is_partial_permutation(&self) -> bool {
        let mut seen = vec![false; self.n()];
        for (src, dst) in self.pairs() {
            if src == dst || seen[dst.index()] {
                return false;
            }
            seen[dst.index()] = true;
        }
        true
    }

    /// Whether `i <-> j` form a reciprocal (pairwise-exchange) pair in this
    /// phase: `pm[i] = j` and `pm[j] = i`. The runtime fuses such pairs
    /// into concurrent bidirectional exchanges on the iPSC/860.
    pub fn is_exchange_pair(&self, i: NodeId) -> bool {
        match self.dests[i.index()] {
            Some(j) => self.dests[j.index()] == Some(i),
            None => false,
        }
    }

    /// Count reciprocal pairs (each pair counted once).
    pub fn exchange_pairs(&self) -> usize {
        self.pairs()
            .filter(|&(src, dst)| src.0 < dst.0 && self.dests[dst.index()] == Some(src))
            .count()
    }

    /// The phase under a node relabeling: message `i -> j` becomes
    /// `perm[i] -> perm[j]`. With `perm` a topology automorphism (e.g. an
    /// XOR translation of the hypercube) this preserves hop counts,
    /// link-disjointness, and exchange structure — the metamorphic
    /// invariant `tests/registry_properties.rs` exercises.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn relabeled(&self, perm: &[NodeId]) -> PartialPermutation {
        assert_eq!(perm.len(), self.n(), "relabeling spans a different size");
        let mut seen = vec![false; self.n()];
        for p in perm {
            assert!(
                !std::mem::replace(&mut seen[p.index()], true),
                "relabeling is not a permutation"
            );
        }
        let mut dests = vec![None; self.n()];
        for (src, dst) in self.pairs() {
            dests[perm[src.index()].index()] = Some(perm[dst.index()]);
        }
        PartialPermutation { dests }
    }

    /// Whether all circuits of this phase are pairwise link-disjoint on
    /// `topo` — the *link contention freedom* RS_NL and LP guarantee.
    pub fn is_link_free<T: Topology + ?Sized>(&self, topo: &T) -> bool {
        let mut claimed = vec![false; topo.link_count()];
        let mut route = Vec::with_capacity(topo.diameter());
        for (src, dst) in self.pairs() {
            topo.route_into(src, dst, &mut route);
            for l in &route {
                if claimed[l.index()] {
                    return false;
                }
                claimed[l.index()] = true;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypercube::Hypercube;

    #[test]
    fn assign_and_query() {
        let mut pm = PartialPermutation::empty(4);
        assert!(pm.is_empty());
        pm.assign(NodeId(0), NodeId(2));
        pm.assign(NodeId(2), NodeId(0));
        assert_eq!(pm.len(), 2);
        assert_eq!(pm.dest(0), Some(NodeId(2)));
        assert_eq!(pm.dest(1), None);
        assert!(pm.is_partial_permutation());
    }

    #[test]
    #[should_panic(expected = "already sends")]
    fn double_assign_panics() {
        let mut pm = PartialPermutation::empty(4);
        pm.assign(NodeId(0), NodeId(1));
        pm.assign(NodeId(0), NodeId(2));
    }

    #[test]
    fn node_contention_detected() {
        // Two senders, one receiver: NOT a partial permutation.
        let pm = PartialPermutation::from_dests(vec![Some(NodeId(2)), Some(NodeId(2)), None, None]);
        assert!(!pm.is_partial_permutation());
    }

    #[test]
    fn self_send_detected() {
        let pm = PartialPermutation::from_dests(vec![Some(NodeId(0)), None]);
        assert!(!pm.is_partial_permutation());
    }

    #[test]
    fn exchange_pairs_counted_once() {
        let mut pm = PartialPermutation::empty(6);
        pm.assign(NodeId(0), NodeId(3));
        pm.assign(NodeId(3), NodeId(0));
        pm.assign(NodeId(1), NodeId(2)); // one-way
        assert_eq!(pm.exchange_pairs(), 1);
        assert!(pm.is_exchange_pair(NodeId(0)));
        assert!(pm.is_exchange_pair(NodeId(3)));
        assert!(!pm.is_exchange_pair(NodeId(1)));
        assert!(!pm.is_exchange_pair(NodeId(4)));
    }

    #[test]
    fn link_freedom_on_cube() {
        let cube = Hypercube::new(3);
        // XOR-by-1 pairs: link free.
        let mut pm = PartialPermutation::empty(8);
        for i in 0..8u32 {
            pm.assign(NodeId(i), NodeId(i ^ 1));
        }
        assert!(pm.is_link_free(&cube));
        // 0->3 (via 1) and 1->... make 1->3's circuit collide: 0->3 uses
        // links (0,d0),(1,d1); 5->1 uses (5,d2)... pick a known conflict:
        // 0->3 and 1->2? 1->2 fixes bits 0,1: 1->0 (d0), 0->2 (d1). No
        // conflict with (0,d0)? (0,d0) is 0->1; (1,d0) is 1->0. Disjoint.
        // Use 0->3 ((0,d0),(1,d1)) and 5->3 (5^3=6: (5,d1),(7,d2)?
        // e-cube 5->3: diff=6, fix d1: 5->7 (5,d1), fix d2: 7->3 (7,d2).
        // Still disjoint. Share (1,d1): sender 1 to dst with bit1 set ->
        // 1->3 uses (1,d1). So 0->3 and 1->... 1 already sends? Make a
        // phase with 0->3 and 1->3: that's node contention, not the point.
        // 1->7: diff 6: (1,d1),(3,d2). Shares (1,d1)? 0->3's second link is
        // (1,d1). Yes!
        let mut pm2 = PartialPermutation::empty(8);
        pm2.assign(NodeId(0), NodeId(3));
        pm2.assign(NodeId(1), NodeId(7));
        assert!(pm2.is_partial_permutation());
        assert!(!pm2.is_link_free(&cube));
    }
}
