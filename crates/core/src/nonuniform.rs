//! Non-uniform message sizes (the extension the paper defers to the
//! thesis, reference 15 of the paper).
//!
//! The experiments in the paper assume every message has the same size, in
//! which case a phase's cost is `tau + M*phi` regardless of which messages
//! share it. With non-uniform sizes a phase costs `tau + max(M)*phi`: one
//! huge message in a phase of small ones wastes everyone's time. The
//! largest-first heuristic here packs big messages together by scanning
//! each `CCOM` row for the largest feasible candidate instead of the first
//! one, shrinking the sum over phases of the per-phase maximum.

use hypercube::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{CommMatrix, PartialPermutation, Schedule, ScheduleKind, SchedulerKind};

/// RS_N with a largest-first row scan for non-uniform message sizes.
///
/// Identical to [`crate::rs_n`] in structure (random sweep start, one
/// message per node per phase, node-contention-free by construction), but
/// each row picks the feasible candidate with the **largest byte count**,
/// so that big messages ride together and small messages do not get
/// stranded in expensive phases.
pub fn rs_n_largest_first(com: &CommMatrix, seed: u64) -> Schedule {
    let n = com.n();
    let mut rng = StdRng::seed_from_u64(seed);
    // A size-aware compressed matrix: per row, live (dst, bytes) pairs.
    let mut rows: Vec<Vec<(u32, u32)>> = (0..n)
        .map(|i| {
            com.row(i)
                .iter()
                .enumerate()
                .filter_map(|(j, &b)| (b > 0).then_some((j as u32, b)))
                .collect()
        })
        .collect();
    let mut ops: u64 = 0;
    let width = rows.iter().map(Vec::len).max().unwrap_or(0).max(1);
    let mut remaining: usize = rows.iter().map(Vec::len).sum();
    let mut phases: Vec<PartialPermutation> = Vec::new();
    let mut tsend: Vec<i32> = vec![-1; n];
    let mut trecv: Vec<i32> = vec![-1; n];

    while remaining > 0 {
        tsend.fill(-1);
        trecv.fill(-1);
        ops += n as u64;
        let start = rng.random_range(0..n);
        let mut x = start;
        for _ in 0..n {
            ops += 1;
            let mut best: Option<(usize, u32, u32)> = None; // (slot, dst, bytes)
            for (z, &(dst, bytes)) in rows[x].iter().enumerate() {
                ops += 1;
                if trecv[dst as usize] != -1 {
                    continue;
                }
                if best.is_none_or(|(_, _, b)| bytes > b) {
                    best = Some((z, dst, bytes));
                }
            }
            if let Some((z, dst, _)) = best {
                tsend[x] = dst as i32;
                trecv[dst as usize] = x as i32;
                rows[x].swap_remove(z);
                remaining -= 1;
            }
            x = (x + 1) % n;
        }
        phases.push(PartialPermutation::from_dests(
            tsend
                .iter()
                .map(|&v| (v >= 0).then_some(NodeId(v as u32)))
                .collect(),
        ));
    }

    let compress_ops = (n + width * n) as u64;
    Schedule::new(
        ScheduleKind::Phased,
        SchedulerKind::RsN,
        n,
        phases,
        ops,
        compress_ops,
    )
}

/// The largest message of each phase — the size that dictates the phase's
/// cost under the `tau + max(M)*phi` model.
pub fn phase_max_bytes(schedule: &Schedule, com: &CommMatrix) -> Vec<u32> {
    schedule
        .phases()
        .iter()
        .map(|pm| {
            pm.pairs()
                .map(|(s, d)| com.get(s.index(), d.index()))
                .max()
                .unwrap_or(0)
        })
        .collect()
}

/// Estimate a phased schedule's communication cost under a caller-supplied
/// per-phase cost function of the phase's largest message
/// (`tau + max(M)*phi` in the paper's model).
pub fn estimate_phased_cost(
    schedule: &Schedule,
    com: &CommMatrix,
    phase_cost: impl Fn(u32) -> u64,
) -> u64 {
    phase_max_bytes(schedule, com)
        .into_iter()
        .filter(|&m| m > 0)
        .map(phase_cost)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rs_n, validate_schedule};

    /// Bimodal traffic: a few huge messages among many small ones.
    fn bimodal(n: usize, d: usize, seed: u64) -> CommMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = CommMatrix::new(n);
        for i in 0..n {
            let mut placed = 0;
            while placed < d {
                let j = rng.random_range(0..n);
                if j != i && m.get(i, j) == 0 {
                    let bytes = if rng.random_range(0..8u32) == 0 {
                        131_072
                    } else {
                        256
                    };
                    m.set(i, j, bytes);
                    placed += 1;
                }
            }
        }
        m
    }

    fn model(max_bytes: u32) -> u64 {
        160_000 + max_bytes as u64 * 357
    }

    #[test]
    fn still_a_valid_schedule() {
        let com = bimodal(32, 6, 1);
        let s = rs_n_largest_first(&com, 1);
        validate_schedule(&com, &s).unwrap();
        for pm in s.phases() {
            assert!(pm.is_partial_permutation());
        }
    }

    #[test]
    fn beats_plain_rs_n_on_bimodal_traffic() {
        // Averaged over seeds, packing large messages together must reduce
        // the sum of per-phase maxima.
        let mut wins = 0;
        for seed in 0..10 {
            let com = bimodal(64, 12, seed);
            let plain = estimate_phased_cost(&rs_n(&com, seed), &com, model);
            let lf = estimate_phased_cost(&rs_n_largest_first(&com, seed), &com, model);
            if lf <= plain {
                wins += 1;
            }
        }
        assert!(wins >= 7, "largest-first won only {wins}/10 trials");
    }

    #[test]
    fn equals_rs_n_behaviour_on_uniform_traffic() {
        // With uniform sizes, largest-first degenerates to "any feasible",
        // so phase counts stay in the same ballpark.
        let mut com = CommMatrix::new(16);
        for i in 0..16 {
            for k in 1..=4 {
                com.set(i, (i + k) % 16, 512);
            }
        }
        let a = rs_n_largest_first(&com, 3);
        let b = rs_n(&com, 3);
        validate_schedule(&com, &a).unwrap();
        assert!(a.num_phases() <= b.num_phases() + 3);
    }

    #[test]
    fn phase_max_bytes_reports_maxima() {
        let mut com = CommMatrix::new(4);
        com.set(0, 1, 100);
        com.set(2, 3, 900);
        let s = rs_n(&com, 0);
        let maxima = phase_max_bytes(&s, &com);
        assert_eq!(maxima.iter().copied().max(), Some(900));
    }

    #[test]
    fn estimate_skips_empty_phases() {
        let com = CommMatrix::new(4);
        let s = rs_n(&com, 0);
        assert_eq!(estimate_phased_cost(&s, &com, model), 0);
    }
}
