//! The pluggable scheduler registry.
//!
//! Every scheduling algorithm in this crate — the paper's four, the
//! deterministic [`greedy`] baseline, and the [`RsOptions`] ablation
//! variants — is registered here as a [`Scheduler`] trait object. The
//! runtime, the repro binaries, and the benches enumerate the registry
//! instead of matching on a closed enum, so adding a scheduler is a
//! one-file change: implement the trait, add the entry to [`all`], and
//! every table, figure, and property test picks it up.
//!
//! # Example
//!
//! ```
//! use commsched::{registry, validate_schedule, CommMatrix};
//! use hypercube::Hypercube;
//!
//! let cube = Hypercube::new(4);
//! let mut com = CommMatrix::new(16);
//! com.set(0, 5, 1024);
//! for entry in registry::all() {
//!     let s = entry.schedule(&com, &cube, 7);
//!     validate_schedule(&com, &s).unwrap();
//!     if entry.link_contention_free() {
//!         assert!(s.link_contention_free(&cube));
//!     }
//! }
//! assert!(registry::find("GREEDY").is_some());
//! ```

use hypercube::Topology;

use crate::algorithms::{ac, greedy, lp, rs_n_with, rs_nl_with, RsOptions};
use crate::delta::{patch_lp, patch_phased};
use crate::{CommMatrix, MatrixDelta, Schedule, SchedulerKind};

/// A scheduling algorithm, as seen by the runtime and the repro harness.
///
/// Implementations must be deterministic functions of
/// `(matrix, topology, seed)`; seed-insensitive algorithms (AC, LP,
/// GREEDY) simply ignore the seed.
pub trait Scheduler: Sync {
    /// Unique label, used in tables, CSV/JSON records, and [`find`].
    fn name(&self) -> &str;

    /// The paper section describing the algorithm (variants name the
    /// section whose design choice they ablate; ad-hoc entries say what
    /// they are).
    fn paper_section(&self) -> &str;

    /// The algorithm family, for compat consumers keyed on the closed
    /// [`SchedulerKind`] enum (protocol defaults, record grouping).
    fn family(&self) -> SchedulerKind;

    /// Whether every produced schedule's phases are guaranteed
    /// link-contention-free on the scheduling topology.
    fn link_contention_free(&self) -> bool;

    /// Whether every phase is guaranteed a partial permutation (each node
    /// sends ≤ 1 and receives ≤ 1 message). False only for AC, which does
    /// not schedule at all.
    fn node_contention_free(&self) -> bool;

    /// True for the ablation variants (alternative [`RsOptions`]); false
    /// for the primary table columns (the paper's four plus GREEDY).
    fn is_variant(&self) -> bool {
        false
    }

    /// Stable per-entry index mixed into experiment base seeds so no two
    /// entries share sample streams. The paper's four algorithms keep the
    /// values of the old `SchedulerKind as u64` cast (0–3), which pins the
    /// historical sample sets of every reproduced table cell.
    fn ordinal(&self) -> u64;

    /// Whether the algorithm can schedule for `topo` with its registered
    /// guarantees intact. Entries answer honestly from the topology's
    /// [`hypercube::RoutingProperties`] report (`topo.routing()`): the RS
    /// families run on any deterministic-routing topology, while LP
    /// requires an e-cube-routed hypercube (the `i ^ k` pairing needs the
    /// power-of-two address space and its link-freedom argument is
    /// e-cube-specific). Enumeration-driven consumers skip entries that
    /// decline the topology at hand.
    fn supports_topology(&self, topo: &dyn Topology) -> bool {
        let _ = topo;
        true
    }

    /// Produce the schedule.
    fn schedule(&self, com: &CommMatrix, topo: &dyn Topology, seed: u64) -> Schedule;

    /// Patch `base` — a schedule this entry previously produced for some
    /// matrix on `topo` with `seed` — into a schedule of that matrix with
    /// `delta` applied, editing only the touched phases instead of
    /// recompiling. `None` means the entry cannot patch (no
    /// implementation, or the delta is inconsistent with `base`); callers
    /// fall back to a full [`Scheduler::schedule`].
    ///
    /// The contract is **validity, not reproduction**: a patched schedule
    /// must pass [`crate::validate_schedule`] against the patched matrix
    /// and uphold the entry's registered contention guarantees, but its
    /// phase placement and op counts may differ from a cold compile.
    /// Callers that gate on correctness (the cache layers, the daemon)
    /// re-validate every patched result and fall back on rejection.
    fn patch_schedule(
        &self,
        base: &Schedule,
        delta: &MatrixDelta,
        topo: &dyn Topology,
        seed: u64,
    ) -> Option<Schedule> {
        let _ = (base, delta, topo, seed);
        None
    }
}

struct Ac;

impl Scheduler for Ac {
    fn name(&self) -> &str {
        "AC"
    }
    fn paper_section(&self) -> &str {
        "3"
    }
    fn family(&self) -> SchedulerKind {
        SchedulerKind::Ac
    }
    fn link_contention_free(&self) -> bool {
        false
    }
    fn node_contention_free(&self) -> bool {
        false
    }
    fn ordinal(&self) -> u64 {
        0
    }
    fn schedule(&self, com: &CommMatrix, _topo: &dyn Topology, _seed: u64) -> Schedule {
        ac(com)
    }
}

struct Lp;

impl Scheduler for Lp {
    fn name(&self) -> &str {
        "LP"
    }
    fn paper_section(&self) -> &str {
        "4.1"
    }
    fn family(&self) -> SchedulerKind {
        SchedulerKind::Lp
    }
    fn link_contention_free(&self) -> bool {
        true
    }
    fn node_contention_free(&self) -> bool {
        true
    }
    fn ordinal(&self) -> u64 {
        1
    }
    fn supports_topology(&self, topo: &dyn Topology) -> bool {
        // LP's `i ^ k` pairing needs the full power-of-two address space,
        // and its link-freedom guarantee is an e-cube argument — the paper
        // defines LP on the hypercube only, so the entry declines
        // everything else (a mesh or torus with a power-of-two node count
        // would run, but with the registry's guarantee silently broken).
        topo.num_nodes().is_power_of_two() && topo.routing().ecube_hypercube
    }
    fn schedule(&self, com: &CommMatrix, _topo: &dyn Topology, _seed: u64) -> Schedule {
        lp(com)
    }
    fn patch_schedule(
        &self,
        base: &Schedule,
        delta: &MatrixDelta,
        _topo: &dyn Topology,
        _seed: u64,
    ) -> Option<Schedule> {
        // LP patches exactly: message `i -> j` lives in phase `(i^j)-1` by
        // construction, so the patched schedule is bit-identical to a cold
        // `lp` of the perturbed matrix.
        patch_lp(base, delta)
    }
}

/// An RS-family entry: RS_N or RS_NL under explicit [`RsOptions`]. The
/// canonical `RS_N`/`RS_NL` registrations use the paper's defaults; the
/// ablation variants toggle one design choice each.
struct Rs {
    name: &'static str,
    section: &'static str,
    /// [`SchedulerKind::RsN`] (node contention only) or
    /// [`SchedulerKind::RsNl`] (node + link contention).
    family: SchedulerKind,
    opts: RsOptions,
    variant: bool,
    ordinal: u64,
}

impl Scheduler for Rs {
    fn name(&self) -> &str {
        self.name
    }
    fn paper_section(&self) -> &str {
        self.section
    }
    fn family(&self) -> SchedulerKind {
        self.family
    }
    fn link_contention_free(&self) -> bool {
        self.family == SchedulerKind::RsNl
    }
    fn node_contention_free(&self) -> bool {
        true
    }
    fn is_variant(&self) -> bool {
        self.variant
    }
    fn ordinal(&self) -> u64 {
        self.ordinal
    }
    fn supports_topology(&self, topo: &dyn Topology) -> bool {
        // RS_N only resolves node contention and never routes; RS_NL
        // reserves links in its shadow PATHS table ahead of time, which
        // is sound exactly when the route is a pure function of the
        // endpoints. Torus and fat-tree qualify; an adaptive router
        // would not.
        !self.link_contention_free() || topo.routing().deterministic
    }
    fn schedule(&self, com: &CommMatrix, topo: &dyn Topology, seed: u64) -> Schedule {
        match self.family {
            SchedulerKind::RsN => rs_n_with(com, seed, self.opts),
            SchedulerKind::RsNl => rs_nl_with(com, topo, seed, self.opts),
            SchedulerKind::Ac | SchedulerKind::Lp => {
                unreachable!("Rs entries are registered only for the RS families")
            }
        }
    }
    fn patch_schedule(
        &self,
        base: &Schedule,
        delta: &MatrixDelta,
        topo: &dyn Topology,
        _seed: u64,
    ) -> Option<Schedule> {
        patch_phased(base, delta, topo, self.link_contention_free())
    }
}

struct Greedy;

impl Scheduler for Greedy {
    fn name(&self) -> &str {
        "GREEDY"
    }
    fn paper_section(&self) -> &str {
        "4.2 (ref. 15)"
    }
    fn family(&self) -> SchedulerKind {
        SchedulerKind::RsN
    }
    fn link_contention_free(&self) -> bool {
        false
    }
    fn node_contention_free(&self) -> bool {
        true
    }
    fn ordinal(&self) -> u64 {
        4
    }
    fn schedule(&self, com: &CommMatrix, _topo: &dyn Topology, _seed: u64) -> Schedule {
        greedy(com)
    }
    fn patch_schedule(
        &self,
        base: &Schedule,
        delta: &MatrixDelta,
        topo: &dyn Topology,
        _seed: u64,
    ) -> Option<Schedule> {
        patch_phased(base, delta, topo, false)
    }
}

static AC_ENTRY: Ac = Ac;
static LP_ENTRY: Lp = Lp;
static RS_N_ENTRY: Rs = Rs {
    name: "RS_N",
    section: "4.2",
    family: SchedulerKind::RsN,
    opts: RsOptions {
        randomize_rows: true,
        random_start: true,
        pairwise_preference: true,
    },
    variant: false,
    ordinal: 2,
};
static RS_NL_ENTRY: Rs = Rs {
    name: "RS_NL",
    section: "5",
    family: SchedulerKind::RsNl,
    opts: RsOptions {
        randomize_rows: true,
        random_start: true,
        pairwise_preference: true,
    },
    variant: false,
    ordinal: 3,
};
static GREEDY_ENTRY: Greedy = Greedy;
static RS_N_DET: Rs = Rs {
    name: "RS_N_DET",
    section: "4.2 (no randomization)",
    family: SchedulerKind::RsN,
    opts: RsOptions {
        randomize_rows: false,
        random_start: false,
        pairwise_preference: true,
    },
    variant: true,
    ordinal: 5,
};
static RS_NL_NOPAIR: Rs = Rs {
    name: "RS_NL_NOPAIR",
    section: "5 (no pairwise preference)",
    family: SchedulerKind::RsNl,
    opts: RsOptions {
        randomize_rows: true,
        random_start: true,
        pairwise_preference: false,
    },
    variant: true,
    ordinal: 6,
};
static RS_NL_DET: Rs = Rs {
    name: "RS_NL_DET",
    section: "5 (no randomization)",
    family: SchedulerKind::RsNl,
    opts: RsOptions {
        randomize_rows: false,
        random_start: false,
        pairwise_preference: true,
    },
    variant: true,
    ordinal: 7,
};

/// Primary entries first (the paper's column order, then GREEDY), ablation
/// variants after.
static REGISTRY: &[&dyn Scheduler] = &[
    &AC_ENTRY,
    &LP_ENTRY,
    &RS_N_ENTRY,
    &RS_NL_ENTRY,
    &GREEDY_ENTRY,
    &RS_N_DET,
    &RS_NL_NOPAIR,
    &RS_NL_DET,
];

/// Every registered scheduler: primary entries in paper column order, then
/// the ablation variants.
pub fn all() -> &'static [&'static dyn Scheduler] {
    REGISTRY
}

/// The primary table columns: the paper's four algorithms plus GREEDY.
pub fn primary() -> impl Iterator<Item = &'static dyn Scheduler> {
    REGISTRY.iter().copied().filter(|e| !e.is_variant())
}

/// The ablation variants (alternative [`RsOptions`] configurations).
pub fn variants() -> impl Iterator<Item = &'static dyn Scheduler> {
    REGISTRY.iter().copied().filter(|e| e.is_variant())
}

/// Look an entry up by its unique [`Scheduler::name`].
pub fn find(name: &str) -> Option<&'static dyn Scheduler> {
    REGISTRY.iter().copied().find(|e| e.name() == name)
}

/// An *explicit* (non-registry) scheduler built from a closure — the
/// escape hatch for experiment grids that compare configurations which
/// have no registry entry (a one-off variant, a prototype, a
/// parameterized sweep point).
///
/// Guarantee flags default to the family's canonical entry; override them
/// when the closure strengthens or weakens them. The ordinal defaults to
/// a 32-bit hash of the name — distinct names get distinct sample
/// streams with overwhelming probability while staying far from the
/// registry's small pinned ordinals, and [`AdHoc::with_ordinal`] pins
/// one exactly.
///
/// ```
/// use commsched::{registry::AdHoc, rs_n_with, RsOptions, SchedulerKind};
/// use commsched::Scheduler;
/// use hypercube::Hypercube;
///
/// let largest_first = AdHoc::new("RS_N_LF", SchedulerKind::RsN, |com, _topo, seed| {
///     rs_n_with(com, seed, RsOptions::default())
/// });
/// let com = {
///     let mut m = commsched::CommMatrix::new(8);
///     m.set(0, 3, 64);
///     m
/// };
/// let s = largest_first.schedule(&com, &Hypercube::new(3), 1);
/// assert_eq!(s.algorithm(), SchedulerKind::RsN);
/// ```
pub struct AdHoc {
    name: String,
    section: String,
    family: SchedulerKind,
    link_cf: bool,
    node_cf: bool,
    ordinal: u64,
    #[allow(clippy::type_complexity)]
    f: Box<dyn Fn(&CommMatrix, &dyn Topology, u64) -> Schedule + Send + Sync>,
}

impl AdHoc {
    /// A scheduler named `name` in `family`, scheduling via `f`.
    pub fn new(
        name: impl Into<String>,
        family: SchedulerKind,
        f: impl Fn(&CommMatrix, &dyn Topology, u64) -> Schedule + Send + Sync + 'static,
    ) -> Self {
        let name = name.into();
        let canonical = family.scheduler();
        AdHoc {
            section: format!("ad hoc ({name})"),
            family,
            link_cf: canonical.link_contention_free(),
            node_cf: canonical.node_contention_free(),
            ordinal: fnv1a(&name),
            name,
            f: Box::new(f),
        }
    }

    /// Override the guarantee flags (defaulted from the family entry).
    pub fn with_guarantees(
        mut self,
        link_contention_free: bool,
        node_contention_free: bool,
    ) -> Self {
        self.link_cf = link_contention_free;
        self.node_cf = node_contention_free;
        self
    }

    /// Pin the seed-stream ordinal (defaulted to a hash of the name).
    pub fn with_ordinal(mut self, ordinal: u64) -> Self {
        self.ordinal = ordinal;
        self
    }

    /// Override the descriptive section string.
    pub fn with_section(mut self, section: impl Into<String>) -> Self {
        self.section = section.into();
        self
    }
}

impl Scheduler for AdHoc {
    fn name(&self) -> &str {
        &self.name
    }
    fn paper_section(&self) -> &str {
        &self.section
    }
    fn family(&self) -> SchedulerKind {
        self.family
    }
    fn link_contention_free(&self) -> bool {
        self.link_cf
    }
    fn node_contention_free(&self) -> bool {
        self.node_cf
    }
    fn ordinal(&self) -> u64 {
        self.ordinal
    }
    fn schedule(&self, com: &CommMatrix, topo: &dyn Topology, seed: u64) -> Schedule {
        (self.f)(com, topo, seed)
    }
}

/// FNV-1a over the name bytes, folded to 32 bits: a stable,
/// dependency-free default ordinal for ad-hoc entries. Kept small so
/// downstream seed mixes (`base * 1_000_003`-style) stay well inside
/// `u64` headroom.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    (h >> 32) ^ (h & 0xffff_ffff)
}

impl SchedulerKind {
    /// The registry entry this enum value is a shim for — the canonical
    /// paper configuration of the family. Enum-keyed call sites stay
    /// source-compatible while all scheduling goes through the registry.
    pub fn scheduler(self) -> &'static dyn Scheduler {
        find(self.label()).expect("the four paper algorithms are always registered")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_schedule;
    use hypercube::{Hypercube, Mesh2d};

    fn sample_com(n: usize) -> CommMatrix {
        let mut com = CommMatrix::new(n);
        for i in 0..n {
            com.set(i, (i + 1) % n, 256);
            com.set(i, (i + 5) % n, 512);
        }
        com
    }

    #[test]
    fn names_are_unique_and_findable() {
        let mut names: Vec<&str> = all().iter().map(|e| e.name()).collect();
        names.sort_unstable();
        let mut deduped = names.clone();
        deduped.dedup();
        assert_eq!(names, deduped, "duplicate registry names");
        for e in all() {
            assert!(std::ptr::eq(find(e.name()).unwrap(), *e));
        }
        assert!(find("NO_SUCH").is_none());
    }

    #[test]
    fn ordinals_are_unique_and_pin_the_paper_four() {
        let mut ords: Vec<u64> = all().iter().map(|e| e.ordinal()).collect();
        ords.sort_unstable();
        let mut deduped = ords.clone();
        deduped.dedup();
        assert_eq!(ords, deduped, "duplicate ordinals");
        // The historical `SchedulerKind as u64` values must stay pinned so
        // reproduced cells keep their sample streams.
        for kind in SchedulerKind::all() {
            assert_eq!(kind.scheduler().ordinal(), kind as u64, "{}", kind.label());
        }
    }

    #[test]
    fn primary_has_five_columns_including_greedy() {
        let names: Vec<&str> = primary().map(|e| e.name()).collect();
        assert_eq!(names, ["AC", "LP", "RS_N", "RS_NL", "GREEDY"]);
        assert!(variants().count() >= 2);
    }

    #[test]
    fn kind_shim_matches_direct_functions() {
        let com = sample_com(16);
        let cube = Hypercube::new(4);
        assert_eq!(
            SchedulerKind::RsNl
                .scheduler()
                .schedule(&com, &cube, 9)
                .phases(),
            crate::rs_nl(&com, &cube, 9).phases()
        );
        assert_eq!(
            SchedulerKind::Lp
                .scheduler()
                .schedule(&com, &cube, 0)
                .phases(),
            crate::lp(&com).phases()
        );
    }

    #[test]
    fn every_entry_schedules_validly_on_the_cube() {
        let com = sample_com(16);
        let cube = Hypercube::new(4);
        for entry in all() {
            assert!(entry.supports_topology(&cube), "{}", entry.name());
            let s = entry.schedule(&com, &cube, 3);
            validate_schedule(&com, &s).unwrap_or_else(|e| panic!("{}: {e}", entry.name()));
            if entry.link_contention_free() {
                assert!(s.link_contention_free(&cube), "{}", entry.name());
            }
            if entry.node_contention_free() {
                for pm in s.phases() {
                    assert!(pm.is_partial_permutation(), "{}", entry.name());
                }
            }
            assert_eq!(s.algorithm(), entry.family(), "{}", entry.name());
        }
    }

    #[test]
    fn lp_declines_non_hypercube_topologies() {
        let mesh = Mesh2d::new(3, 4);
        assert!(!find("LP").unwrap().supports_topology(&mesh));
        // Even with a power-of-two node count a mesh is declined: LP's
        // link-freedom argument needs e-cube routing, not just `i ^ k`.
        assert!(!find("LP").unwrap().supports_topology(&Mesh2d::new(4, 8)));
        assert!(find("LP").unwrap().supports_topology(&Hypercube::new(5)));
        assert!(find("RS_NL").unwrap().supports_topology(&mesh));
        let com = sample_com(12);
        let s = find("RS_NL").unwrap().schedule(&com, &mesh, 1);
        assert!(s.link_contention_free(&mesh));
    }

    #[test]
    fn ad_hoc_entry_defaults_from_its_family() {
        let entry = AdHoc::new("MY_RS_NL", SchedulerKind::RsNl, |com, topo, seed| {
            crate::rs_nl(com, topo, seed)
        });
        assert_eq!(entry.name(), "MY_RS_NL");
        assert!(entry.link_contention_free());
        assert!(entry.node_contention_free());
        assert_eq!(entry.family(), SchedulerKind::RsNl);
        // Distinct names get distinct default ordinals; explicit pinning
        // and guarantee overrides stick.
        let other = AdHoc::new("OTHER", SchedulerKind::RsNl, |com, topo, seed| {
            crate::rs_nl(com, topo, seed)
        });
        assert_ne!(entry.ordinal(), other.ordinal());
        let pinned = other.with_ordinal(99).with_guarantees(false, true);
        assert_eq!(pinned.ordinal(), 99);
        assert!(!pinned.link_contention_free());
        // And it schedules like the function it wraps.
        let com = sample_com(16);
        let cube = Hypercube::new(4);
        let s = entry.schedule(&com, &cube, 7);
        assert_eq!(s.phases(), crate::rs_nl(&com, &cube, 7).phases());
        validate_schedule(&com, &s).unwrap();
    }

    #[test]
    fn variants_actually_differ_from_their_base() {
        let com = sample_com(64);
        let cube = Hypercube::new(6);
        for v in variants() {
            let base = v.family().scheduler();
            let a = v.schedule(&com, &cube, 11);
            let b = base.schedule(&com, &cube, 11);
            assert!(
                a.phases() != b.phases() || a.ops() != b.ops(),
                "{} is indistinguishable from {}",
                v.name(),
                base.name()
            );
        }
    }
}
