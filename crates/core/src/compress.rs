use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::CommMatrix;

/// The compressed communication matrix `CCOM` (Section 4.2).
///
/// The `n x n` matrix `COM` is sparse (each node sends at most `d << n`
/// messages), so scanning it per phase would cost `O(n^2)`. Compression
/// moves the active entries of each row into its first `deg(row)` slots of
/// an `n x d` table, improving a full scan to `O(dn)`.
///
/// Each row's entries are **randomly shuffled** — the paper requires this to
/// keep the expected number of receiver collisions bounded: without it the
/// active entries sit in ascending destination order and the early phases
/// pile node contention onto small node ids (reproduced by the
/// `randomization` ablation bench).
#[derive(Clone, Debug)]
pub struct CompressedMatrix {
    n: usize,
    width: usize,
    /// Row-major `n x width`; `-1` = empty slot, else a destination node id.
    slots: Vec<i32>,
    /// `prt[i]` = number of live entries remaining in row `i` (the paper's
    /// pointer vector, kept as a count: live entries occupy `0..prt[i]`).
    prt: Vec<usize>,
    /// Abstract operations spent compressing (for the cost model).
    ops: u64,
}

impl CompressedMatrix {
    /// Compress `com`, shuffling each row with the given seed.
    pub fn compress(com: &CommMatrix, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::compress_with(com, true, &mut rng)
    }

    /// Compression with the randomization toggle exposed (ablation: the
    /// paper explains why the shuffle is necessary; turning it off shows
    /// the node-contention clustering it prevents).
    pub fn compress_with(com: &CommMatrix, randomize: bool, rng: &mut StdRng) -> Self {
        let n = com.n();
        let width = (0..n).map(|i| com.out_degree(i)).max().unwrap_or(0).max(1);
        let mut slots = vec![-1i32; n * width];
        let mut prt = vec![0usize; n];
        let mut ops: u64 = 0;
        let mut row_buf: Vec<i32> = Vec::with_capacity(width);
        for i in 0..n {
            row_buf.clear();
            for (j, &bytes) in com.row(i).iter().enumerate() {
                ops += 1; // the compression scan touches every entry once
                if bytes > 0 {
                    row_buf.push(j as i32);
                }
            }
            if randomize {
                row_buf.shuffle(rng);
                ops += row_buf.len() as u64;
            }
            prt[i] = row_buf.len();
            slots[i * width..i * width + row_buf.len()].copy_from_slice(&row_buf);
        }
        CompressedMatrix {
            n,
            width,
            slots,
            prt,
            ops,
        }
    }

    /// Number of nodes (rows).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Table width (the maximum row degree, the paper's `d`).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Live entries remaining in row `i`.
    #[inline]
    pub fn remaining(&self, i: usize) -> usize {
        self.prt[i]
    }

    /// Total live entries across all rows.
    pub fn total_remaining(&self) -> usize {
        self.prt.iter().sum()
    }

    /// The live destinations of row `i` (slots `0..prt[i]`).
    #[inline]
    pub fn live_row(&self, i: usize) -> &[i32] {
        &self.slots[i * self.width..i * self.width + self.prt[i]]
    }

    /// Remove the live entry at slot `z` of row `i` (the paper's
    /// `CCOM(x,z) := CCOM(x,prt(x)); prt(x) -= 1` swap-delete).
    ///
    /// # Panics
    ///
    /// Panics if `z` is not a live slot.
    pub fn remove(&mut self, i: usize, z: usize) {
        let live = self.prt[i];
        assert!(z < live, "slot {z} of row {i} is not live (live = {live})");
        let base = i * self.width;
        self.slots[base + z] = self.slots[base + live - 1];
        self.slots[base + live - 1] = -1;
        self.prt[i] = live - 1;
    }

    /// Compression cost in abstract operations.
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CommMatrix {
        let mut m = CommMatrix::new(6);
        m.set(0, 1, 10);
        m.set(0, 3, 10);
        m.set(0, 5, 10);
        m.set(2, 4, 10);
        m.set(4, 0, 10);
        m.set(4, 2, 10);
        m
    }

    #[test]
    fn live_rows_hold_all_destinations() {
        let com = sample();
        let c = CompressedMatrix::compress(&com, 7);
        assert_eq!(c.n(), 6);
        assert_eq!(c.width(), 3);
        let mut row0: Vec<i32> = c.live_row(0).to_vec();
        row0.sort_unstable();
        assert_eq!(row0, vec![1, 3, 5]);
        assert_eq!(c.remaining(1), 0);
        assert_eq!(c.live_row(1), &[] as &[i32]);
        assert_eq!(c.total_remaining(), 6);
    }

    #[test]
    fn remove_swap_deletes() {
        let com = sample();
        let mut c = CompressedMatrix::compress(&com, 7);
        let before: Vec<i32> = c.live_row(0).to_vec();
        c.remove(0, 0);
        assert_eq!(c.remaining(0), 2);
        let after: Vec<i32> = c.live_row(0).to_vec();
        // The removed element is gone; the others survive.
        for v in &after {
            assert!(before.contains(v));
        }
        assert_eq!(after.len(), 2);
        c.remove(0, 1);
        c.remove(0, 0);
        assert_eq!(c.remaining(0), 0);
        assert_eq!(c.total_remaining(), 3);
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn remove_dead_slot_panics() {
        let com = sample();
        let mut c = CompressedMatrix::compress(&com, 7);
        c.remove(1, 0); // row 1 is empty
    }

    #[test]
    fn deterministic_for_seed() {
        let com = sample();
        let a = CompressedMatrix::compress(&com, 42);
        let b = CompressedMatrix::compress(&com, 42);
        assert_eq!(a.slots, b.slots);
    }

    #[test]
    fn unrandomized_rows_are_ascending() {
        let com = sample();
        let mut rng = StdRng::seed_from_u64(0);
        let c = CompressedMatrix::compress_with(&com, false, &mut rng);
        assert_eq!(c.live_row(0), &[1, 3, 5]);
        assert_eq!(c.live_row(4), &[0, 2]);
    }

    #[test]
    fn width_is_at_least_one_even_for_empty_matrices() {
        let com = CommMatrix::new(4);
        let c = CompressedMatrix::compress(&com, 0);
        assert_eq!(c.width(), 1);
        assert_eq!(c.total_remaining(), 0);
    }

    #[test]
    fn ops_scale_with_matrix_size() {
        let com = sample();
        let c = CompressedMatrix::compress(&com, 7);
        // At least one op per matrix entry.
        assert!(c.ops() >= 36);
    }
}
