use hypercube::NodeId;

/// The communication matrix `COM`.
///
/// `COM(i, j) = m > 0` means node `i` must send one `m`-byte message to node
/// `j`. The diagonal is forbidden (a node does not message itself through
/// the network). Row `i` is node `i`'s *send vector*; column `i` is its
/// *receive vector* (Section 2 of the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommMatrix {
    n: usize,
    /// Row-major `n * n` byte counts; 0 = no message.
    data: Vec<u32>,
}

impl CommMatrix {
    /// An empty matrix for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "matrix needs at least one node");
        CommMatrix {
            n,
            data: vec![0; n * n],
        }
    }

    /// Build from a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n * n` or any diagonal entry is non-zero.
    pub fn from_rows(n: usize, data: Vec<u32>) -> Self {
        assert_eq!(data.len(), n * n, "buffer size mismatch");
        for i in 0..n {
            assert_eq!(data[i * n + i], 0, "self-message at node {i}");
        }
        CommMatrix { n, data }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Message size from `src` to `dst` (0 = none).
    #[inline]
    pub fn get(&self, src: usize, dst: usize) -> u32 {
        self.data[src * self.n + dst]
    }

    /// Set the message size from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or `src == dst` with `bytes > 0`.
    pub fn set(&mut self, src: usize, dst: usize, bytes: u32) {
        assert!(src < self.n && dst < self.n, "node out of range");
        assert!(src != dst || bytes == 0, "self-message at node {src}");
        self.data[src * self.n + dst] = bytes;
    }

    /// Row `i` as a slice — node `i`'s send vector.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Iterate all messages as `(src, dst, bytes)`.
    pub fn messages(&self) -> impl Iterator<Item = (NodeId, NodeId, u32)> + '_ {
        (0..self.n).flat_map(move |i| {
            self.row(i)
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b > 0)
                .map(move |(j, &b)| (NodeId(i as u32), NodeId(j as u32), b))
        })
    }

    /// Total number of messages.
    pub fn message_count(&self) -> usize {
        self.data.iter().filter(|&&b| b > 0).count()
    }

    /// Total bytes over all messages.
    pub fn total_bytes(&self) -> u64 {
        self.data.iter().map(|&b| b as u64).sum()
    }

    /// Out-degree of node `i` (messages sent).
    pub fn out_degree(&self, i: usize) -> usize {
        self.row(i).iter().filter(|&&b| b > 0).count()
    }

    /// In-degree of node `j` (messages received).
    pub fn in_degree(&self, j: usize) -> usize {
        (0..self.n).filter(|&i| self.get(i, j) > 0).count()
    }

    /// The paper's *density* `d`: the maximum number of messages any node
    /// sends or receives. At least `d` permutations are needed to route
    /// everything (Assumption 3).
    pub fn density(&self) -> usize {
        (0..self.n)
            .map(|i| self.out_degree(i).max(self.in_degree(i)))
            .max()
            .unwrap_or(0)
    }

    /// The matrix under a node relabeling: `COM'(perm[i], perm[j]) =
    /// COM(i, j)`. With `perm` a topology automorphism the relabeled
    /// instance is isomorphic — same degrees, sizes, and (on the
    /// hypercube, for XOR translations) hop counts — which is what the
    /// metamorphic registry properties rely on.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn relabeled(&self, perm: &[NodeId]) -> CommMatrix {
        assert_eq!(perm.len(), self.n, "relabeling spans a different size");
        let mut seen = vec![false; self.n];
        for p in perm {
            assert!(
                !std::mem::replace(&mut seen[p.index()], true),
                "relabeling is not a permutation"
            );
        }
        let mut out = CommMatrix::new(self.n);
        for (src, dst, bytes) in self.messages() {
            out.set(perm[src.index()].index(), perm[dst.index()].index(), bytes);
        }
        out
    }

    /// Whether all messages share one size (the paper's experiments assume
    /// uniform sizes; [`crate::nonuniform`] lifts this).
    pub fn is_uniform(&self) -> bool {
        let mut sizes = self.data.iter().filter(|&&b| b > 0);
        match sizes.next() {
            None => true,
            Some(&first) => sizes.all(|&b| b == first),
        }
    }

    /// Whether the pattern is symmetric (`COM(i,j) > 0` iff `COM(j,i) > 0`);
    /// symmetric patterns let LP pair every message into an exchange.
    pub fn is_symmetric_pattern(&self) -> bool {
        (0..self.n).all(|i| (0..self.n).all(|j| (self.get(i, j) > 0) == (self.get(j, i) > 0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CommMatrix {
        let mut m = CommMatrix::new(4);
        m.set(0, 1, 100);
        m.set(0, 2, 100);
        m.set(1, 0, 50);
        m.set(3, 0, 100);
        m
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        CommMatrix::new(0);
    }

    #[test]
    #[should_panic(expected = "self-message")]
    fn diagonal_rejected() {
        let mut m = CommMatrix::new(4);
        m.set(2, 2, 1);
    }

    #[test]
    #[should_panic(expected = "self-message")]
    fn from_rows_rejects_diagonal() {
        CommMatrix::from_rows(2, vec![1, 0, 0, 0]);
    }

    #[test]
    fn zero_diagonal_set_is_allowed() {
        let mut m = CommMatrix::new(4);
        m.set(2, 2, 0); // a no-op, not an error
        assert_eq!(m.get(2, 2), 0);
    }

    #[test]
    fn degrees_and_density() {
        let m = sample();
        assert_eq!(m.out_degree(0), 2);
        assert_eq!(m.in_degree(0), 2);
        assert_eq!(m.out_degree(2), 0);
        assert_eq!(m.in_degree(2), 1);
        assert_eq!(m.density(), 2);
        assert_eq!(m.message_count(), 4);
        assert_eq!(m.total_bytes(), 350);
    }

    #[test]
    fn messages_iterator_matches_entries() {
        let m = sample();
        let msgs: Vec<_> = m.messages().collect();
        assert_eq!(msgs.len(), 4);
        assert!(msgs.contains(&(NodeId(1), NodeId(0), 50)));
    }

    #[test]
    fn uniformity() {
        let mut m = CommMatrix::new(3);
        assert!(m.is_uniform()); // vacuously
        m.set(0, 1, 10);
        m.set(1, 2, 10);
        assert!(m.is_uniform());
        m.set(2, 0, 20);
        assert!(!m.is_uniform());
    }

    #[test]
    fn symmetry() {
        let mut m = CommMatrix::new(3);
        m.set(0, 1, 10);
        assert!(!m.is_symmetric_pattern());
        m.set(1, 0, 99); // sizes may differ; the *pattern* is symmetric
        assert!(m.is_symmetric_pattern());
    }

    #[test]
    fn row_slices() {
        let m = sample();
        assert_eq!(m.row(0), &[0, 100, 100, 0]);
        assert_eq!(m.row(2), &[0, 0, 0, 0]);
    }
}
