use hypercube::{LinkId, NodeId, Topology};

/// The paper's `PATHS` array (Section 5): a shadow occupancy table over the
/// network's directed channels, used by RS_NL to reserve circuits during
/// scheduling so that no two transfers of one phase share a link.
///
/// Clearing between phases is O(1) via a generation stamp instead of
/// rewriting the table (the table has one slot per directed channel; on a
/// 64-node cube that is 384 slots cleared up to ~50 times per schedule).
#[derive(Clone, Debug)]
pub struct PathsTable {
    gen: u32,
    stamps: Vec<u32>,
    scratch: Vec<LinkId>,
}

impl PathsTable {
    /// A table sized for `topo`.
    pub fn new<T: Topology + ?Sized>(topo: &T) -> Self {
        PathsTable {
            gen: 1,
            stamps: vec![0; topo.link_count()],
            scratch: Vec::with_capacity(topo.diameter()),
        }
    }

    /// Release every reservation (start of a new phase).
    pub fn clear(&mut self) {
        self.gen += 1;
        if self.gen == 0 {
            // Stamp wrap-around (practically unreachable): hard reset.
            self.stamps.fill(0);
            self.gen = 1;
        }
    }

    /// The paper's `Check_Path(x, y)`: is the deterministic circuit from
    /// `src` to `dst` entirely unreserved in the current phase?
    ///
    /// Also adds the number of links inspected to `ops` (the scheduling
    /// cost model counts path checks as inner-loop work).
    pub fn check<T: Topology + ?Sized>(
        &mut self,
        topo: &T,
        src: NodeId,
        dst: NodeId,
        ops: &mut u64,
    ) -> bool {
        let mut scratch = std::mem::take(&mut self.scratch);
        topo.route_into(src, dst, &mut scratch);
        *ops += scratch.len() as u64;
        let free = scratch.iter().all(|l| self.stamps[l.index()] != self.gen);
        self.scratch = scratch;
        free
    }

    /// The paper's `Mark_Path(x, y)`: reserve every link of the circuit.
    pub fn mark<T: Topology + ?Sized>(&mut self, topo: &T, src: NodeId, dst: NodeId) {
        let mut scratch = std::mem::take(&mut self.scratch);
        topo.route_into(src, dst, &mut scratch);
        for l in &scratch {
            debug_assert_ne!(self.stamps[l.index()], self.gen, "marking a claimed link");
            self.stamps[l.index()] = self.gen;
        }
        self.scratch = scratch;
    }

    /// Check and, if free, atomically mark. Returns whether the circuit was
    /// reserved.
    pub fn try_claim<T: Topology + ?Sized>(
        &mut self,
        topo: &T,
        src: NodeId,
        dst: NodeId,
        ops: &mut u64,
    ) -> bool {
        if self.check(topo, src, dst, ops) {
            self.mark(topo, src, dst);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypercube::Hypercube;

    #[test]
    fn check_mark_conflict() {
        let cube = Hypercube::new(3);
        let mut t = PathsTable::new(&cube);
        let mut ops = 0;
        // 0->3 uses (0,d0),(1,d1); 1->7 uses (1,d1),(3,d2): conflict.
        assert!(t.check(&cube, NodeId(0), NodeId(3), &mut ops));
        t.mark(&cube, NodeId(0), NodeId(3));
        assert!(!t.check(&cube, NodeId(1), NodeId(7), &mut ops));
        // 4->6 uses (4,d1): free.
        assert!(t.check(&cube, NodeId(4), NodeId(6), &mut ops));
        assert!(ops > 0);
    }

    #[test]
    fn clear_releases_everything() {
        let cube = Hypercube::new(3);
        let mut t = PathsTable::new(&cube);
        let mut ops = 0;
        t.mark(&cube, NodeId(0), NodeId(7));
        assert!(!t.check(&cube, NodeId(0), NodeId(7), &mut ops));
        t.clear();
        assert!(t.check(&cube, NodeId(0), NodeId(7), &mut ops));
    }

    #[test]
    fn try_claim_is_atomic() {
        let cube = Hypercube::new(3);
        let mut t = PathsTable::new(&cube);
        let mut ops = 0;
        assert!(t.try_claim(&cube, NodeId(0), NodeId(3), &mut ops));
        assert!(!t.try_claim(&cube, NodeId(1), NodeId(7), &mut ops));
        // Reverse circuits never collide with forward ones (directed links).
        assert!(t.try_claim(&cube, NodeId(3), NodeId(0), &mut ops));
    }

    #[test]
    fn ops_count_links_inspected() {
        let cube = Hypercube::new(6);
        let mut t = PathsTable::new(&cube);
        let mut ops = 0;
        t.check(&cube, NodeId(0), NodeId(63), &mut ops);
        assert_eq!(ops, 6); // diameter-length path
    }
}
