//! Schedule-quality metrics: how full, how paired, and how route-heavy the
//! phases of a schedule are. These quantify the trade-offs Table 1 shows
//! in time units — e.g. LP's phases are fully paired but mostly empty at
//! low density, while RS_N's are dense but unpaired.

use hypercube::Topology;

use crate::{CommMatrix, Schedule};

/// Aggregate quality metrics of a phased schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleQuality {
    /// Number of phases.
    pub phases: usize,
    /// Total messages scheduled.
    pub messages: usize,
    /// Mean messages per phase divided by `n` (1.0 = every node sends in
    /// every phase).
    pub mean_fill: f64,
    /// Fill of the emptiest / fullest phase.
    pub min_fill: f64,
    /// Fill of the fullest phase.
    pub max_fill: f64,
    /// Fraction of messages that are half of a reciprocal (fusable) pair.
    pub pairing_rate: f64,
    /// Mean route length (hops) over all messages.
    pub mean_hops: f64,
    /// Number of phases that are link-contention-free on the measured
    /// topology.
    pub link_free_phases: usize,
}

impl ScheduleQuality {
    /// Measure `schedule` against the topology it will run on.
    pub fn measure<T: Topology + ?Sized>(schedule: &Schedule, topo: &T) -> Self {
        let n = schedule.n().max(1);
        let phases = schedule.phases();
        let mut messages = 0usize;
        let mut paired = 0usize;
        let mut hops_sum = 0usize;
        let mut min_fill = f64::INFINITY;
        let mut max_fill: f64 = 0.0;
        let mut link_free = 0usize;
        for pm in phases {
            let len = pm.len();
            messages += len;
            paired += 2 * pm.exchange_pairs();
            let fill = len as f64 / n as f64;
            min_fill = min_fill.min(fill);
            max_fill = max_fill.max(fill);
            for (s, d) in pm.pairs() {
                hops_sum += topo.hops(s, d);
            }
            if pm.is_link_free(topo) {
                link_free += 1;
            }
        }
        ScheduleQuality {
            phases: phases.len(),
            messages,
            mean_fill: if phases.is_empty() {
                0.0
            } else {
                messages as f64 / (phases.len() * n) as f64
            },
            min_fill: if phases.is_empty() { 0.0 } else { min_fill },
            max_fill,
            pairing_rate: if messages == 0 {
                0.0
            } else {
                paired as f64 / messages as f64
            },
            mean_hops: if messages == 0 {
                0.0
            } else {
                hops_sum as f64 / messages as f64
            },
            link_free_phases: link_free,
        }
    }
}

/// Lower bounds on the number of phases any node-contention-free schedule
/// needs for `com`: the density `d = max(in, out)` (paper assumption 3).
pub fn phase_lower_bound(com: &CommMatrix) -> usize {
    com.density()
}

/// A simple analytic estimate of a phased schedule's communication time
/// under the paper's `tau + M*phi` model with per-phase synchronization —
/// useful for quick what-if analysis without firing the simulator.
pub fn analytic_phase_cost(
    schedule: &Schedule,
    com: &CommMatrix,
    tau_ns: u64,
    phi_ns_per_byte: f64,
) -> u64 {
    schedule
        .phases()
        .iter()
        .map(|pm| {
            let max_bytes = pm
                .pairs()
                .map(|(s, d)| com.get(s.index(), d.index()))
                .max()
                .unwrap_or(0);
            if max_bytes == 0 {
                0
            } else {
                tau_ns + (max_bytes as f64 * phi_ns_per_byte) as u64
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lp, rs_n, rs_nl};
    use hypercube::Hypercube;

    fn symmetric(n: usize, w: usize) -> CommMatrix {
        let mut m = CommMatrix::new(n);
        for i in 0..n {
            for k in 1..=w {
                m.set(i, (i + k) % n, 1024);
                m.set((i + k) % n, i, 1024);
            }
        }
        m
    }

    #[test]
    fn lp_on_symmetric_traffic_is_fully_paired() {
        let cube = Hypercube::new(4);
        let com = symmetric(16, 2);
        let q = ScheduleQuality::measure(&lp(&com), &cube);
        assert_eq!(q.phases, 15);
        assert!((q.pairing_rate - 1.0).abs() < 1e-9);
        assert_eq!(q.link_free_phases, 15);
        assert!(q.mean_fill < 0.5, "LP fills few of its 15 phases at d=4");
    }

    #[test]
    fn rs_n_is_dense_but_rarely_link_free() {
        let cube = Hypercube::new(5);
        let com = symmetric(32, 4);
        let q = ScheduleQuality::measure(&rs_n(&com, 3), &cube);
        assert!(q.mean_fill > 0.6, "RS_N packs its phases: {}", q.mean_fill);
        let q_nl = ScheduleQuality::measure(&rs_nl(&com, &cube, 3), &cube);
        assert_eq!(q_nl.link_free_phases, q_nl.phases);
        assert!(q_nl.pairing_rate > q.pairing_rate);
    }

    #[test]
    fn lower_bound_is_density() {
        let com = symmetric(16, 3);
        assert_eq!(phase_lower_bound(&com), 6);
    }

    #[test]
    fn analytic_cost_tracks_phase_count_and_size() {
        let com = symmetric(16, 2);
        let s = rs_n(&com, 1);
        let cheap = analytic_phase_cost(&s, &com, 100_000, 357.0);
        // tau + M*phi per phase:
        let per_phase = 100_000 + (1024.0 * 357.0) as u64;
        assert_eq!(cheap, per_phase * s.num_phases() as u64);
    }

    #[test]
    fn empty_schedule_quality_is_zeroed() {
        let cube = Hypercube::new(3);
        let com = CommMatrix::new(8);
        let q = ScheduleQuality::measure(&rs_n(&com, 0), &cube);
        assert_eq!(q.phases, 0);
        assert_eq!(q.messages, 0);
        assert_eq!(q.mean_fill, 0.0);
        assert_eq!(q.pairing_rate, 0.0);
    }
}
