use hypercube::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::algorithms::rs_n::permutation_from;
use crate::algorithms::RsOptions;
use crate::{
    CommMatrix, CompressedMatrix, PartialPermutation, PathsTable, Schedule, ScheduleKind,
    SchedulerKind,
};

/// Randomized scheduling avoiding node **and link** contention — `RS_NL`
/// (Section 5, Figure 4).
///
/// Extends [`crate::rs_n`] with the `PATHS` reservation table: a candidate
/// destination is admitted to a phase only if the deterministic circuit to
/// it (`Check_Path`) is disjoint from every circuit already reserved this
/// phase, after which the circuit is claimed (`Mark_Path`). The resulting
/// phases are link-contention-free by construction on any deterministic
/// topology — hypercube or mesh.
///
/// Additionally, per the paper, candidates that complete a **reciprocal
/// pair** get priority (step 3(c)i): if row `x` holds a live message to `y`
/// while `y` holds one to `x`, and both circuits are free, both are placed
/// in the same phase so the runtime can fuse them into one concurrent
/// pairwise exchange — the iPSC/860's cheap bidirectional mode.
///
/// Costs roughly 3x the scheduling operations of RS_N (path checks walk up
/// to `log n` links per candidate), the trade-off quantified by the paper's
/// Figures 10 and 11.
pub fn rs_nl<T: Topology + ?Sized>(com: &CommMatrix, topo: &T, seed: u64) -> Schedule {
    rs_nl_with(com, topo, seed, RsOptions::default())
}

/// [`rs_nl`] with explicit [`RsOptions`] (ablations).
pub fn rs_nl_with<T: Topology + ?Sized>(
    com: &CommMatrix,
    topo: &T,
    seed: u64,
    opts: RsOptions,
) -> Schedule {
    let n = com.n();
    assert_eq!(
        topo.num_nodes(),
        n,
        "matrix is {n} nodes but topology has {}",
        topo.num_nodes()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ccom = CompressedMatrix::compress_with(com, opts.randomize_rows, &mut rng);
    let mut paths = PathsTable::new(topo);
    // pending[s*n + d] = message s->d not yet scheduled; gives the pairwise
    // pass an O(1) "does y still owe x a message?" lookup instead of a row
    // scan (each node can maintain this bitmap of its own column for free
    // while building CCOM, so one op per probe is the honest cost).
    let mut pending = vec![false; n * n];
    for (s, d, _) in com.messages() {
        pending[s.index() * n + d.index()] = true;
    }
    let mut ops: u64 = 0;
    let mut phases: Vec<PartialPermutation> = Vec::new();
    let mut tsend: Vec<i32> = vec![-1; n];
    let mut trecv: Vec<i32> = vec![-1; n];
    let mut remaining = ccom.total_remaining();

    while remaining > 0 {
        tsend.fill(-1);
        trecv.fill(-1);
        paths.clear();
        ops += n as u64;
        let start = if opts.random_start {
            rng.random_range(0..n)
        } else {
            0
        };
        let mut x = start;
        for _ in 0..n {
            ops += 1;
            // A row may already have been scheduled this phase as the far
            // side of a reciprocal pair.
            if tsend[x] != -1 {
                x = (x + 1) % n;
                continue;
            }
            let mut placed = false;
            // Pass 1 (pairwise preference): find y with a live reverse
            // message y -> x, both endpoints free, both circuits free.
            if opts.pairwise_preference && trecv[x] == -1 {
                let mut candidate: Option<(usize, i32)> = None;
                for (z, &y) in ccom.live_row(x).iter().enumerate() {
                    ops += 1;
                    let yu = y as usize;
                    if trecv[yu] != -1 || tsend[yu] != -1 {
                        continue;
                    }
                    // Does y still owe a message to x?
                    ops += 1;
                    if !pending[yu * n + x] {
                        continue;
                    }
                    if paths.check(topo, NodeId(x as u32), NodeId(y as u32), &mut ops)
                        && paths.check(topo, NodeId(y as u32), NodeId(x as u32), &mut ops)
                    {
                        candidate = Some((z, y));
                        break;
                    }
                }
                if let Some((z, y)) = candidate {
                    let yu = y as usize;
                    tsend[x] = y;
                    trecv[yu] = x as i32;
                    tsend[yu] = x as i32;
                    trecv[x] = y;
                    paths.mark(topo, NodeId(x as u32), NodeId(y as u32));
                    paths.mark(topo, NodeId(y as u32), NodeId(x as u32));
                    ccom.remove(x, z);
                    let z2 = ccom
                        .live_row(yu)
                        .iter()
                        .position(|&w| w as usize == x)
                        .expect("reverse message verified live");
                    ccom.remove(yu, z2);
                    pending[x * n + yu] = false;
                    pending[yu * n + x] = false;
                    remaining -= 2;
                    placed = true;
                }
            }
            // Pass 2: the plain RS_N scan with the Check_Path condition.
            if !placed {
                let mut candidate: Option<(usize, i32)> = None;
                for (z, &y) in ccom.live_row(x).iter().enumerate() {
                    ops += 1;
                    if trecv[y as usize] != -1 {
                        continue;
                    }
                    if paths.check(topo, NodeId(x as u32), NodeId(y as u32), &mut ops) {
                        candidate = Some((z, y));
                        break;
                    }
                }
                if let Some((z, y)) = candidate {
                    tsend[x] = y;
                    trecv[y as usize] = x as i32;
                    paths.mark(topo, NodeId(x as u32), NodeId(y as u32));
                    ccom.remove(x, z);
                    pending[x * n + y as usize] = false;
                    remaining -= 1;
                }
            }
            x = (x + 1) % n;
        }
        phases.push(permutation_from(&tsend));
    }

    let compress_ops = (n + ccom.width() * n) as u64;
    Schedule::new(
        ScheduleKind::Phased,
        SchedulerKind::RsNl,
        n,
        phases,
        ops,
        compress_ops,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_schedule;
    use hypercube::{Hypercube, Mesh2d};

    fn shift_pattern(n: usize, d: usize, bytes: u32) -> CommMatrix {
        let mut m = CommMatrix::new(n);
        for i in 0..n {
            for k in 1..=d {
                m.set(i, (i + k) % n, bytes);
            }
        }
        m
    }

    /// A symmetric pattern: i <-> i+k for k in 1..=d/2.
    fn symmetric_pattern(n: usize, half_d: usize, bytes: u32) -> CommMatrix {
        let mut m = CommMatrix::new(n);
        for i in 0..n {
            for k in 1..=half_d {
                m.set(i, (i + k) % n, bytes);
                m.set((i + k) % n, i, bytes);
            }
        }
        m
    }

    #[test]
    fn schedules_everything_and_is_link_free() {
        let cube = Hypercube::new(5);
        let com = shift_pattern(32, 6, 100);
        let s = rs_nl(&com, &cube, 11);
        validate_schedule(&com, &s).unwrap();
        assert!(s.link_contention_free(&cube));
    }

    #[test]
    fn works_on_meshes_too() {
        // The generality claim of Section 5: RS_NL only needs deterministic
        // routing, so it runs unchanged on a mesh.
        let mesh = Mesh2d::new(4, 8);
        let com = shift_pattern(32, 5, 64);
        let s = rs_nl(&com, &mesh, 2);
        validate_schedule(&com, &s).unwrap();
        assert!(s.link_contention_free(&mesh));
    }

    #[test]
    fn pairwise_preference_creates_exchanges() {
        let cube = Hypercube::new(5);
        let com = symmetric_pattern(32, 3, 128);
        let with = rs_nl_with(&com, &cube, 9, RsOptions::default());
        let without = rs_nl_with(
            &com,
            &cube,
            9,
            RsOptions {
                pairwise_preference: false,
                ..RsOptions::default()
            },
        );
        validate_schedule(&com, &with).unwrap();
        validate_schedule(&com, &without).unwrap();
        assert!(
            with.exchange_pairs() > without.exchange_pairs(),
            "{} vs {}",
            with.exchange_pairs(),
            without.exchange_pairs()
        );
        // On a symmetric pattern the preference should pair most messages.
        assert!(with.exchange_pairs() * 2 >= com.message_count() / 2);
    }

    #[test]
    fn needs_more_phases_than_rs_n() {
        // Link avoidance can only delay messages relative to RS_N.
        let cube = Hypercube::new(6);
        let com = shift_pattern(64, 16, 100);
        let nl = rs_nl(&com, &cube, 4);
        let n_only = crate::rs_n(&com, 4);
        assert!(nl.num_phases() + 2 >= n_only.num_phases());
        validate_schedule(&com, &nl).unwrap();
    }

    #[test]
    fn costs_more_ops_than_rs_n() {
        let cube = Hypercube::new(6);
        let com = shift_pattern(64, 16, 100);
        let nl = rs_nl(&com, &cube, 4);
        let n_only = crate::rs_n(&com, 4);
        assert!(
            nl.ops() > 2 * n_only.ops(),
            "RS_NL {} vs RS_N {}",
            nl.ops(),
            n_only.ops()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cube = Hypercube::new(5);
        let com = shift_pattern(32, 6, 100);
        assert_eq!(
            rs_nl(&com, &cube, 3).phases(),
            rs_nl(&com, &cube, 3).phases()
        );
    }

    #[test]
    #[should_panic(expected = "topology has")]
    fn topology_size_mismatch_panics() {
        let cube = Hypercube::new(3);
        let com = CommMatrix::new(16);
        rs_nl(&com, &cube, 0);
    }

    #[test]
    fn empty_matrix() {
        let cube = Hypercube::new(4);
        let com = CommMatrix::new(16);
        let s = rs_nl(&com, &cube, 0);
        assert_eq!(s.num_phases(), 0);
    }

    #[test]
    fn dense_all_to_all_completes() {
        let cube = Hypercube::new(4);
        let n = 16;
        let mut com = CommMatrix::new(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    com.set(i, j, 8);
                }
            }
        }
        let s = rs_nl(&com, &cube, 21);
        validate_schedule(&com, &s).unwrap();
        assert!(s.link_contention_free(&cube));
        // All-to-all needs at least n-1 phases.
        assert!(s.num_phases() >= n - 1);
    }
}
