use hypercube::NodeId;

use crate::{CommMatrix, PartialPermutation, Schedule, ScheduleKind, SchedulerKind};

/// Deterministic greedy scheduling avoiding node contention — the
/// deterministic counterpart of RS_N from the thesis the paper references
/// (reference 15 of the paper, Wang 1993).
///
/// Instead of randomizing, each phase is built by scanning senders in order
/// of **most remaining messages first** and giving each the destination with
/// the highest remaining in-degree among its feasible targets. This
/// critical-path heuristic needs no random bits (reproducible schedules
/// without a seed) at the cost of `O(n log n)` sorting per phase; on skewed
/// (power-law, hot-spot) traffic it tracks the `max(in, out)` lower bound
/// more tightly than RS_N's random sweep.
///
/// The resulting schedule is node-contention-free like RS_N; it makes no
/// link-contention guarantee.
pub fn greedy(com: &CommMatrix) -> Schedule {
    let n = com.n();
    // Remaining adjacency as mutable degree-tracked lists.
    let mut out_deg: Vec<usize> = (0..n).map(|i| com.out_degree(i)).collect();
    let mut in_deg: Vec<usize> = (0..n).map(|j| com.in_degree(j)).collect();
    let mut remaining: Vec<Vec<u32>> = (0..n)
        .map(|i| {
            com.row(i)
                .iter()
                .enumerate()
                .filter_map(|(j, &b)| (b > 0).then_some(j as u32))
                .collect()
        })
        .collect();
    let mut left: usize = out_deg.iter().sum();
    let mut ops: u64 = 0;
    let mut phases = Vec::new();
    let mut order: Vec<usize> = (0..n).collect();
    let mut trecv: Vec<bool> = vec![false; n];

    while left > 0 {
        trecv.fill(false);
        ops += n as u64;
        // Busiest senders first.
        order.sort_unstable_by(|&a, &b| out_deg[b].cmp(&out_deg[a]).then(a.cmp(&b)));
        ops += n as u64; // sorting charged linearly; comparisons dominate elsewhere
        let mut pm = PartialPermutation::empty(n);
        for &x in &order {
            ops += 1;
            if out_deg[x] == 0 {
                break; // sorted: nobody after x has messages either
            }
            // Feasible destination with the highest remaining in-degree.
            let mut best: Option<(usize, u32)> = None; // (slot, dst)
            for (z, &y) in remaining[x].iter().enumerate() {
                ops += 1;
                if trecv[y as usize] {
                    continue;
                }
                if best.is_none_or(|(_, b)| in_deg[y as usize] > in_deg[b as usize]) {
                    best = Some((z, y));
                }
            }
            if let Some((z, y)) = best {
                pm.assign(NodeId(x as u32), NodeId(y));
                trecv[y as usize] = true;
                remaining[x].swap_remove(z);
                out_deg[x] -= 1;
                in_deg[y as usize] -= 1;
                left -= 1;
            }
        }
        phases.push(pm);
    }

    Schedule::new(
        ScheduleKind::Phased,
        SchedulerKind::RsN, // reported under the RS_N family in records
        n,
        phases,
        ops,
        (n + com.density() * n) as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rs_n, validate_schedule};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_com(n: usize, d: usize, seed: u64) -> CommMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = CommMatrix::new(n);
        for i in 0..n {
            let mut placed = 0;
            while placed < d {
                let j = rng.random_range(0..n);
                if j != i && m.get(i, j) == 0 {
                    m.set(i, j, 512);
                    placed += 1;
                }
            }
        }
        m
    }

    #[test]
    fn greedy_is_valid_and_contention_free() {
        let com = random_com(32, 6, 5);
        let s = greedy(&com);
        validate_schedule(&com, &s).unwrap();
        for pm in s.phases() {
            assert!(pm.is_partial_permutation());
        }
    }

    #[test]
    fn greedy_is_deterministic_without_a_seed() {
        let com = random_com(32, 6, 5);
        assert_eq!(greedy(&com).phases(), greedy(&com).phases());
    }

    #[test]
    fn greedy_meets_density_floor() {
        let com = random_com(64, 8, 1);
        let s = greedy(&com);
        assert!(s.num_phases() >= com.density());
    }

    #[test]
    fn greedy_tracks_lower_bound_on_hotspots() {
        // One hot receiver with in-degree 31 plus background: the bound is
        // 31 phases; greedy should get within a few, and beat or match
        // RS_N's phase count on average for skewed traffic.
        let mut com = CommMatrix::new(32);
        for i in 1..32 {
            com.set(i, 0, 64);
            com.set(i, i % 7 + 1, 64);
        }
        let g = greedy(&com);
        validate_schedule(&com, &g).unwrap();
        assert!(g.num_phases() >= 31);
        assert!(
            g.num_phases() <= 34,
            "greedy used {} phases for a 31-deep hotspot",
            g.num_phases()
        );
        let r = rs_n(&com, 2);
        assert!(g.num_phases() <= r.num_phases() + 1);
    }

    #[test]
    fn empty_matrix() {
        let s = greedy(&CommMatrix::new(8));
        assert_eq!(s.num_phases(), 0);
    }
}
