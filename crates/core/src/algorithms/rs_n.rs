use hypercube::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::algorithms::RsOptions;
use crate::{
    CommMatrix, CompressedMatrix, PartialPermutation, Schedule, ScheduleKind, SchedulerKind,
};

/// Randomized scheduling avoiding node contention — `RS_N`
/// (Section 4.2, Figure 3).
///
/// The algorithm repeatedly builds a partial permutation: starting from a
/// random row `x`, it sweeps all `n` rows (cyclically); for each row it
/// takes the first live `CCOM` entry whose destination is still free this
/// phase (`Trecv[y] = -1`), claims the pair in `Tsend`/`Trecv`, and
/// swap-deletes the entry. Sweeping continues until every message of the
/// matrix has been placed in some phase.
///
/// Expected behaviour proven in the paper (and asserted by this crate's
/// property tests): ~`d + log d` phases for density-`d` random traffic, and
/// `O(n ln d + n)` work per phase.
///
/// `seed` drives both the row shuffling of the compression step and the
/// per-phase starting row; schedules are deterministic given
/// `(matrix, seed)`.
pub fn rs_n(com: &CommMatrix, seed: u64) -> Schedule {
    rs_n_with(com, seed, RsOptions::default())
}

/// [`rs_n`] with explicit [`RsOptions`] (ablations).
pub fn rs_n_with(com: &CommMatrix, seed: u64, opts: RsOptions) -> Schedule {
    let n = com.n();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ccom = CompressedMatrix::compress_with(com, opts.randomize_rows, &mut rng);
    let mut ops: u64 = 0;
    let mut phases: Vec<PartialPermutation> = Vec::new();
    let mut tsend: Vec<i32> = vec![-1; n];
    let mut trecv: Vec<i32> = vec![-1; n];
    let mut remaining = ccom.total_remaining();

    while remaining > 0 {
        tsend.fill(-1);
        trecv.fill(-1);
        ops += n as u64; // per-phase Tsend/Trecv initialization
        let start = if opts.random_start {
            rng.random_range(0..n)
        } else {
            0
        };
        let mut x = start;
        for _ in 0..n {
            ops += 1; // visiting row x
            let mut chosen: Option<(usize, i32)> = None;
            for (z, &y) in ccom.live_row(x).iter().enumerate() {
                ops += 1; // scanning one CCOM slot
                if trecv[y as usize] == -1 {
                    chosen = Some((z, y));
                    break;
                }
            }
            if let Some((z, y)) = chosen {
                tsend[x] = y;
                trecv[y as usize] = x as i32;
                ccom.remove(x, z);
                remaining -= 1;
            }
            x = (x + 1) % n;
        }
        phases.push(permutation_from(&tsend));
    }

    // The compression cost reported to the cost model is the paper's
    // *parallel runtime* figure O(dn + tau*log n) per processor: each node
    // compacts its own row (n slots) and receives the concatenated n*d
    // table. The sequential count lives on `CompressedMatrix::ops`.
    let compress_ops = (n + ccom.width() * n) as u64;
    Schedule::new(
        ScheduleKind::Phased,
        SchedulerKind::RsN,
        n,
        phases,
        ops,
        compress_ops,
    )
}

pub(crate) fn permutation_from(tsend: &[i32]) -> PartialPermutation {
    PartialPermutation::from_dests(
        tsend
            .iter()
            .map(|&v| (v >= 0).then_some(NodeId(v as u32)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_schedule;

    /// Every node sends to the `d` nodes after it (a d-regular pattern).
    fn shift_pattern(n: usize, d: usize, bytes: u32) -> CommMatrix {
        let mut m = CommMatrix::new(n);
        for i in 0..n {
            for k in 1..=d {
                m.set(i, (i + k) % n, bytes);
            }
        }
        m
    }

    #[test]
    fn schedules_everything_exactly_once() {
        let com = shift_pattern(16, 5, 100);
        let s = rs_n(&com, 99);
        validate_schedule(&com, &s).unwrap();
        assert_eq!(s.message_count(), 16 * 5);
    }

    #[test]
    fn phases_are_partial_permutations() {
        let com = shift_pattern(32, 7, 100);
        let s = rs_n(&com, 1);
        for pm in s.phases() {
            assert!(pm.is_partial_permutation());
        }
    }

    #[test]
    fn phase_count_near_density() {
        // The paper: #phases upper-bounded by roughly d + log d for random
        // traffic. The shift pattern is d-regular, so d is a hard floor.
        let d = 8;
        let com = shift_pattern(64, d, 100);
        let s = rs_n(&com, 5);
        assert!(s.num_phases() >= d);
        assert!(
            s.num_phases() <= d + 8,
            "too many phases: {}",
            s.num_phases()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let com = shift_pattern(32, 6, 100);
        let a = rs_n(&com, 7);
        let b = rs_n(&com, 7);
        assert_eq!(a.phases(), b.phases());
        assert_eq!(a.ops(), b.ops());
        let c = rs_n(&com, 8);
        // Different seed almost surely gives a different schedule.
        assert_ne!(a.phases(), c.phases());
    }

    #[test]
    fn empty_matrix_needs_no_phases() {
        let com = CommMatrix::new(8);
        let s = rs_n(&com, 0);
        assert_eq!(s.num_phases(), 0);
        validate_schedule(&com, &s).unwrap();
    }

    #[test]
    fn single_message() {
        let mut com = CommMatrix::new(8);
        com.set(3, 5, 42);
        let s = rs_n(&com, 0);
        assert_eq!(s.num_phases(), 1);
        assert_eq!(s.phases()[0].dest(3), Some(NodeId(5)));
        validate_schedule(&com, &s).unwrap();
    }

    #[test]
    fn hotspot_receiver_serializes_across_phases() {
        // Seven senders to one receiver: node contention forces one phase
        // per message no matter what.
        let mut com = CommMatrix::new(8);
        for i in 1..8 {
            com.set(i, 0, 10);
        }
        let s = rs_n(&com, 3);
        assert_eq!(s.num_phases(), 7);
        validate_schedule(&com, &s).unwrap();
    }

    #[test]
    fn no_randomization_still_correct_but_clusters() {
        let com = shift_pattern(64, 8, 100);
        let opts = RsOptions {
            randomize_rows: false,
            random_start: false,
            ..RsOptions::default()
        };
        let s = rs_n_with(&com, 0, opts);
        validate_schedule(&com, &s).unwrap();
        for pm in s.phases() {
            assert!(pm.is_partial_permutation());
        }
    }

    #[test]
    fn ops_grow_with_density() {
        let lo = rs_n(&shift_pattern(64, 4, 10), 0);
        let hi = rs_n(&shift_pattern(64, 32, 10), 0);
        assert!(hi.ops() > lo.ops() * 3);
    }
}
