//! The four scheduling algorithms of the paper.

mod ac;
mod greedy;
mod lp;
mod rs_n;
mod rs_nl;

pub use ac::ac;
pub use greedy::greedy;
pub use lp::lp;
pub use rs_n::{rs_n, rs_n_with};
pub use rs_nl::{rs_nl, rs_nl_with};

/// Tuning knobs shared by the randomized schedulers; the defaults are the
/// paper's configuration, the toggles exist for the ablation benches.
#[derive(Clone, Copy, Debug)]
pub struct RsOptions {
    /// Shuffle the live entries within each `CCOM` row (Section 4.2: "this
    /// is necessary to reduce collisions"). Off = the ablation showing node
    /// contention clustering on small ids.
    pub randomize_rows: bool,
    /// Start each phase's row sweep at a random row (`x = random(0..n-1)`
    /// in Figures 3 and 4). Off = always start at row 0.
    pub random_start: bool,
    /// RS_NL only: prefer candidates that complete a reciprocal pair, so
    /// the runtime can fuse them into concurrent pairwise exchanges
    /// (Section 5, step 3(c)i).
    pub pairwise_preference: bool,
}

impl Default for RsOptions {
    fn default() -> Self {
        RsOptions {
            randomize_rows: true,
            random_start: true,
            pairwise_preference: true,
        }
    }
}
