use crate::{CommMatrix, Schedule, ScheduleKind, SchedulerKind};

/// Asynchronous communication (Section 3).
///
/// AC performs no scheduling at all: the runtime layer makes every node
/// pre-post its receives, blast all its sends, and confirm arrivals. The
/// returned [`Schedule`] therefore has [`ScheduleKind::Async`], no phases,
/// and zero scheduling cost — its value is that the same
/// `(matrix, schedule)` pipeline runs all four algorithms uniformly.
///
/// # Example
///
/// ```
/// use commsched::{ac, CommMatrix, ScheduleKind};
///
/// let mut com = CommMatrix::new(8);
/// com.set(1, 2, 512);
/// let s = ac(&com);
/// assert_eq!(s.kind(), ScheduleKind::Async);
/// assert_eq!(s.num_phases(), 0);
/// assert_eq!(s.ops(), 0);
/// ```
pub fn ac(com: &CommMatrix) -> Schedule {
    Schedule::new(
        ScheduleKind::Async,
        SchedulerKind::Ac,
        com.n(),
        Vec::new(),
        0,
        0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_schedule;

    #[test]
    fn ac_is_schedule_free() {
        let mut com = CommMatrix::new(4);
        com.set(0, 1, 10);
        com.set(2, 3, 10);
        let s = ac(&com);
        assert_eq!(s.kind(), ScheduleKind::Async);
        assert_eq!(s.algorithm(), SchedulerKind::Ac);
        assert_eq!(s.num_phases(), 0);
        validate_schedule(&com, &s).unwrap();
    }
}
