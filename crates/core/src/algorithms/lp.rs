use hypercube::NodeId;

use crate::{CommMatrix, PartialPermutation, Schedule, ScheduleKind, SchedulerKind};

/// Linear permutation scheduling (Section 4.1, Figure 2).
///
/// Phase `k` (for `k = 1 .. n-1`) is the XOR permutation `i -> i ^ k`,
/// restricted to the pairs that actually have a message (`COM(i, i^k) > 0`).
/// Properties the paper exploits:
///
/// * every phase is **link-contention-free** under e-cube routing on the
///   hypercube (verified by property tests),
/// * `i` and `i ^ k` are mutual partners, so whenever traffic flows both
///   ways the runtime fuses it into a concurrent **pairwise exchange**,
/// * the schedule always has exactly `n - 1` phases — wasteful for small
///   densities, unbeatable for large ones.
///
/// The reported op count is the *per-processor* cost of the paper's runtime
/// model: each node walks its own row once (`n - 1` iterations of constant
/// work), which is why LP's scheduling cost in Table 1 is negligible.
///
/// # Panics
///
/// Panics if `com.n()` is not a power of two: LP's `i ^ k` pairing needs
/// the full hypercube address space.
pub fn lp(com: &CommMatrix) -> Schedule {
    let n = com.n();
    assert!(
        n.is_power_of_two(),
        "LP requires a power-of-two node count, got {n}"
    );
    let mut phases = Vec::with_capacity(n - 1);
    let mut ops: u64 = 0;
    for k in 1..n {
        let mut pm = PartialPermutation::empty(n);
        for i in 0..n {
            let j = i ^ k;
            if com.get(i, j) > 0 {
                pm.assign(NodeId(i as u32), NodeId(j as u32));
            }
        }
        // Per-processor cost: one iteration of Figure 2's loop.
        ops += 1;
        phases.push(pm);
    }
    Schedule::new(ScheduleKind::Phased, SchedulerKind::Lp, n, phases, ops, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_schedule;
    use hypercube::Hypercube;

    fn dense(n: usize, bytes: u32) -> CommMatrix {
        let mut m = CommMatrix::new(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    m.set(i, j, bytes);
                }
            }
        }
        m
    }

    #[test]
    fn all_to_all_uses_every_phase_fully() {
        let n = 16;
        let com = dense(n, 64);
        let s = lp(&com);
        assert_eq!(s.num_phases(), n - 1);
        for pm in s.phases() {
            assert_eq!(pm.len(), n); // everyone sends each phase
            assert!(pm.is_partial_permutation());
            // XOR phases are involutions: all messages pair up.
            assert_eq!(pm.exchange_pairs(), n / 2);
        }
        validate_schedule(&com, &s).unwrap();
    }

    #[test]
    fn phases_are_link_free_on_the_cube() {
        let com = dense(32, 64);
        let cube = Hypercube::for_nodes(32);
        let s = lp(&com);
        assert!(s.link_contention_free(&cube));
    }

    #[test]
    fn sparse_matrix_schedules_every_message_once() {
        let mut com = CommMatrix::new(8);
        com.set(0, 7, 10);
        com.set(3, 4, 10);
        com.set(4, 3, 10);
        let s = lp(&com);
        assert_eq!(s.num_phases(), 7); // always n-1, even when sparse
        assert_eq!(s.message_count(), 3);
        validate_schedule(&com, &s).unwrap();
        // 0->7 goes in phase k=7; 3<->4 in phase k=7 as well (3^4=7).
        let pm = &s.phases()[6];
        assert_eq!(pm.dest(0), Some(NodeId(7)));
        assert_eq!(pm.exchange_pairs(), 1);
    }

    #[test]
    fn empty_matrix_gives_empty_phases() {
        let com = CommMatrix::new(4);
        let s = lp(&com);
        assert_eq!(s.num_phases(), 3);
        assert_eq!(s.message_count(), 0);
        validate_schedule(&com, &s).unwrap();
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        lp(&CommMatrix::new(12));
    }

    #[test]
    fn op_count_is_per_processor_linear() {
        let com = dense(64, 8);
        let s = lp(&com);
        assert_eq!(s.ops(), 63);
        assert_eq!(s.compress_ops(), 0);
    }

    #[test]
    fn symmetric_pattern_is_all_exchanges() {
        let mut com = CommMatrix::new(16);
        for i in 0..16usize {
            let j = i ^ 5;
            com.set(i, j, 128);
        }
        let s = lp(&com);
        let cube = Hypercube::for_nodes(16);
        assert!(s.link_contention_free(&cube));
        let total_pairs: usize = s.phases().iter().map(|p| p.exchange_pairs()).sum();
        assert_eq!(total_pairs, 8); // 16 messages = 8 reciprocal pairs
    }
}
