//! All-to-many personalized communication scheduling — the primary
//! contribution of *Wang & Ranka, "Scheduling of Unstructured Communication
//! on the Intel iPSC/860" (1994)*.
//!
//! Given an `n x n` communication matrix `COM` (entry `(i, j)` is the number
//! of bytes node `i` must send to node `j`), this crate decomposes the
//! communication into a sequence of **partial permutations**: per phase,
//! every node sends at most one message and receives at most one message
//! (no *node contention*), and optionally no two circuits of a phase share
//! a channel of the underlying network (no *link contention*).
//!
//! # The four algorithms
//!
//! | Function  | Paper section | Avoids                | Notes |
//! |-----------|---------------|-----------------------|-------|
//! | [`ac`]    | 3             | nothing               | no schedule at all; messages fly asynchronously |
//! | [`lp`]    | 4.1           | node + link contention| phase `k` pairs `i` with `i ^ k`; always `n-1` phases; all pairwise exchanges |
//! | [`rs_n`]  | 4.2           | node contention       | randomized greedy over the compressed matrix; ~`d + log d` phases |
//! | [`rs_nl`] | 5             | node + link contention| `rs_n` plus e-cube path reservation and pairwise-exchange preference |
//!
//! Every scheduler counts the abstract operations it performs
//! ([`Schedule::ops`]); [`I860CostModel`] converts those counts into
//! simulated scheduling time on the paper's 40 MHz i860 nodes, which is how
//! the reproduction regenerates the comp/comm overhead figures (10 and 11).
//!
//! # The scheduler registry
//!
//! Beyond the four free functions, every algorithm — including the
//! deterministic [`greedy`] baseline and the [`RsOptions`] ablation
//! variants — is registered as a [`Scheduler`] trait object in
//! [`registry`]. Downstream layers (the runtime's experiment driver, the
//! repro binaries, the benches, the property tests) enumerate
//! [`registry::all`] instead of matching on an enum, so registering a new
//! algorithm there is the *only* change needed to surface it in every
//! table, figure, and test. [`SchedulerKind`] survives as a thin compat
//! shim: [`SchedulerKind::scheduler`] resolves the enum value to its
//! registry entry.
//!
//! # Example
//!
//! ```
//! use commsched::{rs_nl, validate_schedule, CommMatrix};
//! use hypercube::Hypercube;
//!
//! let cube = Hypercube::new(4); // 16 nodes
//! let mut com = CommMatrix::new(16);
//! com.set(0, 5, 1024);
//! com.set(5, 0, 1024);
//! com.set(3, 7, 1024);
//!
//! let schedule = rs_nl(&com, &cube, 12345);
//! validate_schedule(&com, &schedule).unwrap();
//! assert!(schedule.link_contention_free(&cube));
//! ```

#![forbid(unsafe_code)]

mod algorithms;
mod compress;
mod cost;
pub mod delta;
mod matrix;
pub mod nonuniform;
mod paths_table;
mod phase;
pub mod registry;
mod schedule;
pub mod stats;
mod validate;

pub use algorithms::{ac, greedy, lp, rs_n, rs_n_with, rs_nl, rs_nl_with, RsOptions};
pub use compress::CompressedMatrix;
pub use cost::I860CostModel;
pub use delta::{DeltaError, MatrixDelta};
pub use matrix::CommMatrix;
pub use paths_table::PathsTable;
pub use phase::PartialPermutation;
pub use registry::Scheduler;
pub use schedule::{Schedule, ScheduleKind, SchedulerKind};
pub use stats::ScheduleQuality;
pub use validate::{validate_schedule, ValidationError};
