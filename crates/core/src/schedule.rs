use hypercube::Topology;

use crate::PartialPermutation;

/// Which algorithm *family* produced a schedule.
///
/// This closed enum predates the [`crate::registry`]; it survives as a
/// thin compat shim. Variant entries of the registry (GREEDY, the
/// [`crate::RsOptions`] ablations) report the family they belong to, and
/// [`SchedulerKind::scheduler`] resolves an enum value back to its
/// canonical registry entry. New algorithms should be added to the
/// registry, not here.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Asynchronous communication (Section 3): no schedule.
    Ac,
    /// Linear permutation (Section 4.1).
    Lp,
    /// Randomized scheduling avoiding node contention (Section 4.2).
    RsN,
    /// Randomized scheduling avoiding node and link contention (Section 5).
    RsNl,
}

impl SchedulerKind {
    /// The short name used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Ac => "AC",
            SchedulerKind::Lp => "LP",
            SchedulerKind::RsN => "RS_N",
            SchedulerKind::RsNl => "RS_NL",
        }
    }

    /// All four algorithms, in the paper's column order.
    pub fn all() -> [SchedulerKind; 4] {
        [
            SchedulerKind::Ac,
            SchedulerKind::Lp,
            SchedulerKind::RsN,
            SchedulerKind::RsNl,
        ]
    }
}

/// How the runtime should interpret a [`Schedule`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleKind {
    /// No phases: every node posts its receives and blasts its sends
    /// (asynchronous communication).
    Async,
    /// Execute the phases in order under loose synchrony.
    Phased,
}

/// A communication schedule: the decomposition of a [`crate::CommMatrix`]
/// into ordered communication phases, plus cost accounting.
///
/// Schedules compare by value (`PartialEq`): two schedules are equal when
/// every phase, count, and cost field matches — the property the
/// `commcache` artifact store's round-trip tests rely on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    kind: ScheduleKind,
    algorithm: SchedulerKind,
    n: usize,
    phases: Vec<PartialPermutation>,
    /// Abstract operations spent computing the schedule (inner-loop steps);
    /// see [`crate::I860CostModel`].
    ops_schedule: u64,
    /// Abstract operations spent compressing `COM` into `CCOM`.
    ops_compress: u64,
}

impl Schedule {
    pub(crate) fn new(
        kind: ScheduleKind,
        algorithm: SchedulerKind,
        n: usize,
        phases: Vec<PartialPermutation>,
        ops_schedule: u64,
        ops_compress: u64,
    ) -> Self {
        Schedule {
            kind,
            algorithm,
            n,
            phases,
            ops_schedule,
            ops_compress,
        }
    }

    /// Reassemble a schedule from its constituent parts — the decode path
    /// of external serializers (the `commcache` artifact store). The
    /// schedulers themselves never use this: they build schedules through
    /// the crate-internal constructor, so a hand-assembled schedule is
    /// *not* presumed valid — run [`crate::validate_schedule`] against its
    /// matrix if validity matters.
    ///
    /// # Panics
    ///
    /// Panics if any phase spans a different node count than `n`.
    pub fn from_parts(
        kind: ScheduleKind,
        algorithm: SchedulerKind,
        n: usize,
        phases: Vec<PartialPermutation>,
        ops_schedule: u64,
        ops_compress: u64,
    ) -> Self {
        for (i, p) in phases.iter().enumerate() {
            assert_eq!(
                p.n(),
                n,
                "phase {i} spans {} nodes, schedule has {n}",
                p.n()
            );
        }
        Schedule::new(kind, algorithm, n, phases, ops_schedule, ops_compress)
    }

    /// Async or phased.
    pub fn kind(&self) -> ScheduleKind {
        self.kind
    }

    /// The producing algorithm.
    pub fn algorithm(&self) -> SchedulerKind {
        self.algorithm
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The communication phases (empty for [`ScheduleKind::Async`]).
    pub fn phases(&self) -> &[PartialPermutation] {
        &self.phases
    }

    /// Number of phases — the paper's "# iters" row.
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// Abstract scheduling operations (excluding compression).
    pub fn ops(&self) -> u64 {
        self.ops_schedule
    }

    /// Abstract operations of the `COM -> CCOM` compression step.
    pub fn compress_ops(&self) -> u64 {
        self.ops_compress
    }

    /// Total messages across all phases.
    pub fn message_count(&self) -> usize {
        self.phases.iter().map(|p| p.len()).sum()
    }

    /// Total reciprocal (exchange) pairs across phases.
    pub fn exchange_pairs(&self) -> usize {
        self.phases.iter().map(|p| p.exchange_pairs()).sum()
    }

    /// The schedule under a node relabeling
    /// ([`PartialPermutation::relabeled`] applied phase-wise; kind,
    /// family, and op counts carry over). Relabeling by a topology
    /// automorphism maps a valid schedule of `com` to a valid schedule of
    /// the relabeled matrix with identical structure — phase counts,
    /// message counts, exchange pairs.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn relabeled(&self, perm: &[hypercube::NodeId]) -> Schedule {
        Schedule::new(
            self.kind,
            self.algorithm,
            self.n,
            self.phases.iter().map(|p| p.relabeled(perm)).collect(),
            self.ops_schedule,
            self.ops_compress,
        )
    }

    /// Whether every phase is link-contention-free on `topo` (the RS_NL /
    /// LP guarantee; generally false for RS_N).
    pub fn link_contention_free<T: Topology + ?Sized>(&self, topo: &T) -> bool {
        self.phases.iter().all(|p| p.is_link_free(topo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypercube::NodeId;

    fn phase(n: usize, pairs: &[(u32, u32)]) -> PartialPermutation {
        let mut pm = PartialPermutation::empty(n);
        for &(s, d) in pairs {
            pm.assign(NodeId(s), NodeId(d));
        }
        pm
    }

    #[test]
    fn labels() {
        assert_eq!(SchedulerKind::RsNl.label(), "RS_NL");
        assert_eq!(SchedulerKind::all().len(), 4);
    }

    #[test]
    fn from_parts_rebuilds_an_equal_schedule() {
        let phases = vec![phase(4, &[(0, 1), (1, 0)]), phase(4, &[(2, 3)])];
        let original = Schedule::new(ScheduleKind::Phased, SchedulerKind::RsNl, 4, phases, 42, 7);
        let rebuilt = Schedule::from_parts(
            original.kind(),
            original.algorithm(),
            original.n(),
            original.phases().to_vec(),
            original.ops(),
            original.compress_ops(),
        );
        assert_eq!(original, rebuilt);
        // Any differing field breaks equality.
        let other = Schedule::from_parts(
            original.kind(),
            original.algorithm(),
            original.n(),
            original.phases().to_vec(),
            original.ops() + 1,
            original.compress_ops(),
        );
        assert_ne!(original, other);
    }

    #[test]
    #[should_panic(expected = "spans")]
    fn from_parts_rejects_mismatched_phase_widths() {
        Schedule::from_parts(
            ScheduleKind::Phased,
            SchedulerKind::RsN,
            4,
            vec![phase(8, &[(0, 1)])],
            0,
            0,
        );
    }

    #[test]
    fn counts() {
        let phases = vec![phase(4, &[(0, 1), (1, 0), (2, 3)]), phase(4, &[(3, 2)])];
        let s = Schedule::new(ScheduleKind::Phased, SchedulerKind::RsN, 4, phases, 100, 10);
        assert_eq!(s.num_phases(), 2);
        assert_eq!(s.message_count(), 4);
        assert_eq!(s.exchange_pairs(), 1);
        assert_eq!(s.ops(), 100);
        assert_eq!(s.compress_ops(), 10);
    }
}
