use crate::Schedule;

/// Converts abstract scheduler operation counts into simulated scheduling
/// time on the paper's hardware (40 MHz Intel i860 nodes).
///
/// **Why this exists.** The paper's Figures 10 and 11 plot the *ratio* of
/// scheduling (computation) cost to communication cost. Re-measuring the
/// scheduler's wall time on a ~5 GHz superscalar CPU and dividing by
/// *simulated* 1990s communication time would make that ratio meaningless
/// (off by three orders of magnitude). Instead every scheduler counts the
/// abstract inner-loop operations it executes — row visits, `CCOM` slot
/// scans, `Tsend`/`Trecv` initializations, `Check_Path` link inspections —
/// and this model charges a fixed i860 cost per operation.
///
/// The constant is calibrated against Table 1 of the paper: RS_N at
/// `n = 64, d = 48` costs ~20 ms, i.e. roughly 1.2 us per abstract
/// operation (≈48 cycles at 40 MHz — an inner loop with a couple of memory
/// references, which is exactly what these operations are).
///
/// Real wall-clock scheduling throughput on the host machine is measured
/// separately by the Criterion benches; this model is only for reproducing
/// the paper's overhead ratios.
#[derive(Clone, Copy, Debug)]
pub struct I860CostModel {
    /// Simulated nanoseconds per abstract scheduling operation.
    pub ns_per_op: f64,
}

impl Default for I860CostModel {
    fn default() -> Self {
        I860CostModel { ns_per_op: 1200.0 }
    }
}

impl I860CostModel {
    /// Simulated scheduling time for `schedule`, in nanoseconds, including
    /// the parallel `COM -> CCOM` compression step.
    pub fn schedule_ns(&self, schedule: &Schedule) -> u64 {
        ((schedule.ops() + schedule.compress_ops()) as f64 * self.ns_per_op) as u64
    }

    /// Simulated scheduling time in milliseconds (the unit of Table 1's
    /// "comp" rows).
    pub fn schedule_ms(&self, schedule: &Schedule) -> f64 {
        self.schedule_ns(schedule) as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rs_n, rs_nl, CommMatrix};
    use hypercube::Hypercube;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Paper-style random traffic: each node sends d messages to distinct
    /// random destinations.
    fn random_com(n: usize, d: usize, seed: u64) -> CommMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = CommMatrix::new(n);
        for i in 0..n {
            let mut placed = 0;
            while placed < d {
                let j = rng.random_range(0..n);
                if j != i && m.get(i, j) == 0 {
                    m.set(i, j, 1024);
                    placed += 1;
                }
            }
        }
        m
    }

    #[test]
    fn rs_n_cost_matches_table1_magnitude() {
        // Table 1: RS_N comp at d=48 is ~20 ms, at d=4 is ~1.7 ms.
        let model = I860CostModel::default();
        let com48 = random_com(64, 48, 1);
        let ms48 = model.schedule_ms(&rs_n(&com48, 1));
        assert!(
            (10.0..35.0).contains(&ms48),
            "d=48 comp should be ~20 ms, got {ms48:.2}"
        );
        let com4 = random_com(64, 4, 1);
        let ms4 = model.schedule_ms(&rs_n(&com4, 1));
        assert!(
            (0.5..4.0).contains(&ms4),
            "d=4 comp should be ~1.7 ms, got {ms4:.2}"
        );
    }

    #[test]
    fn rs_nl_costs_a_few_times_rs_n() {
        // Table 1: RS_NL comp is ~3x RS_N at every density.
        let model = I860CostModel::default();
        let cube = Hypercube::new(6);
        let com = random_com(64, 16, 2);
        let n_ms = model.schedule_ms(&rs_n(&com, 2));
        let nl_ms = model.schedule_ms(&rs_nl(&com, &cube, 2));
        let ratio = nl_ms / n_ms;
        assert!(
            (1.8..6.0).contains(&ratio),
            "RS_NL/RS_N comp ratio should be ~3, got {ratio:.2}"
        );
    }

    #[test]
    fn lp_cost_is_negligible() {
        let model = I860CostModel::default();
        let com = random_com(64, 32, 3);
        let ms = model.schedule_ms(&crate::lp(&com));
        assert!(ms < 0.5, "LP comp should be ~0.08 ms, got {ms:.3}");
    }
}
