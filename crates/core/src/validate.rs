use std::fmt;

use crate::{CommMatrix, Schedule, ScheduleKind};

/// Why a schedule fails validation against its communication matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// Schedule and matrix disagree on the node count.
    WrongSize {
        /// Nodes in the matrix.
        matrix: usize,
        /// Nodes in the schedule.
        schedule: usize,
    },
    /// A phase violates the partial-permutation property (two senders
    /// target one receiver, or a node sends to itself).
    NotPermutation {
        /// Offending phase index.
        phase: usize,
    },
    /// A scheduled message does not exist in the matrix.
    UnknownMessage {
        /// Phase index.
        phase: usize,
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
    },
    /// A message appears in more than one phase (the decomposition must be
    /// disjoint: "there exists a *unique* k such that pm_k(i) = j").
    DuplicateMessage {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
    },
    /// A message of the matrix appears in no phase.
    MissingMessage {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::WrongSize { matrix, schedule } => {
                write!(f, "matrix has {matrix} nodes, schedule {schedule}")
            }
            ValidationError::NotPermutation { phase } => {
                write!(f, "phase {phase} is not a partial permutation")
            }
            ValidationError::UnknownMessage { phase, src, dst } => {
                write!(
                    f,
                    "phase {phase} schedules {src}->{dst} which is not in COM"
                )
            }
            ValidationError::DuplicateMessage { src, dst } => {
                write!(f, "message {src}->{dst} scheduled more than once")
            }
            ValidationError::MissingMessage { src, dst } => {
                write!(f, "message {src}->{dst} never scheduled")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Check that `schedule` is a correct decomposition of `com`:
///
/// 1. every phase is a partial permutation (node-contention freedom),
/// 2. every scheduled message exists in `com`,
/// 3. every message of `com` is scheduled **exactly once**.
///
/// [`ScheduleKind::Async`] schedules are vacuously valid (the runtime sends
/// straight from the matrix) apart from the size check.
///
/// # Errors
///
/// The first violation found, as a [`ValidationError`].
pub fn validate_schedule(com: &CommMatrix, schedule: &Schedule) -> Result<(), ValidationError> {
    let n = com.n();
    if schedule.n() != n {
        return Err(ValidationError::WrongSize {
            matrix: n,
            schedule: schedule.n(),
        });
    }
    if schedule.kind() == ScheduleKind::Async {
        return Ok(());
    }
    let mut seen = vec![false; n * n];
    for (k, pm) in schedule.phases().iter().enumerate() {
        if !pm.is_partial_permutation() {
            return Err(ValidationError::NotPermutation { phase: k });
        }
        for (src, dst) in pm.pairs() {
            let (s, d) = (src.index(), dst.index());
            if com.get(s, d) == 0 {
                return Err(ValidationError::UnknownMessage {
                    phase: k,
                    src: s,
                    dst: d,
                });
            }
            if seen[s * n + d] {
                return Err(ValidationError::DuplicateMessage { src: s, dst: d });
            }
            seen[s * n + d] = true;
        }
    }
    for (src, dst, _) in com.messages() {
        if !seen[src.index() * n + dst.index()] {
            return Err(ValidationError::MissingMessage {
                src: src.index(),
                dst: dst.index(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PartialPermutation, SchedulerKind};
    use hypercube::NodeId;

    fn com3() -> CommMatrix {
        let mut m = CommMatrix::new(3);
        m.set(0, 1, 5);
        m.set(1, 2, 5);
        m
    }

    fn phased(n: usize, phases: Vec<PartialPermutation>) -> Schedule {
        Schedule::new(ScheduleKind::Phased, SchedulerKind::RsN, n, phases, 0, 0)
    }

    #[test]
    fn accepts_correct_schedule() {
        let mut pm = PartialPermutation::empty(3);
        pm.assign(NodeId(0), NodeId(1));
        pm.assign(NodeId(1), NodeId(2));
        validate_schedule(&com3(), &phased(3, vec![pm])).unwrap();
    }

    #[test]
    fn rejects_wrong_size() {
        let s = phased(4, vec![]);
        assert!(matches!(
            validate_schedule(&com3(), &s),
            Err(ValidationError::WrongSize { .. })
        ));
    }

    #[test]
    fn rejects_missing_message() {
        let mut pm = PartialPermutation::empty(3);
        pm.assign(NodeId(0), NodeId(1));
        let err = validate_schedule(&com3(), &phased(3, vec![pm])).unwrap_err();
        assert_eq!(err, ValidationError::MissingMessage { src: 1, dst: 2 });
        assert!(err.to_string().contains("never scheduled"));
    }

    #[test]
    fn rejects_duplicate_message() {
        let mut pm1 = PartialPermutation::empty(3);
        pm1.assign(NodeId(0), NodeId(1));
        pm1.assign(NodeId(1), NodeId(2));
        let mut pm2 = PartialPermutation::empty(3);
        pm2.assign(NodeId(0), NodeId(1));
        let err = validate_schedule(&com3(), &phased(3, vec![pm1, pm2])).unwrap_err();
        assert_eq!(err, ValidationError::DuplicateMessage { src: 0, dst: 1 });
    }

    #[test]
    fn rejects_unknown_message() {
        let mut pm = PartialPermutation::empty(3);
        pm.assign(NodeId(2), NodeId(0));
        let err = validate_schedule(&com3(), &phased(3, vec![pm])).unwrap_err();
        assert!(matches!(err, ValidationError::UnknownMessage { .. }));
    }

    #[test]
    fn rejects_node_contention() {
        let pm = PartialPermutation::from_dests(vec![Some(NodeId(2)), Some(NodeId(2)), None]);
        let err = validate_schedule(&com3(), &phased(3, vec![pm])).unwrap_err();
        assert!(matches!(err, ValidationError::NotPermutation { .. }));
    }

    #[test]
    fn async_is_vacuously_valid() {
        let s = crate::ac(&com3());
        validate_schedule(&com3(), &s).unwrap();
    }
}
