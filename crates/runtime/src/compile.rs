use commsched::{CommMatrix, Schedule, ScheduleKind};
use hypercube::{NodeId, Topology};
use simnet::{
    simulate, simulate_traced, MachineParams, Program, ProgramBuilder, SimError, SimReport, Tag,
    TraceEvent,
};

/// Tag of the data message scheduled in phase `k` (AC uses phase 0).
#[inline]
fn data_tag(phase: usize) -> Tag {
    Tag(phase as u32 * 2)
}

/// Tag of the S1 ready signal for the data message of phase `k`.
#[inline]
fn ready_tag(phase: usize) -> Tag {
    Tag(phase as u32 * 2 + 1)
}

/// Compile `(matrix, schedule, scheme)` into one executable program per
/// node.
///
/// * [`ScheduleKind::Async`] (AC) ignores `scheme` and emits the
///   post/send/confirm program of the paper's Figure 1.
/// * Phased schedules honour the phase order under *loose synchrony* — no
///   global barrier; nodes couple only through the messages themselves
///   (plus ready signals under [`Scheme::S1`]).
///
/// # Panics
///
/// Panics if the schedule does not belong to the matrix (validate first
/// with [`commsched::validate_schedule`] for a graceful error).
///
/// [`Scheme::S1`]: crate::Scheme::S1
pub fn compile(com: &CommMatrix, schedule: &Schedule, scheme: crate::Scheme) -> Vec<Program> {
    assert_eq!(com.n(), schedule.n(), "matrix/schedule size mismatch");
    match schedule.kind() {
        ScheduleKind::Async => compile_async(com),
        ScheduleKind::Phased => match scheme {
            crate::Scheme::S1 => compile_s1(com, schedule),
            crate::Scheme::S2 => compile_s2(com, schedule),
        },
    }
}

/// The *send-detect-receive* variant of asynchronous communication the
/// paper discusses in Section 3: receivers cannot (or do not) pre-allocate
/// application buffers, so every arrival lands in the bounded system buffer
/// and pays a copy once the receive is finally issued. This is the
/// configuration where AC's "memory requirements are large" bites: with a
/// bounded [`simnet::MachineParams::buffer_bytes`] senders block on full
/// buffers and the run can deadlock (reported, not hung).
pub fn compile_ac_send_detect(com: &CommMatrix) -> Vec<Program> {
    let n = com.n();
    let mut builders: Vec<ProgramBuilder> = (0..n).map(|_| Program::builder()).collect();
    // Blocking sends (csend semantics), as in the naive implementation the
    // paper warns about: a sender stuck on a full remote buffer stalls its
    // whole program — including the receives that would drain its own
    // buffer — so rings of mutually-stuck nodes deadlock.
    for (src, dst, bytes) in com.messages() {
        builders[src.index()].send(dst, bytes, data_tag(0));
    }
    // Receives are issued only after all sends complete: early arrivals sit
    // in the system buffer and pay the copy on receipt.
    for (src, dst, _) in com.messages() {
        builders[dst.index()].post_recv(src, data_tag(0));
    }
    for b in &mut builders {
        b.wait_all_recvs();
    }
    builders.into_iter().map(ProgramBuilder::build).collect()
}

/// Figure 1: post requests for all incoming messages, blast all outgoing
/// messages, confirm arrivals.
fn compile_async(com: &CommMatrix) -> Vec<Program> {
    let n = com.n();
    let mut builders: Vec<ProgramBuilder> = (0..n).map(|_| Program::builder()).collect();
    // Post phase: every node pre-allocates buffers for its senders.
    for (src, dst, _) in com.messages() {
        builders[dst.index()].post_recv(src, data_tag(0));
    }
    // Send phase: row order, fire and forget.
    for (src, dst, bytes) in com.messages() {
        builders[src.index()].send_async(dst, bytes, data_tag(0));
    }
    // Confirm phase.
    for b in &mut builders {
        b.wait_all_sends();
        b.wait_all_recvs();
    }
    builders.into_iter().map(ProgramBuilder::build).collect()
}

/// S2: all posts up front, then sends in schedule order (asynchronously),
/// then confirmation — the AC program with contention-aware ordering.
fn compile_s2(com: &CommMatrix, schedule: &Schedule) -> Vec<Program> {
    let n = com.n();
    let mut builders: Vec<ProgramBuilder> = (0..n).map(|_| Program::builder()).collect();
    for (k, pm) in schedule.phases().iter().enumerate() {
        for (src, dst) in pm.pairs() {
            builders[dst.index()].post_recv(src, data_tag(k));
        }
    }
    for (k, pm) in schedule.phases().iter().enumerate() {
        for (src, dst) in pm.pairs() {
            let bytes = com.get(src.index(), dst.index());
            builders[src.index()].send_async(dst, bytes, data_tag(k));
        }
    }
    for b in &mut builders {
        b.wait_all_sends();
        b.wait_all_recvs();
    }
    builders.into_iter().map(ProgramBuilder::build).collect()
}

/// S1: per phase, receivers post + signal ready, senders wait for the
/// signal and transmit; reciprocal pairs become fused pairwise exchanges.
fn compile_s1(com: &CommMatrix, schedule: &Schedule) -> Vec<Program> {
    let n = com.n();
    let mut builders: Vec<ProgramBuilder> = (0..n).map(|_| Program::builder()).collect();
    // Pre-post the ready-signal buffers of every non-exchange outgoing
    // message: the partner may race ahead to a later phase and fire its
    // ready before this sender reaches that phase; a posted buffer keeps
    // even the signals out of the system-buffer path.
    for (k, pm) in schedule.phases().iter().enumerate() {
        for (src, dst) in pm.pairs() {
            if !pm.is_exchange_pair(src) {
                builders[src.index()].post_recv(dst, ready_tag(k));
            }
        }
    }
    // For every node and phase, classify its role. `recv_from[k][i]` = who
    // sends to node i in phase k (None = silent).
    let phases = schedule.phases();
    let recv_from: Vec<Vec<Option<NodeId>>> = phases
        .iter()
        .map(|pm| {
            let mut v = vec![None; n];
            for (src, dst) in pm.pairs() {
                v[dst.index()] = Some(src);
            }
            v
        })
        .collect();
    // Receive prep (post buffer + fire the ready signal) for phase k is
    // emitted one phase EARLY, so the handshake latency of phase k+1 hides
    // under the data movement of phase k — the double-buffering that makes
    // S1's loose synchrony cheap.
    let emit_prep = |b: &mut ProgramBuilder, i: usize, k: usize| {
        let pm = &phases[k];
        if let Some(s) = recv_from[k][i] {
            if !pm.is_exchange_pair(NodeId(i as u32)) {
                b.post_recv(s, data_tag(k));
                b.send_async(s, 0, ready_tag(k));
            }
        }
    };
    for i in 0..n {
        let me = NodeId(i as u32);
        if !phases.is_empty() {
            // Mutable borrow dance: pull the builder out while prepping.
            let b = &mut builders[i];
            emit_prep(b, i, 0);
        }
        for k in 0..phases.len() {
            let pm = &phases[k];
            let b = &mut builders[i];
            if k + 1 < phases.len() {
                emit_prep(b, i, k + 1);
            }
            let send_to = pm.dest(i);
            if pm.is_exchange_pair(me) {
                let j = send_to.expect("exchange pair implies a destination");
                let out = com.get(i, j.index());
                let inc = com.get(j.index(), i);
                b.exchange(j, out, inc, data_tag(k));
                continue;
            }
            if let Some(j) = send_to {
                b.wait_recv(j, ready_tag(k));
                b.send(j, com.get(i, j.index()), data_tag(k));
            }
            if let Some(s) = recv_from[k][i] {
                b.wait_recv(s, data_tag(k));
            }
        }
    }
    for b in &mut builders {
        b.wait_all_sends();
        b.wait_all_recvs();
    }
    builders.into_iter().map(ProgramBuilder::build).collect()
}

/// Compile and simulate in one call — the main entry point for running one
/// schedule on the simulated machine.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator (deadlock, bad parameters).
pub fn run_schedule<T: Topology + ?Sized>(
    topo: &T,
    params: &MachineParams,
    com: &CommMatrix,
    schedule: &Schedule,
    scheme: crate::Scheme,
) -> Result<SimReport, SimError> {
    simulate(topo, params, compile(com, schedule, scheme))
}

/// [`run_schedule`] with the full execution trace (diagnostics, examples).
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn run_schedule_traced<T: Topology + ?Sized>(
    topo: &T,
    params: &MachineParams,
    com: &CommMatrix,
    schedule: &Schedule,
    scheme: crate::Scheme,
) -> Result<(SimReport, Vec<TraceEvent>), SimError> {
    simulate_traced(topo, params, compile(com, schedule, scheme))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheme;
    use commsched::{ac, lp, rs_n, rs_nl, validate_schedule};
    use hypercube::Hypercube;
    use simnet::Op;

    fn com_and_cube() -> (CommMatrix, Hypercube) {
        (workloads::random_dense(16, 4, 2048, 3), Hypercube::new(4))
    }

    #[test]
    fn ac_program_shape() {
        let (com, _) = com_and_cube();
        let progs = compile(&com, &ac(&com), Scheme::S2);
        assert_eq!(progs.len(), 16);
        // Every node: in-degree posts, 4 async sends, two waits.
        for (i, p) in progs.iter().enumerate() {
            let posts = p
                .ops()
                .iter()
                .filter(|o| matches!(o, Op::PostRecv { .. }))
                .count();
            let sends = p
                .ops()
                .iter()
                .filter(|o| matches!(o, Op::SendAsync { .. }))
                .count();
            assert_eq!(posts, com.in_degree(i));
            assert_eq!(sends, 4);
            assert!(matches!(p.ops()[p.len() - 1], Op::WaitAllRecvs));
        }
    }

    #[test]
    fn all_four_algorithms_simulate_green() {
        let (com, cube) = com_and_cube();
        let params = MachineParams::ipsc860();
        for (schedule, scheme) in [
            (ac(&com), Scheme::S2),
            (lp(&com), Scheme::S1),
            (rs_n(&com, 5), Scheme::S2),
            (rs_nl(&com, &cube, 5), Scheme::S1),
        ] {
            validate_schedule(&com, &schedule).unwrap();
            let report = run_schedule(&cube, &params, &com, &schedule, scheme)
                .unwrap_or_else(|e| panic!("{:?} failed: {e}", schedule.algorithm()));
            assert!(report.makespan_ns > 0);
            // Conservation: every message delivered exactly once.
            let delivered: u64 = report.stats.nodes.iter().map(|s| s.recvs).sum();
            assert!(
                delivered >= com.message_count() as u64,
                "{:?}: {} of {} delivered",
                schedule.algorithm(),
                delivered,
                com.message_count()
            );
        }
    }

    #[test]
    fn s1_avoids_buffer_copies() {
        // The point of S1: data never lands in the system buffer.
        let (com, cube) = com_and_cube();
        let params = MachineParams::ipsc860();
        let schedule = rs_nl(&com, &cube, 9);
        let report = run_schedule(&cube, &params, &com, &schedule, Scheme::S1).unwrap();
        assert_eq!(report.stats.copies, 0);
        for nstats in &report.stats.nodes {
            assert_eq!(nstats.buffered_bytes, 0);
        }
    }

    #[test]
    fn s1_fuses_reciprocal_pairs() {
        let cube = Hypercube::new(3);
        let mut com = CommMatrix::new(8);
        com.set(2, 5, 4096);
        com.set(5, 2, 4096);
        let schedule = lp(&com);
        let progs = compile(&com, &schedule, Scheme::S1);
        let exchanges = progs
            .iter()
            .flat_map(|p| p.ops())
            .filter(|o| matches!(o, Op::Exchange { .. }))
            .count();
        assert_eq!(exchanges, 2, "one Exchange op per endpoint");
        let report = run_schedule(
            &cube,
            &MachineParams::ipsc860(),
            &com,
            &schedule,
            Scheme::S1,
        )
        .unwrap();
        assert!(report.makespan_ns > 0);
    }

    #[test]
    fn s1_beats_s2_for_exchange_heavy_traffic() {
        // Symmetric halo traffic, large messages: pairwise fusion should
        // win clearly (the paper's rationale for S1).
        let cube = Hypercube::new(5);
        let com = workloads::structured::ring_halo(32, 3, 65_536);
        let schedule = rs_nl(&com, &cube, 2);
        let params = MachineParams::ipsc860();
        let s1 = run_schedule(&cube, &params, &com, &schedule, Scheme::S1).unwrap();
        let s2 = run_schedule(&cube, &params, &com, &schedule, Scheme::S2).unwrap();
        assert!(
            (s1.makespan_ns as f64) < 0.9 * s2.makespan_ns as f64,
            "S1 {} vs S2 {}",
            s1.makespan_ns,
            s2.makespan_ns
        );
    }

    #[test]
    fn phased_s2_orders_but_never_deadlocks() {
        let (com, cube) = com_and_cube();
        let schedule = rs_n(&com, 1);
        let report = run_schedule(
            &cube,
            &MachineParams::ipsc860(),
            &com,
            &schedule,
            Scheme::S2,
        )
        .unwrap();
        assert!(report.makespan_ns > 0);
    }

    #[test]
    fn empty_matrix_compiles_to_trivial_programs() {
        let com = CommMatrix::new(8);
        let cube = Hypercube::new(3);
        for (sched, scheme) in [(ac(&com), Scheme::S2), (lp(&com), Scheme::S1)] {
            let report =
                run_schedule(&cube, &MachineParams::ipsc860(), &com, &sched, scheme).unwrap();
            assert_eq!(report.stats.transfers, 0);
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn schedule_matrix_mismatch_panics() {
        let com = CommMatrix::new(8);
        let other = CommMatrix::new(16);
        compile(&com, &ac(&other), Scheme::S2);
    }

    #[test]
    fn send_detect_receive_pays_copies() {
        let (com, cube) = com_and_cube();
        let params = MachineParams::ipsc860();
        let posted = run_schedule(&cube, &params, &com, &ac(&com), Scheme::S2).unwrap();
        let progs = compile_ac_send_detect(&com);
        let detected = simnet::simulate(&cube, &params, progs).unwrap();
        assert_eq!(posted.stats.copies, 0);
        let buffered: u64 = detected.stats.nodes.iter().map(|s| s.buffered_bytes).sum();
        assert!(detected.stats.copies > 0, "late posts must force copies");
        assert!(buffered > 0);
        assert!(
            detected.makespan_ns > posted.makespan_ns,
            "copies must cost time: {} vs {}",
            detected.makespan_ns,
            posted.makespan_ns
        );
    }

    #[test]
    fn send_detect_receive_with_tiny_buffers_deadlocks() {
        let (com, cube) = com_and_cube();
        let params = MachineParams {
            buffer_bytes: Some(1024), // smaller than one message
            ..MachineParams::ipsc860()
        };
        let progs = compile_ac_send_detect(&com);
        let err = simnet::simulate(&cube, &params, progs).unwrap_err();
        assert!(matches!(err, simnet::SimError::Deadlock { .. }), "{err}");
    }

    #[test]
    fn send_detect_ring_with_bounded_buffers_reports_deadlock_not_hang() {
        // The paper's Section 3 hazard in its purest form: a ring where
        // every node sends one message larger than the downstream system
        // buffer. Under send-detect-receive each sender blocks on the full
        // buffer before reaching its own receives, so the whole ring is
        // mutually stuck. The simulator must *diagnose* this as a
        // `SimError::Deadlock` naming the stuck nodes — not spin forever.
        let cube = Hypercube::new(3);
        let mut com = CommMatrix::new(8);
        for i in 0..8 {
            com.set(i, (i + 1) % 8, 8192);
        }
        let params = MachineParams {
            buffer_bytes: Some(4096), // half a message: nobody can land
            ..MachineParams::ipsc860()
        };
        let err = simnet::simulate(&cube, &params, compile_ac_send_detect(&com)).unwrap_err();
        match err {
            SimError::Deadlock { ref stuck } => {
                assert_eq!(stuck.len(), 8, "the whole ring is stuck: {stuck:?}");
            }
            ref other => panic!("expected Deadlock, got {other}"),
        }
        assert!(err.to_string().contains("deadlock"), "{err}");
    }

    #[test]
    fn send_detect_ring_with_generous_buffers_completes() {
        // Same ring, but each buffer holds the whole incoming message:
        // arrivals land in the system buffer, the late receives pay the
        // copy, and the run completes.
        let cube = Hypercube::new(3);
        let mut com = CommMatrix::new(8);
        for i in 0..8 {
            com.set(i, (i + 1) % 8, 8192);
        }
        let params = MachineParams {
            buffer_bytes: Some(64 * 1024),
            ..MachineParams::ipsc860()
        };
        let report = simnet::simulate(&cube, &params, compile_ac_send_detect(&com)).unwrap();
        assert!(report.makespan_ns > 0);
        assert_eq!(report.stats.copies, 8, "every arrival is buffered once");
        let delivered: u64 = report.stats.nodes.iter().map(|s| s.recvs).sum();
        assert_eq!(delivered, 8);
    }

    #[test]
    fn determinism_end_to_end() {
        let (com, cube) = com_and_cube();
        let params = MachineParams::ipsc860();
        let s = rs_nl(&com, &cube, 4);
        let a = run_schedule(&cube, &params, &com, &s, Scheme::S1).unwrap();
        let b = run_schedule(&cube, &params, &com, &s, Scheme::S1).unwrap();
        assert_eq!(a.makespan_ns, b.makespan_ns);
    }
}
