//! The *concatenate* operation (all-gather) of the paper's runtime
//! scheduling story: before any node can compute a schedule it must hold
//! the full communication matrix, so all nodes combine their send vectors
//! by recursive doubling over the hypercube — `log n` pairwise-exchange
//! rounds with doubling payloads, total cost `O(dn + tau log n)`.

use hypercube::Hypercube;
use simnet::{simulate, MachineParams, Program, SimError, SimReport, Tag};

/// Build the recursive-doubling all-gather programs: in round `r` every
/// node exchanges its accumulated `2^r * row_bytes` payload with partner
/// `i XOR 2^r`.
///
/// `row_bytes` is the size of one node's contribution (its compacted send
/// vector — `d` destination/size pairs).
///
/// # Panics
///
/// Panics if `row_bytes == 0`.
pub fn allgather_programs(cube: &Hypercube, row_bytes: u32) -> Vec<Program> {
    assert!(row_bytes > 0, "empty send vectors make no sense");
    let n = 1usize << cube.dims();
    let mut builders: Vec<_> = (0..n).map(|_| Program::builder()).collect();
    for r in 0..cube.dims() {
        let chunk = row_bytes.saturating_mul(1 << r);
        for (i, b) in builders.iter_mut().enumerate() {
            let partner = hypercube::NodeId((i ^ (1 << r)) as u32);
            b.exchange(partner, chunk, chunk, Tag(r));
        }
    }
    builders.into_iter().map(|b| b.build()).collect()
}

/// Simulate the all-gather and return its cost — the schedule-distribution
/// overhead to add when evaluating *runtime* (as opposed to static)
/// scheduling.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn allgather_cost(
    cube: &Hypercube,
    params: &MachineParams,
    row_bytes: u32,
) -> Result<SimReport, SimError> {
    simulate(cube, params, allgather_programs(cube, row_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_in_log_n_rounds() {
        let cube = Hypercube::new(4);
        let params = MachineParams::ipsc860();
        let report = allgather_cost(&cube, &params, 256).unwrap();
        // 16 nodes * 4 rounds, each round one fused exchange per pair.
        assert_eq!(report.stats.transfers, 16 * 4 / 2);
        assert!(report.makespan_ns > 0);
    }

    #[test]
    fn cost_grows_with_row_size_but_sublinearly_in_rounds() {
        let cube = Hypercube::new(5);
        let params = MachineParams::ipsc860();
        let small = allgather_cost(&cube, &params, 64).unwrap().makespan_ns;
        let big = allgather_cost(&cube, &params, 4096).unwrap().makespan_ns;
        assert!(big > small);
        // Payload doubles every round: the last round dominates; total is
        // O(n * row_bytes), not O(n log n * row_bytes).
        let very_big = allgather_cost(&cube, &params, 8192).unwrap().makespan_ns;
        assert!((very_big as f64) < 2.5 * big as f64);
    }

    #[test]
    fn exchange_phases_are_contention_free() {
        // Recursive doubling uses XOR permutations, so no phase blocks.
        let cube = Hypercube::new(6);
        let params = MachineParams::ipsc860();
        let report = allgather_cost(&cube, &params, 512).unwrap();
        assert_eq!(report.stats.transfers_blocked, 0);
    }

    #[test]
    #[should_panic(expected = "empty send vectors")]
    fn zero_row_bytes_rejected() {
        allgather_programs(&Hypercube::new(3), 0);
    }
}
