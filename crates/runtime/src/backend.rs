//! Pluggable simulation backends: one trait, two ways to price a
//! schedule on a topology.
//!
//! A [`SimBackend`] estimates what executing a [`Schedule`] for a
//! [`CommMatrix`] on a [`Topology`] costs under a machine calibration —
//! per-phase completion times, the total makespan, and contention
//! pressure. Two implementations ship:
//!
//! * [`DesBackend`] — the exact oracle: compiles the schedule to per-node
//!   programs ([`crate::compile`]) and replays them on the discrete-event
//!   engine ([`simnet::simulate_traced`]), extracting phase boundaries
//!   from the execution trace.
//! * [`AnalyticBackend`] — a contention-aware LogP/LogGP-style model
//!   built on [`simnet::LoadModel`]: no programs, no events — phase
//!   makespans follow from link/port occupancy sums and the machine's
//!   latency/bandwidth parameters. Orders of magnitude faster
//!   (`BENCH_backend_throughput.json`), which buys grid sweeps far beyond
//!   what event simulation can reach.
//!
//! The two backends are each other's oracle: the differential conformance
//! suite (`tests/backend_conformance.rs`, `simcheck` binary) pins exact
//! analytic = DES agreement on contention-free schedules and bounded
//! divergence everywhere else. The model equations and the tolerance
//! policy are documented in `docs/ARCHITECTURE.md`.
//!
//! Selection is threaded through the stack: [`crate::ExperimentRunner`]
//! carries a [`BackendKind`], grid columns can override it per column
//! ([`crate::grid::GridColumn::with_backend`]), and the repro binaries
//! read the `IPSC_BACKEND` environment variable.

use std::fmt;

use commsched::{CommMatrix, Schedule, ScheduleKind};
use hypercube::{NodeId, Path, Topology};
use simnet::cost::resolve_route;
use simnet::{
    ExecMode, LinkCostModel, LoadModel, MachineParams, PoolMode, SimError, TraceKind, TransferSpec,
};

use crate::compile::compile;
use crate::Scheme;

/// Contention pressure of one estimated (or simulated) run.
///
/// The two backends fill these from different evidence — the event
/// engine from its router accounting, the analytic model from occupancy
/// sums — so treat them as *indicators* for cross-backend comparison,
/// not exact equalities. Makespans are the conformance surface; these
/// explain them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ContentionStats {
    /// Busiest node engine: total transfer time it carried (ns).
    pub max_engine_busy_ns: u64,
    /// Busiest directed link: total transfer time it carried (ns).
    pub max_link_busy_ns: u64,
    /// Transfers that had to wait on (analytic: share) a resource.
    pub contended_transfers: u64,
    /// Phases in which at least one transfer contended.
    pub contended_phases: usize,
}

/// What a backend reports for one `(matrix, schedule, topology, scheme)`
/// request.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BackendReport {
    /// Completion time of the slowest node (ns) — the paper's metric.
    pub makespan_ns: u64,
    /// Cumulative completion estimate after each phase (ns). One entry
    /// per schedule phase; a single entry for async (AC) schedules.
    /// Monotone non-decreasing; the last entry never exceeds
    /// [`BackendReport::makespan_ns`].
    pub phase_end_ns: Vec<u64>,
    /// Contention indicators.
    pub contention: ContentionStats,
}

impl BackendReport {
    /// Makespan in milliseconds (the unit of the paper's tables).
    pub fn makespan_ms(&self) -> f64 {
        self.makespan_ns as f64 / 1e6
    }

    /// Per-phase durations (ns): first differences of
    /// [`BackendReport::phase_end_ns`].
    pub fn phase_ns(&self) -> Vec<u64> {
        let mut prev = 0;
        self.phase_end_ns
            .iter()
            .map(|&end| {
                let d = end.saturating_sub(prev);
                prev = end;
                d
            })
            .collect()
    }
}

/// A way to price a schedule on a topology under a machine calibration.
///
/// Implementations must be deterministic functions of their inputs and
/// must never panic on well-formed inputs; malformed requests (size
/// mismatches, self-messages smuggled into a hand-built schedule) surface
/// as [`SimError`]s.
pub trait SimBackend: Send + Sync {
    /// Stable backend label ("des", "analytic") for reports and env
    /// selection.
    fn name(&self) -> &'static str;

    /// Estimate executing `schedule` for `com` on `topo` under `scheme`.
    ///
    /// # Errors
    ///
    /// [`SimError::BadParams`] for invalid parameters or size mismatches;
    /// [`SimError::ProgramError`] for malformed schedules; the DES
    /// backend additionally propagates anything [`simnet::simulate`] can
    /// report (deadlock, event-budget exhaustion).
    fn estimate(
        &self,
        params: &MachineParams,
        topo: &dyn Topology,
        com: &CommMatrix,
        schedule: &Schedule,
        scheme: Scheme,
    ) -> Result<BackendReport, SimError>;

    /// [`SimBackend::estimate`] under a [`LinkCostModel`]: per-link
    /// latency/bandwidth costs ride on every transfer price, and routes
    /// crossing a down link detour or fail with [`SimError::LinkDown`].
    ///
    /// `LinkCostModel::Uniform` must be byte-identical to `estimate` —
    /// the default implementation guarantees that by delegating, and
    /// rejects every other model so third-party backends that never
    /// learned about link costs cannot silently misprice them.
    ///
    /// # Errors
    ///
    /// Everything [`SimBackend::estimate`] reports, plus
    /// [`SimError::LinkDown`] for stranded transfers.
    fn estimate_costed(
        &self,
        params: &MachineParams,
        cost: &LinkCostModel,
        topo: &dyn Topology,
        com: &CommMatrix,
        schedule: &Schedule,
        scheme: Scheme,
    ) -> Result<BackendReport, SimError> {
        if cost.is_uniform() {
            return self.estimate(params, topo, com, schedule, scheme);
        }
        Err(SimError::BadParams(format!(
            "backend {:?} does not support link-cost model {cost}",
            self.name()
        )))
    }
}

/// Shared input validation: the schedule must belong to the matrix and
/// the matrix must fit the machine.
fn check_shapes<T: Topology + ?Sized>(
    topo: &T,
    com: &CommMatrix,
    schedule: &Schedule,
) -> Result<(), SimError> {
    if com.n() != schedule.n() {
        return Err(SimError::BadParams(format!(
            "schedule spans {} nodes but the matrix spans {}",
            schedule.n(),
            com.n()
        )));
    }
    if com.n() != topo.num_nodes() {
        return Err(SimError::BadParams(format!(
            "matrix spans {} nodes but the topology has {}",
            com.n(),
            topo.num_nodes()
        )));
    }
    Ok(())
}

/// Price one message under `cost`: the uniform fast path is *exactly*
/// the legacy `transfer_ns(bytes, hops)` arithmetic (no route
/// materialized, `None`), the costed path resolves the route (detouring
/// around down links where the fabric permits) and returns it so the
/// caller can claim the actual links travelled.
///
/// # Errors
///
/// [`SimError::LinkDown`] when the route crosses a down link with no
/// detour.
fn priced_route<T: Topology + ?Sized>(
    params: &MachineParams,
    cost: &LinkCostModel,
    topo: &T,
    src: NodeId,
    dst: NodeId,
    bytes: u32,
) -> Result<(u64, Option<Path>), SimError> {
    if cost.is_uniform() {
        return Ok((params.transfer_ns(bytes, topo.hops(src, dst)), None));
    }
    let path = resolve_route(topo, cost, src, dst)?;
    let busy = cost.transfer_ns(params, bytes, path.links());
    Ok((busy, Some(path)))
}

// ---------------------------------------------------------------------------
// Discrete-event backend
// ---------------------------------------------------------------------------

/// The exact backend: compile to per-node programs and replay on the
/// discrete-event engine, with phase boundaries read off the trace.
///
/// This is the same code path [`crate::ExperimentRunner`] fast-paths for
/// its default measurements (minus the trace); makespans agree exactly.
#[derive(Clone, Copy, Debug, Default)]
pub struct DesBackend {
    /// Engine execution mode: sequential (exact, the default) or the
    /// parallel conservative-lookahead mode ([`simnet::ExecMode`]).
    pub exec: ExecMode,
}

impl DesBackend {
    /// Backend running the engine under `exec` — used by the scale bench
    /// and by [`SimMode::from_env`]-driven selection.
    pub fn with_exec(exec: ExecMode) -> Self {
        DesBackend { exec }
    }
}

impl SimBackend for DesBackend {
    fn name(&self) -> &'static str {
        "des"
    }

    fn estimate(
        &self,
        params: &MachineParams,
        topo: &dyn Topology,
        com: &CommMatrix,
        schedule: &Schedule,
        scheme: Scheme,
    ) -> Result<BackendReport, SimError> {
        self.estimate_costed(params, &LinkCostModel::Uniform, topo, com, schedule, scheme)
    }

    fn estimate_costed(
        &self,
        params: &MachineParams,
        cost: &LinkCostModel,
        topo: &dyn Topology,
        com: &CommMatrix,
        schedule: &Schedule,
        scheme: Scheme,
    ) -> Result<BackendReport, SimError> {
        check_shapes(topo, com, schedule)?;
        let programs = compile(com, schedule, scheme);
        let (report, trace) =
            simnet::simulate_traced_costed_with(topo, params, cost, programs, self.exec)?;
        let phases = schedule.num_phases().max(1);
        let mut phase_end_ns = vec![0u64; phases];
        // Requested/Started per (src, dst, tag): blocked-start detection.
        // `send_overhead_ns` of request-to-start latency is the normal
        // initiation cost, not contention.
        let mut requested: std::collections::HashMap<(u32, u32, u32), u64> =
            std::collections::HashMap::new();
        let mut contended_phase = vec![false; phases];
        for ev in &trace {
            let key = (ev.src.0, ev.dst.0, ev.tag.0);
            // Data traffic carries even tags (`data_tag`); ready signals
            // are odd and do not mark phase completion.
            let phase = (ev.tag.0 as usize / 2).min(phases - 1);
            match ev.kind {
                TraceKind::Requested => {
                    requested.entry(key).or_insert(ev.time_ns);
                }
                TraceKind::Started => {
                    if ev.tag.0 % 2 == 0 {
                        if let Some(&req) = requested.get(&key) {
                            if ev.time_ns > req + params.send_overhead_ns {
                                contended_phase[phase] = true;
                            }
                        }
                    }
                }
                TraceKind::Finished | TraceKind::Copied => {
                    if ev.tag.0 % 2 == 0 {
                        phase_end_ns[phase] = phase_end_ns[phase].max(ev.time_ns);
                    }
                }
                TraceKind::Buffered | TraceKind::NodeDone => {}
            }
        }
        // Phases with no traffic complete with their predecessor.
        let mut prev = 0;
        for end in &mut phase_end_ns {
            *end = (*end).max(prev);
            prev = *end;
        }
        Ok(BackendReport {
            makespan_ns: report.makespan_ns,
            phase_end_ns,
            contention: ContentionStats {
                max_engine_busy_ns: report
                    .stats
                    .nodes
                    .iter()
                    .map(|s| s.engine_busy_ns)
                    .max()
                    .unwrap_or(0),
                max_link_busy_ns: report.stats.link_busy_ns_max,
                contended_transfers: report.stats.transfers_blocked,
                contended_phases: contended_phase.iter().filter(|&&c| c).count(),
            },
        })
    }
}

// ---------------------------------------------------------------------------
// Analytic backend
// ---------------------------------------------------------------------------

/// The fast backend: contention-aware occupancy arithmetic, no events.
///
/// The model (equations in `docs/ARCHITECTURE.md`):
///
/// * Every message is priced like the event engine prices its circuit:
///   `busy = transfer_ns(bytes, hops)`; a fused S1 exchange costs
///   `exchange_sync_ns + max(both directions)` and claims both circuits.
/// * **Async (AC) and phased-S2** schedules issue all sends up front, so
///   the whole run is one resource pool: the makespan is the slowest
///   critical transfer or the most-occupied engine/port/link, whichever
///   dominates, with software leads mirroring the compiled programs'
///   post/send initiation times. Phase ends are cumulative prefix
///   estimates of the same pool.
/// * **Phased-S1** schedules rendezvous per phase, so phases sum: each
///   phase is its own pool; the first active phase pays the full
///   ready-handshake (`recv_post + 2·send_overhead + transfer_ns(0)`),
///   later phases only the pipelined send initiation (the double
///   buffering of [`crate::compile`]'s S1 emitter).
///
/// On schedules whose phases neither share endpoints nor links the pool
/// maxima collapse to the exact event-engine answer — the conformance
/// suite pins that class bit-for-bit.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnalyticBackend {
    /// Resource-pool layout ([`simnet::PoolMode`]): dense vectors,
    /// traffic-sized sparse tables, or the size-based automatic pick.
    /// The layout never changes estimates — the differential suite pins
    /// dense = sparse bit-for-bit — only memory and topology-size cost.
    pub pool: PoolMode,
}

impl AnalyticBackend {
    /// Backend pricing pools under `pool` — used by the scale bench and
    /// by [`SimMode::from_env`]-driven selection.
    pub fn with_pool(pool: PoolMode) -> Self {
        AnalyticBackend { pool }
    }

    /// Reject self-pairs a hand-assembled schedule could smuggle past the
    /// matrix (which forbids diagonal entries).
    fn check_phases(schedule: &Schedule) -> Result<(), SimError> {
        for pm in schedule.phases() {
            for (src, dst) in pm.pairs() {
                if src == dst {
                    return Err(SimError::ProgramError {
                        node: src.index(),
                        msg: "self-directed message in a schedule phase".into(),
                    });
                }
            }
        }
        Ok(())
    }

    /// AC / phased-S2 pool estimate (see the type-level docs).
    ///
    /// `ramped` controls the send-initiation lead. Under S2 the j-th
    /// *phase* in which a node sends is a label-free quantity, so its
    /// send leads ramp `(j + 1) · send_overhead` exactly like the
    /// compiled program requests them. An async (AC) program's issue
    /// positions follow row-major destination order, which a node
    /// relabeling permutes — so async pools charge every send the flat
    /// first-send lead instead, keeping the estimate invariant under
    /// topology automorphisms (the metamorphic suite pins that) at the
    /// cost of a small, degree-bounded undershoot.
    fn estimate_pool<T: Topology + ?Sized>(
        &self,
        params: &MachineParams,
        cost: &LinkCostModel,
        topo: &T,
        com: &CommMatrix,
        phases: &[Vec<(NodeId, NodeId)>],
        ramped: bool,
    ) -> Result<BackendReport, SimError> {
        let n = com.n();
        // Posts precede sends in both the AC and the S2 program shape:
        // the first send is requested at in_degree * recv_post +
        // send_overhead.
        let mut in_degree = vec![0u64; n];
        for (_, dst, _) in com.messages() {
            in_degree[dst.index()] += 1;
        }
        let mut sends_before = vec![0u64; n];
        let mut pool = LoadModel::with_mode(topo, params.ports, self.pool);
        let mut phase_end_ns = Vec::with_capacity(phases.len());
        let mut contended_transfers = 0u64;
        let mut contended_phases = 0usize;
        for phase in phases {
            let mut phase_contended = false;
            for &(src, dst) in phase {
                let bytes = com.get(src.index(), dst.index());
                let (busy_ns, path) = priced_route(params, cost, topo, src, dst, bytes)?;
                let j = if ramped { sends_before[src.index()] } else { 0 };
                sends_before[src.index()] += 1;
                let spec = TransferSpec {
                    src,
                    dst,
                    busy_ns,
                    lead_ns: in_degree[src.index()] * params.recv_post_ns
                        + (j + 1) * params.send_overhead_ns,
                    fused: false,
                };
                // Costed transfers claim the links they actually travel
                // (a detour is longer than the nominal route).
                let shared = match &path {
                    None => pool.add(topo, spec),
                    Some(p) => pool.add_with_route(spec, p.links()),
                };
                if shared {
                    contended_transfers += 1;
                    phase_contended = true;
                }
            }
            contended_phases += usize::from(phase_contended);
            phase_end_ns.push(pool.makespan_ns());
        }
        Ok(BackendReport {
            makespan_ns: pool.makespan_ns(),
            phase_end_ns,
            contention: ContentionStats {
                max_engine_busy_ns: pool.max_engine_ns(),
                max_link_busy_ns: pool.max_link_ns(),
                contended_transfers,
                contended_phases,
            },
        })
    }

    /// Phased-S1 estimate: a max-plus recurrence over node and link
    /// availability times.
    ///
    /// S1 couples nodes *pairwise* per phase (rendezvous), not globally:
    /// a node silent in phase `k` sails straight into phase `k+1`, so
    /// sparse phases of disjoint pairs overlap freely in the event engine
    /// (LP's many XOR phases live off this). Summing per-phase makespans
    /// would charge a barrier that does not exist; instead each transfer
    /// starts when its two endpoints and every link of its circuit are
    /// free:
    ///
    /// ```text
    /// start = max(t[src], t[dst], link_free[route...]) + lead
    /// t[src] = t[dst] = link_free[route...] = start + busy
    /// ```
    ///
    /// — still pure arithmetic over occupancy times, no events.
    ///
    /// The recurrence serializes pessimistically on *chained* phases
    /// (0→1, 1→2, … builds an O(n) dependency chain the engine's
    /// arbitration actually resolves as interleaved ~2-transfer engine
    /// loads), while the per-phase occupancy pool
    /// (`Σ_k max_resource occupancy_k`) charges a barrier that sparse
    /// disjoint phases (LP's XOR classes) do not have. Each is an
    /// upper-bound-style schedule the engine never does worse than
    /// *both* of, so the estimate takes the phase-wise minimum of the
    /// two. For a single contention-free phase both collapse to
    /// `lead + busy`, the event engine's exact answer.
    fn estimate_s1<T: Topology + ?Sized>(
        &self,
        params: &MachineParams,
        cost: &LinkCostModel,
        topo: &T,
        com: &CommMatrix,
        schedule: &Schedule,
    ) -> Result<BackendReport, SimError> {
        let first_active = schedule.phases().iter().position(|pm| !pm.is_empty());
        let n = com.n();
        let mut node_free = vec![0u64; n];
        let mut link_free = vec![0u64; topo.link_count()];
        // Cross-phase busy totals, for the contention indicators (the
        // event engine's per-node `engine_busy_ns` analogue).
        let mut engine_busy = vec![0u64; n];
        let mut link_busy = vec![0u64; topo.link_count()];
        let mut claims = Vec::new();
        let mut rev_scratch = Vec::new();
        let mut phase_model = LoadModel::with_mode(topo, params.ports, self.pool);
        let mut phase_end_ns = Vec::with_capacity(schedule.num_phases());
        let mut chain_ns = 0u64; // max-plus running makespan
        let mut sum_ns = 0u64; // per-phase pool running sum
        let mut contended_transfers = 0u64;
        let mut contended_phases = 0usize;
        for (k, pm) in schedule.phases().iter().enumerate() {
            phase_model.reset();
            let mut phase_contended = false;
            for (src, dst) in pm.pairs() {
                claims.clear();
                let spec = if pm.is_exchange_pair(src) {
                    // Each reciprocal pair fuses into one rendezvous
                    // transfer; account it once, from its lower endpoint.
                    if src.0 > dst.0 {
                        continue;
                    }
                    let ab = com.get(src.index(), dst.index());
                    let ba = com.get(dst.index(), src.index());
                    let busy_ns = if cost.is_uniform() {
                        let fwd = params.transfer_ns(ab, topo.hops(src, dst));
                        let rev = params.transfer_ns(ba, topo.hops(dst, src));
                        params.exchange_sync_ns + fwd.max(rev)
                    } else {
                        // Costed routes may detour around dead links, so
                        // both directions resolve explicitly and their
                        // actual circuits become the claims.
                        let fwd_path = resolve_route(topo, cost, src, dst)?;
                        let rev_path = resolve_route(topo, cost, dst, src)?;
                        claims.extend_from_slice(fwd_path.links());
                        claims.extend_from_slice(rev_path.links());
                        let fwd = cost.transfer_ns(params, ab, fwd_path.links());
                        let rev = cost.transfer_ns(params, ba, rev_path.links());
                        params.exchange_sync_ns + fwd.max(rev)
                    };
                    // One fused spec covers both port models: the engine
                    // fuses the pair into a single rendezvous transfer
                    // under unified ports, and runs the directions as two
                    // concurrent sync-paying transfers under split ports
                    // — either way the pair occupies both circuits and
                    // completes at `sync + max(fwd, rev)` after the
                    // rendezvous, and `LoadModel` claims the endpoints
                    // per the active port model.
                    TransferSpec {
                        src,
                        dst,
                        busy_ns,
                        lead_ns: 0,
                        fused: true,
                    }
                } else {
                    // One-way message under loose synchrony: the receiver
                    // posts and signals ready, the sender transmits on the
                    // signal. The handshake of phase k+1 is prepared
                    // during phase k (double buffering), so only the
                    // first active phase pays it in full.
                    let bytes = com.get(src.index(), dst.index());
                    let (busy_ns, lead_ns) = if cost.is_uniform() {
                        let lead = if Some(k) == first_active {
                            params.recv_post_ns
                                + 2 * params.send_overhead_ns
                                + params.transfer_ns(0, topo.hops(dst, src))
                        } else {
                            params.send_overhead_ns
                        };
                        (params.transfer_ns(bytes, topo.hops(src, dst)), lead)
                    } else {
                        let path = resolve_route(topo, cost, src, dst)?;
                        claims.extend_from_slice(path.links());
                        let lead = if Some(k) == first_active {
                            // The zero-byte ready signal travels the
                            // reverse circuit at its costed price.
                            let rev_path = resolve_route(topo, cost, dst, src)?;
                            params.recv_post_ns
                                + 2 * params.send_overhead_ns
                                + cost.transfer_ns(params, 0, rev_path.links())
                        } else {
                            params.send_overhead_ns
                        };
                        (cost.transfer_ns(params, bytes, path.links()), lead)
                    };
                    TransferSpec {
                        src,
                        dst,
                        busy_ns,
                        lead_ns,
                        fused: false,
                    }
                };

                // One routing pass covers the max-plus step, the phase
                // pool, and the busy totals. (Costed specs filled their
                // claims while resolving routes above.)
                if cost.is_uniform() {
                    simnet::analytic::route_claims(topo, &spec, &mut claims, &mut rev_scratch);
                }

                // The max-plus step.
                let mut start = node_free[spec.src.index()].max(node_free[spec.dst.index()]);
                for l in &claims {
                    start = start.max(link_free[l.index()]);
                }
                let end = start + spec.lead_ns + spec.busy_ns;
                node_free[spec.src.index()] = end;
                node_free[spec.dst.index()] = end;
                for l in &claims {
                    link_free[l.index()] = end;
                }
                chain_ns = chain_ns.max(end);

                // Busy totals (contention indicators).
                engine_busy[spec.src.index()] += spec.busy_ns;
                engine_busy[spec.dst.index()] += spec.busy_ns;
                for l in &claims {
                    link_busy[l.index()] += spec.busy_ns;
                }

                if phase_model.add_with_route(spec, &claims) {
                    contended_transfers += 1;
                    phase_contended = true;
                }
            }
            contended_phases += usize::from(phase_contended);
            sum_ns += phase_model.makespan_ns();
            phase_end_ns.push(chain_ns.min(sum_ns));
        }
        let makespan_ns = chain_ns.min(sum_ns);
        Ok(BackendReport {
            makespan_ns,
            phase_end_ns,
            contention: ContentionStats {
                max_engine_busy_ns: engine_busy.iter().copied().max().unwrap_or(0),
                max_link_busy_ns: link_busy.iter().copied().max().unwrap_or(0),
                contended_transfers,
                contended_phases,
            },
        })
    }
}

impl AnalyticBackend {
    /// [`SimBackend::estimate`] for any (possibly unsized) topology type —
    /// the generic entry point the experiment runner's hot path uses; the
    /// trait method delegates here.
    ///
    /// # Errors
    ///
    /// See [`SimBackend::estimate`].
    pub fn estimate_on<T: Topology + ?Sized>(
        &self,
        params: &MachineParams,
        topo: &T,
        com: &CommMatrix,
        schedule: &Schedule,
        scheme: Scheme,
    ) -> Result<BackendReport, SimError> {
        self.estimate_on_costed(params, &LinkCostModel::Uniform, topo, com, schedule, scheme)
    }

    /// [`AnalyticBackend::estimate_on`] under a [`LinkCostModel`]: the
    /// analytic model prices every pool occupancy per-link, routing
    /// around dead links where the topology offers a detour.
    ///
    /// The `uniform` model takes the exact legacy arithmetic path, so
    /// its estimates are byte-identical to [`AnalyticBackend::estimate_on`].
    ///
    /// # Errors
    ///
    /// See [`SimBackend::estimate`]; additionally [`SimError::LinkDown`]
    /// when a transfer's route crosses a dead link and no detour exists.
    pub fn estimate_on_costed<T: Topology + ?Sized>(
        &self,
        params: &MachineParams,
        cost: &LinkCostModel,
        topo: &T,
        com: &CommMatrix,
        schedule: &Schedule,
        scheme: Scheme,
    ) -> Result<BackendReport, SimError> {
        params.validate().map_err(SimError::BadParams)?;
        check_shapes(topo, com, schedule)?;
        Self::check_phases(schedule)?;
        match schedule.kind() {
            ScheduleKind::Async => {
                // All messages form one pool (the AC program blasts them
                // without ordering constraints).
                let all: Vec<(NodeId, NodeId)> = com.messages().map(|(s, d, _)| (s, d)).collect();
                self.estimate_pool(params, cost, topo, com, &[all], false)
            }
            ScheduleKind::Phased => match scheme {
                Scheme::S2 => {
                    let phases: Vec<Vec<(NodeId, NodeId)>> = schedule
                        .phases()
                        .iter()
                        .map(|pm| pm.pairs().collect())
                        .collect();
                    self.estimate_pool(params, cost, topo, com, &phases, true)
                }
                Scheme::S1 => self.estimate_s1(params, cost, topo, com, schedule),
            },
        }
    }
}

impl SimBackend for AnalyticBackend {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn estimate(
        &self,
        params: &MachineParams,
        topo: &dyn Topology,
        com: &CommMatrix,
        schedule: &Schedule,
        scheme: Scheme,
    ) -> Result<BackendReport, SimError> {
        self.estimate_on(params, topo, com, schedule, scheme)
    }

    fn estimate_costed(
        &self,
        params: &MachineParams,
        cost: &LinkCostModel,
        topo: &dyn Topology,
        com: &CommMatrix,
        schedule: &Schedule,
        scheme: Scheme,
    ) -> Result<BackendReport, SimError> {
        self.estimate_on_costed(params, cost, topo, com, schedule, scheme)
    }
}

// ---------------------------------------------------------------------------
// Selection
// ---------------------------------------------------------------------------

static DES: DesBackend = DesBackend {
    exec: ExecMode::Sequential,
};
static ANALYTIC: AnalyticBackend = AnalyticBackend {
    pool: PoolMode::Auto,
};

/// Engine tuning knobs orthogonal to [`BackendKind`]: how the analytic
/// model lays out its pools and how the event engine executes. Parsed
/// from the `IPSC_SIM_MODE` environment variable and applied via
/// [`SimMode::des`] / [`SimMode::analytic`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimMode {
    /// Analytic pool layout (`auto` / `dense` / `sparse`).
    pub pool: PoolMode,
    /// Event-engine execution (`seq` / `parallel` / `parallel:<n>`).
    pub exec: ExecMode,
}

impl SimMode {
    /// Parse a comma-separated mode list: any of `auto`, `dense`,
    /// `sparse` (pool layout) and `seq`, `parallel`, `parallel:<n>`
    /// (engine execution). Later tokens win within each axis.
    /// Case-sensitive, by design — env typos should fail loudly.
    ///
    /// `parallel` without a thread count uses the `IPSC_THREADS`
    /// convention (falling back to the host's available parallelism).
    ///
    /// # Errors
    ///
    /// An unrecognized token, echoed back with the accepted set.
    pub fn parse(s: &str) -> Result<SimMode, String> {
        let mut mode = SimMode::default();
        for tok in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match tok {
                "auto" => mode.pool = PoolMode::Auto,
                "dense" => mode.pool = PoolMode::Dense,
                "sparse" => mode.pool = PoolMode::Sparse,
                "seq" => mode.exec = ExecMode::Sequential,
                "parallel" => {
                    mode.exec = ExecMode::Parallel {
                        threads: crate::experiment::default_threads(),
                    }
                }
                _ => match tok.strip_prefix("parallel:").map(str::parse) {
                    Some(Ok(threads)) if threads > 0 => mode.exec = ExecMode::Parallel { threads },
                    _ => {
                        return Err(format!(
                            "IPSC_SIM_MODE token {tok:?} is not a mode; use \
                             \"auto\"/\"dense\"/\"sparse\" and/or \
                             \"seq\"/\"parallel\"/\"parallel:<n>\""
                        ))
                    }
                },
            }
        }
        Ok(mode)
    }

    /// Mode from the `IPSC_SIM_MODE` environment variable; unset or
    /// empty means the defaults (auto pools, sequential engine).
    ///
    /// # Errors
    ///
    /// An unrecognized or non-UTF-8 value, echoed back.
    pub fn from_env() -> Result<SimMode, String> {
        match std::env::var("IPSC_SIM_MODE") {
            Err(std::env::VarError::NotPresent) => Ok(SimMode::default()),
            Err(std::env::VarError::NotUnicode(v)) => Err(format!(
                "IPSC_SIM_MODE={v:?} is not valid UTF-8; use e.g. \"sparse,parallel:8\""
            )),
            Ok(v) => SimMode::parse(&v),
        }
    }

    /// The event-engine backend under this mode's execution setting.
    pub fn des(self) -> DesBackend {
        DesBackend::with_exec(self.exec)
    }

    /// The analytic backend under this mode's pool layout.
    pub fn analytic(self) -> AnalyticBackend {
        AnalyticBackend::with_pool(self.pool)
    }
}

/// Which backend prices a measurement. `Copy`-cheap so runners, grid
/// columns, and records can carry it by value.
///
/// Runner-level selection is *intentionally closed* over this enum:
/// cells stay comparable, hashable, and stably labeled (`des` /
/// `analytic` in grid column labels and reports), and the experiment
/// hot path keeps its zero-cost dispatch. A third-party [`SimBackend`]
/// implementation is still first-class for estimation — call its
/// [`SimBackend::estimate`] directly (the conformance harness drives
/// both built-ins exactly that way); it just cannot masquerade as a
/// registered backend inside [`crate::ExperimentRunner`] /
/// [`crate::ExperimentGrid`] cells.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The exact discrete-event engine ([`DesBackend`]).
    #[default]
    Des,
    /// The occupancy model ([`AnalyticBackend`]).
    Analytic,
}

impl BackendKind {
    /// Both backends, DES first.
    pub fn all() -> [BackendKind; 2] {
        [BackendKind::Des, BackendKind::Analytic]
    }

    /// Stable label ("des" / "analytic").
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Des => "des",
            BackendKind::Analytic => "analytic",
        }
    }

    /// The backend implementation.
    pub fn backend(self) -> &'static dyn SimBackend {
        match self {
            BackendKind::Des => &DES,
            BackendKind::Analytic => &ANALYTIC,
        }
    }

    /// Parse a label (as accepted by the `IPSC_BACKEND` environment
    /// variable): `des`/`sim`/`event` for the event engine, `analytic`
    /// for the model. Case-sensitive, by design — env typos should fail
    /// loudly, not fall back.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "des" | "sim" | "event" => Some(BackendKind::Des),
            "analytic" => Some(BackendKind::Analytic),
            _ => None,
        }
    }

    /// Backend selection from the `IPSC_BACKEND` environment variable;
    /// unset or empty means [`BackendKind::Des`].
    ///
    /// # Errors
    ///
    /// An unrecognized value, echoed back with the accepted set.
    pub fn from_env() -> Result<BackendKind, String> {
        match std::env::var("IPSC_BACKEND") {
            Err(std::env::VarError::NotPresent) => Ok(BackendKind::Des),
            // A present-but-garbled value must fail like any other typo,
            // not silently price the sweep on the default substrate.
            Err(std::env::VarError::NotUnicode(v)) => Err(format!(
                "IPSC_BACKEND={v:?} is not valid UTF-8; use \"des\" or \"analytic\""
            )),
            Ok(v) if v.is_empty() => Ok(BackendKind::Des),
            Ok(v) => BackendKind::parse(&v).ok_or(format!(
                "IPSC_BACKEND={v:?} is not a backend; use \"des\" or \"analytic\""
            )),
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsched::{ac, lp, registry, rs_nl};
    use hypercube::Hypercube;

    #[test]
    fn kind_roundtrips_and_env_defaults() {
        for kind in BackendKind::all() {
            assert_eq!(BackendKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.backend().name(), kind.label());
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(BackendKind::parse("sim"), Some(BackendKind::Des));
        assert_eq!(BackendKind::parse("DES"), None);
        assert_eq!(BackendKind::default(), BackendKind::Des);
    }

    #[test]
    fn both_backends_reject_shape_mismatches() {
        let cube = Hypercube::new(3);
        let com = CommMatrix::new(16); // wrong size for the 8-node cube
        let schedule = ac(&com);
        let params = MachineParams::ipsc860();
        for kind in BackendKind::all() {
            let err = kind
                .backend()
                .estimate(&params, &cube, &com, &schedule, Scheme::S2)
                .unwrap_err();
            assert!(matches!(err, SimError::BadParams(_)), "{kind}: {err}");
        }
        // Schedule from a different matrix size.
        let com8 = CommMatrix::new(8);
        let foreign = ac(&CommMatrix::new(16));
        for kind in BackendKind::all() {
            let err = kind
                .backend()
                .estimate(&params, &cube, &com8, &foreign, Scheme::S2)
                .unwrap_err();
            assert!(matches!(err, SimError::BadParams(_)), "{kind}: {err}");
        }
    }

    #[test]
    fn analytic_rejects_invalid_params_like_the_engine() {
        let cube = Hypercube::new(3);
        let com = CommMatrix::new(8);
        let params = MachineParams {
            long_per_byte_ns: -1.0,
            ..MachineParams::ipsc860()
        };
        let err = AnalyticBackend::default()
            .estimate(&params, &cube, &com, &ac(&com), Scheme::S2)
            .unwrap_err();
        assert!(matches!(err, SimError::BadParams(_)), "{err}");
    }

    #[test]
    fn analytic_rejects_self_directed_phases() {
        use commsched::{PartialPermutation, ScheduleKind, SchedulerKind};
        let cube = Hypercube::new(3);
        let com = CommMatrix::new(8);
        let mut pm = PartialPermutation::empty(8);
        pm.assign(NodeId(2), NodeId(2));
        let hostile =
            Schedule::from_parts(ScheduleKind::Phased, SchedulerKind::RsN, 8, vec![pm], 0, 0);
        let err = AnalyticBackend::default()
            .estimate(&MachineParams::ipsc860(), &cube, &com, &hostile, Scheme::S2)
            .unwrap_err();
        assert!(
            matches!(err, SimError::ProgramError { node: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn empty_matrix_estimates_to_zero_on_both_backends() {
        let cube = Hypercube::new(3);
        let com = CommMatrix::new(8);
        let params = MachineParams::ipsc860();
        for kind in BackendKind::all() {
            for (schedule, scheme) in [(ac(&com), Scheme::S2), (lp(&com), Scheme::S1)] {
                let r = kind
                    .backend()
                    .estimate(&params, &cube, &com, &schedule, scheme)
                    .unwrap();
                assert_eq!(r.makespan_ns, 0, "{kind}");
                assert_eq!(r.contention, ContentionStats::default(), "{kind}");
            }
        }
    }

    #[test]
    fn single_message_agrees_exactly_across_backends() {
        // The contention-free anchor: one message, any schedule family.
        let cube = Hypercube::new(4);
        let params = MachineParams::ipsc860();
        let mut com = CommMatrix::new(16);
        com.set(3, 9, 4096);
        let hops = 2; // 3 ^ 9 = 0b1010
        for &entry in registry::all() {
            let schedule = entry.schedule(&com, &cube, 1);
            let scheme = Scheme::for_scheduler(entry);
            let des = DesBackend::default()
                .estimate(&params, &cube, &com, &schedule, scheme)
                .unwrap();
            let ana = AnalyticBackend::default()
                .estimate(&params, &cube, &com, &schedule, scheme)
                .unwrap();
            assert_eq!(
                des.makespan_ns,
                ana.makespan_ns,
                "{} disagrees: des={} analytic={}",
                entry.name(),
                des.makespan_ns,
                ana.makespan_ns
            );
            assert!(!des.phase_end_ns.is_empty());
            assert_eq!(ana.phase_end_ns.len(), schedule.num_phases().max(1));
        }
        // And the value itself is the closed form.
        let schedule = ac(&com);
        let r = AnalyticBackend::default()
            .estimate(&params, &cube, &com, &schedule, Scheme::S2)
            .unwrap();
        assert_eq!(
            r.makespan_ns,
            params.send_overhead_ns + params.transfer_ns(4096, hops)
        );
    }

    #[test]
    fn phase_profile_is_monotone_and_bounded() {
        let cube = Hypercube::new(4);
        let com = workloads::random_dregular(16, 4, 2048, 9);
        let params = MachineParams::ipsc860();
        let schedule = rs_nl(&com, &cube, 9);
        for kind in BackendKind::all() {
            let r = kind
                .backend()
                .estimate(&params, &cube, &com, &schedule, Scheme::S1)
                .unwrap();
            assert_eq!(r.phase_end_ns.len(), schedule.num_phases());
            let mut prev = 0;
            for &end in &r.phase_end_ns {
                assert!(end >= prev, "{kind}: non-monotone profile");
                prev = end;
            }
            assert!(prev <= r.makespan_ns, "{kind}");
            assert_eq!(r.phase_ns().iter().sum::<u64>(), prev, "{kind}");
            assert!(r.contention.max_engine_busy_ns > 0, "{kind}");
        }
    }

    #[test]
    fn analytic_flags_contention_where_the_schedule_has_it() {
        let cube = Hypercube::new(3);
        let params = MachineParams::ipsc860();
        // Bit-reverse-style collisions: AC over a dense matrix contends.
        let com = workloads::random_dense(8, 4, 8192, 3);
        let contended = AnalyticBackend::default()
            .estimate(&params, &cube, &com, &ac(&com), Scheme::S2)
            .unwrap();
        assert!(contended.contention.contended_transfers > 0);
        assert!(contended.contention.contended_phases >= 1);
        // A single-message matrix does not.
        let mut lone = CommMatrix::new(8);
        lone.set(0, 5, 512);
        let free = AnalyticBackend::default()
            .estimate(&params, &cube, &lone, &ac(&lone), Scheme::S2)
            .unwrap();
        assert_eq!(free.contention.contended_transfers, 0);
        assert_eq!(free.contention.contended_phases, 0);
    }

    #[test]
    fn des_backend_matches_the_runner_fast_path() {
        // DesBackend must report exactly what the untraced simulate
        // reports — the runner's default measurements are its numbers.
        let cube = Hypercube::new(4);
        let com = workloads::random_dregular(16, 3, 1024, 4);
        let params = MachineParams::ipsc860();
        let schedule = rs_nl(&com, &cube, 4);
        let direct = crate::run_schedule(&cube, &params, &com, &schedule, Scheme::S1).unwrap();
        let via_backend = DesBackend::default()
            .estimate(&params, &cube, &com, &schedule, Scheme::S1)
            .unwrap();
        assert_eq!(direct.makespan_ns, via_backend.makespan_ns);
    }
}
