use commsched::{Scheduler, SchedulerKind};

/// The two communication schemes evaluated in Section 6 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Loose synchrony: for every phased message the receiver posts its
    /// application buffer and sends a 0-byte **ready** signal; the sender
    /// transmits only after the signal, so data always lands directly in
    /// the application buffer (no system-buffer copy). Reciprocal pairs of
    /// a phase are fused into concurrent pairwise exchanges — the iPSC/860
    /// feature LP and RS_NL exploit.
    S1,
    /// Post-everything-then-blast: every node posts all of its receive
    /// buffers up front, issues all of its sends asynchronously in schedule
    /// order, and finally confirms all arrivals. No per-message handshake,
    /// no exchange fusion; the schedule contributes ordering only.
    S2,
}

impl Scheme {
    /// The scheme each algorithm used for the paper's reported numbers:
    /// S1 where the algorithm exploits pairwise bidirectional exchange
    /// (LP, RS_NL), S2 otherwise (AC, RS_N).
    pub fn paper_default(kind: SchedulerKind) -> Scheme {
        match kind {
            SchedulerKind::Lp | SchedulerKind::RsNl => Scheme::S1,
            SchedulerKind::Ac | SchedulerKind::RsN => Scheme::S2,
        }
    }

    /// [`Scheme::paper_default`] for a registry entry: variants inherit
    /// the scheme of their family (exchange-fusing families run under S1).
    pub fn for_scheduler(entry: &dyn Scheduler) -> Scheme {
        Scheme::paper_default(entry.family())
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::S1 => "S1",
            Scheme::S2 => "S2",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section6() {
        assert_eq!(Scheme::paper_default(SchedulerKind::Ac), Scheme::S2);
        assert_eq!(Scheme::paper_default(SchedulerKind::Lp), Scheme::S1);
        assert_eq!(Scheme::paper_default(SchedulerKind::RsN), Scheme::S2);
        assert_eq!(Scheme::paper_default(SchedulerKind::RsNl), Scheme::S1);
    }

    #[test]
    fn labels() {
        assert_eq!(Scheme::S1.label(), "S1");
        assert_eq!(Scheme::S2.label(), "S2");
    }

    #[test]
    fn registry_entries_inherit_their_family_scheme() {
        for &entry in commsched::registry::all() {
            assert_eq!(
                Scheme::for_scheduler(entry),
                Scheme::paper_default(entry.family()),
                "{}",
                entry.name()
            );
        }
        let greedy = commsched::registry::find("GREEDY").unwrap();
        assert_eq!(Scheme::for_scheduler(greedy), Scheme::S2);
    }
}
