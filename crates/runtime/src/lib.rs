//! Runtime layer: turns a communication matrix plus a schedule into
//! executable per-node [`simnet::Program`]s and runs experiments.
//!
//! This crate plays the role of the NX message-passing library and the
//! experiment driver in the paper:
//!
//! * [`compile`] implements the two communication schemes of Section 6 —
//!   **S1** (receiver posts its buffer, sends a 0-byte *ready* signal, the
//!   sender transmits on the signal; reciprocal pairs are fused into
//!   concurrent pairwise exchanges) and **S2** (post all receives up front,
//!   send everything in schedule order, confirm at the end). Asynchronous
//!   (AC) schedules compile to the post/send/confirm program of Figure 1.
//! * [`allgather`] implements the *concatenate* operation the paper uses to
//!   replicate every node's send vector before runtime scheduling
//!   (recursive doubling on the hypercube).
//! * [`ExperimentRunner`] reproduces the paper's measurement methodology:
//!   many independently seeded samples per configuration, cost = maximum
//!   time over processors, averaged over samples — fanned out over host
//!   threads.
//! * [`ExperimentRunner::with_cache`] opts the registry-driven paths into
//!   the [`commcache`] schedule cache: repeated *(matrix, topology,
//!   scheduler, seed)* requests are served from a sharded in-memory LRU
//!   (optionally backed by the persistent artifact store) instead of
//!   rescheduling. Caching changes cost, never results — grids are
//!   byte-identical with the cache on and off.
//! * [`grid`] declares whole experiment *grids* — scheduler columns ×
//!   workload points × topologies — and executes every cell on a
//!   work-stealing pool with sample matrices generated once per
//!   `(workload, seed)` point and shared across scheduler columns. The
//!   repro binaries are thin renderers over [`GridResult`]s.
//! * [`backend`] makes the simulation substrate pluggable: a
//!   [`SimBackend`] trait with the exact event engine ([`DesBackend`])
//!   and a fast contention-aware occupancy model ([`AnalyticBackend`]),
//!   selectable per runner ([`ExperimentRunner::with_backend`]), per grid
//!   column ([`grid::GridColumn::with_backend`]), and via the
//!   `IPSC_BACKEND` environment variable in the repro binaries. The two
//!   are validated against each other by a differential conformance
//!   suite.
//!
//! ```
//! use commrt::{run_schedule, Scheme};
//! use commsched::rs_nl;
//! use hypercube::Hypercube;
//! use simnet::MachineParams;
//!
//! let cube = Hypercube::new(4);
//! let com = workloads::random_dense(16, 3, 1024, 7);
//! let schedule = rs_nl(&com, &cube, 7);
//! let report = run_schedule(&cube, &MachineParams::ipsc860(), &com, &schedule, Scheme::S1)
//!     .unwrap();
//! assert!(report.makespan_ns > 0);
//! ```

#![forbid(unsafe_code)]

pub mod allgather;
pub mod backend;
mod compile;
mod experiment;
pub mod grid;
mod report;
mod scheme;

pub use backend::{
    AnalyticBackend, BackendKind, BackendReport, ContentionStats, DesBackend, SimBackend, SimMode,
};
pub use commcache::{CacheConfig, CacheStats, SchedCache};
pub use compile::{compile, compile_ac_send_detect, run_schedule, run_schedule_traced};
pub use experiment::{CellResult, ExperimentRunner};
pub use grid::{ExperimentGrid, GridResult, WorkloadPoint};
pub use report::{
    read_json, write_csv, write_grid_json, write_grid_markdown, write_json, CellRecord,
};
pub use scheme::Scheme;
pub use simnet::{CostModelError, LinkCostModel};
