use std::io::Write;
use std::path::Path;

use crate::CellResult;

/// One row of an experiment output table — serializable for EXPERIMENTS.md
/// and downstream plotting. Compares by value (exact float equality —
/// records are deterministic, so "byte-identical" is the meaningful
/// comparison).
#[derive(Clone, Debug, PartialEq)]
pub struct CellRecord {
    /// Experiment id ("table1", "fig6", ...).
    pub experiment: String,
    /// Algorithm label — a [`commsched::Scheduler::name`] from the
    /// registry ("AC", "LP", "RS_N", "RS_NL", "GREEDY", variants...).
    pub algorithm: String,
    /// Density `d`.
    pub d: usize,
    /// Message size in bytes.
    pub msg_bytes: u32,
    /// Mean communication cost (ms).
    pub comm_ms: f64,
    /// Mean phases ("# iters"; 0 for AC).
    pub phases: f64,
    /// Mean scheduling cost under the i860 model (ms).
    pub comp_ms: f64,
    /// Samples aggregated.
    pub samples: usize,
}

impl CellRecord {
    /// Assemble a record from a measured cell.
    pub fn from_cell(
        experiment: &str,
        algorithm: &str,
        d: usize,
        msg_bytes: u32,
        cell: &CellResult,
    ) -> Self {
        CellRecord {
            experiment: experiment.to_string(),
            algorithm: algorithm.to_string(),
            d,
            msg_bytes,
            comm_ms: cell.comm_ms,
            phases: cell.phases,
            comp_ms: cell.comp_ms,
            samples: cell.samples,
        }
    }

    /// [`CellRecord::from_cell`] labelled with a registry entry's name.
    pub fn from_entry(
        experiment: &str,
        entry: &dyn commsched::Scheduler,
        d: usize,
        msg_bytes: u32,
        cell: &CellResult,
    ) -> Self {
        CellRecord::from_cell(experiment, entry.name(), d, msg_bytes, cell)
    }
}

/// Write records as CSV (with header).
///
/// # Errors
///
/// I/O errors from the filesystem.
pub fn write_csv(path: &Path, records: &[CellRecord]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        out,
        "experiment,algorithm,d,msg_bytes,comm_ms,phases,comp_ms,samples"
    )?;
    for r in records {
        writeln!(
            out,
            "{},{},{},{},{:.4},{:.2},{:.4},{}",
            r.experiment, r.algorithm, r.d, r.msg_bytes, r.comm_ms, r.phases, r.comp_ms, r.samples
        )?;
    }
    out.flush()
}

/// Write records as pretty JSON.
///
/// The workspace builds offline with no serde available, so the (flat,
/// fixed-schema) records are rendered by hand; [`read_json`] parses the
/// same shape back.
///
/// # Errors
///
/// I/O errors from the filesystem.
pub fn write_json(path: &Path, records: &[CellRecord]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut json = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        json.push_str(&format!(
            "  {{\n    \"experiment\": \"{}\",\n    \"algorithm\": \"{}\",\n    \"d\": {},\n    \"msg_bytes\": {},\n    \"comm_ms\": {},\n    \"phases\": {},\n    \"comp_ms\": {},\n    \"samples\": {}\n  }}{comma}\n",
            escape_json(&r.experiment),
            escape_json(&r.algorithm),
            r.d,
            r.msg_bytes,
            r.comm_ms,
            r.phases,
            r.comp_ms,
            r.samples
        ));
    }
    json.push_str("]\n");
    std::fs::write(path, json)
}

/// Write a [`GridResult`] as pretty JSON: the axes (columns, points,
/// topologies), the execution stats (including matrix reuse), and every
/// measured cell with its stable [`crate::grid::CellId`] address.
///
/// Like [`write_json`], the shape is rendered by hand (the workspace
/// builds offline with no serde).
///
/// # Errors
///
/// I/O errors from the filesystem.
///
/// [`GridResult`]: crate::grid::GridResult
pub fn write_grid_json(
    path: &Path,
    experiment: &str,
    grid: &crate::grid::GridResult,
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let stats = grid.stats();
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"experiment\": \"{}\",\n  \"samples\": {},\n",
        escape_json(experiment),
        grid.samples()
    ));
    json.push_str(&format!(
        "  \"stats\": {{\"cells\": {}, \"skipped\": {}, \"tasks\": {}, \"matrices_generated\": {}, \"matrix_requests\": {}}},\n",
        stats.cells, stats.skipped, stats.tasks, stats.matrices_generated, stats.matrix_requests
    ));
    json.push_str("  \"columns\": [");
    for (i, c) in grid.columns().iter().enumerate() {
        let comma = if i + 1 < grid.columns().len() {
            ", "
        } else {
            ""
        };
        json.push_str(&format!(
            "{{\"name\": \"{}\", \"scheme\": \"{}\"}}{comma}",
            escape_json(&c.label()),
            c.scheme().label()
        ));
    }
    json.push_str("],\n  \"points\": [");
    for (i, p) in grid.points().iter().enumerate() {
        let comma = if i + 1 < grid.points().len() {
            ", "
        } else {
            ""
        };
        json.push_str(&format!(
            "{{\"generator\": \"{}\", \"d\": {}, \"msg_bytes\": {}}}{comma}",
            escape_json(p.generator().name()),
            p.d(),
            p.msg_bytes()
        ));
    }
    json.push_str("],\n  \"topologies\": [");
    for (i, t) in grid.topologies().iter().enumerate() {
        let comma = if i + 1 < grid.topologies().len() {
            ", "
        } else {
            ""
        };
        json.push_str(&format!("\"{}\"{comma}", escape_json(t)));
    }
    json.push_str("],\n  \"cells\": [\n");
    let cells: Vec<_> = grid.cells().collect();
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"col\": {}, \"point\": {}, \"topo\": {}, \"algorithm\": \"{}\", \"d\": {}, \"msg_bytes\": {}, \"comm_ms\": {}, \"comm_ms_min\": {}, \"comm_ms_max\": {}, \"phases\": {}, \"comp_ms\": {}, \"exchange_pairs\": {}, \"samples\": {}}}{comma}\n",
            c.id.col,
            c.id.point,
            c.id.topo,
            escape_json(&c.algorithm),
            c.d,
            c.msg_bytes,
            c.result.comm_ms,
            c.result.comm_ms_min,
            c.result.comm_ms_max,
            c.result.phases,
            c.result.comp_ms,
            c.result.exchange_pairs,
            c.result.samples
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, json)
}

/// Write a [`GridResult`] as a Markdown document: one communication-cost
/// table per topology (workload points as rows, scheduler columns as
/// columns), plus a matrix-reuse footer.
///
/// # Errors
///
/// I/O errors from the filesystem.
///
/// [`GridResult`]: crate::grid::GridResult
pub fn write_grid_markdown(
    path: &Path,
    title: &str,
    grid: &crate::grid::GridResult,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut md = format!("# {title}\n\n");
    let _ = writeln!(
        md,
        "Mean communication cost (ms) over {} sample(s) per cell.\n",
        grid.samples()
    );
    for (ti, topo) in grid.topologies().iter().enumerate() {
        let _ = writeln!(md, "## {topo}\n");
        let mut header = String::from("| d | M (bytes) |");
        let mut rule = String::from("|---|---|");
        for c in grid.columns() {
            let _ = write!(header, " {} |", c.label());
            rule.push_str("---|");
        }
        md.push_str(&header);
        md.push('\n');
        md.push_str(&rule);
        md.push('\n');
        for (pi, p) in grid.points().iter().enumerate() {
            let _ = write!(md, "| {} | {} |", p.d(), p.msg_bytes());
            for ci in 0..grid.columns().len() {
                match grid.cell(crate::grid::CellId {
                    col: ci,
                    point: pi,
                    topo: ti,
                }) {
                    Some(cell) => {
                        let _ = write!(md, " {:.2} |", cell.result.comm_ms);
                    }
                    None => md.push_str(" — |"),
                }
            }
            md.push('\n');
        }
        md.push('\n');
    }
    let stats = grid.stats();
    let _ = writeln!(
        md,
        "_{} cells, {} tasks; {} of {} matrix requests served by reuse._",
        stats.cells,
        stats.tasks,
        stats.matrices_reused(),
        stats.matrix_requests
    );
    std::fs::write(path, md)
}

/// Read records written by [`write_json`].
///
/// # Errors
///
/// I/O errors, or [`std::io::ErrorKind::InvalidData`] if the file does not
/// have the `write_json` shape.
pub fn read_json(path: &Path) -> std::io::Result<Vec<CellRecord>> {
    let text = std::fs::read_to_string(path)?;
    parse_records(&text).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{} is not a cell-record JSON file", path.display()),
        )
    })
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Inverse of [`escape_json`] applied to one `"..."` value: strips the
/// enclosing quotes and resolves the `\"`, `\\`, `\n` escapes. `None` on
/// anything malformed.
fn unescape_json(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                _ => return None,
            }
        } else if c == '"' {
            // An unescaped quote inside the value means `inner` ended at an
            // escaped quote and we stripped the wrong delimiter.
            return None;
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Minimal parser for the exact object layout [`write_json`] emits: one
/// `"key": value` pair per line, objects separated by `},`.
fn parse_records(text: &str) -> Option<Vec<CellRecord>> {
    let trimmed = text.trim();
    if !trimmed.starts_with('[') || !trimmed.ends_with(']') {
        return None;
    }
    let mut records = Vec::new();
    let mut fields: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    for line in trimmed.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some((key, value)) = line.split_once(':') {
            let key = key.trim().trim_matches('"').to_string();
            fields.insert(key, value.trim().to_string());
        } else if line == "}" && !fields.is_empty() {
            let take = |k: &str| fields.get(k).cloned();
            records.push(CellRecord {
                experiment: unescape_json(&take("experiment")?)?,
                algorithm: unescape_json(&take("algorithm")?)?,
                d: take("d")?.parse().ok()?,
                msg_bytes: take("msg_bytes")?.parse().ok()?,
                comm_ms: take("comm_ms")?.parse().ok()?,
                phases: take("phases")?.parse().ok()?,
                comp_ms: take("comp_ms")?.parse().ok()?,
                samples: take("samples")?.parse().ok()?,
            });
            fields.clear();
        }
    }
    Some(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> CellRecord {
        CellRecord {
            experiment: "table1".into(),
            algorithm: "RS_NL".into(),
            d: 8,
            msg_bytes: 1024,
            comm_ms: 13.16,
            phases: 11.92,
            comp_ms: 13.56,
            samples: 50,
        }
    }

    #[test]
    fn csv_roundtrip_shape() {
        let dir = std::env::temp_dir().join("ipsc_sched_test_csv");
        let path = dir.join("out.csv");
        write_csv(&path, &[record()]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        assert!(lines.next().unwrap().starts_with("experiment,algorithm"));
        let row = lines.next().unwrap();
        assert!(row.contains("RS_NL"));
        assert!(row.contains("1024"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("ipsc_sched_test_json");
        let path = dir.join("out.json");
        write_json(&path, &[record()]).unwrap();
        let parsed = read_json(&path).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].algorithm, "RS_NL");
        assert_eq!(parsed[0].msg_bytes, 1024);
        assert!((parsed[0].comm_ms - 13.16).abs() < 1e-9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_roundtrip_escapes_quotes_and_newlines() {
        let dir = std::env::temp_dir().join("ipsc_sched_test_json_esc");
        let path = dir.join("out.json");
        let mut rec = record();
        rec.experiment = "line1\nline2".into();
        rec.algorithm = "with \"quote\" and tail\"".into();
        write_json(&path, &[rec.clone()]).unwrap();
        let parsed = read_json(&path).unwrap();
        assert_eq!(parsed[0].experiment, rec.experiment);
        assert_eq!(parsed[0].algorithm, rec.algorithm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_json_rejects_non_record_files() {
        let dir = std::env::temp_dir().join("ipsc_sched_test_json_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("not_records.csv");
        std::fs::write(&path, "experiment,algorithm\ntable1,AC\n").unwrap();
        let err = read_json(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn grid_writers_emit_axes_cells_and_reuse() {
        use crate::grid::{ExperimentGrid, WorkloadPoint};
        use hypercube::Hypercube;
        use workloads::Generator;
        let grid = ExperimentGrid::new()
            .topology("hypercube(4)", Hypercube::new(4))
            .schedulers(commsched::registry::primary())
            .point(WorkloadPoint::shared(
                Generator::dregular(16, 3, 512),
                3,
                512,
                21,
            ))
            .samples(2)
            .execute()
            .unwrap();
        let dir = std::env::temp_dir().join("ipsc_sched_test_grid_report");
        let jpath = dir.join("grid.json");
        let mpath = dir.join("grid.md");
        write_grid_json(&jpath, "unit", &grid).unwrap();
        write_grid_markdown(&mpath, "Unit grid", &grid).unwrap();
        let json = std::fs::read_to_string(&jpath).unwrap();
        assert!(json.contains("\"experiment\": \"unit\""));
        assert!(json.contains("\"matrices_generated\": 2"));
        assert!(json.contains("\"algorithm\": \"RS_NL\""));
        assert!(json.contains("dregular(n=16,d=3,M=512)"));
        let md = std::fs::read_to_string(&mpath).unwrap();
        assert!(md.starts_with("# Unit grid"));
        assert!(md.contains("| RS_NL |") || md.contains(" RS_NL |"));
        assert!(md.contains("hypercube(4)"));
        assert!(md.contains("matrix requests served by reuse"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_record_list_roundtrips() {
        let dir = std::env::temp_dir().join("ipsc_sched_test_json_empty");
        let path = dir.join("out.json");
        write_json(&path, &[]).unwrap();
        assert!(read_json(&path).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
