use std::io::Write;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::CellResult;

/// One row of an experiment output table — serializable for EXPERIMENTS.md
/// and downstream plotting.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellRecord {
    /// Experiment id ("table1", "fig6", ...).
    pub experiment: String,
    /// Algorithm label ("AC", "LP", "RS_N", "RS_NL").
    pub algorithm: String,
    /// Density `d`.
    pub d: usize,
    /// Message size in bytes.
    pub msg_bytes: u32,
    /// Mean communication cost (ms).
    pub comm_ms: f64,
    /// Mean phases ("# iters"; 0 for AC).
    pub phases: f64,
    /// Mean scheduling cost under the i860 model (ms).
    pub comp_ms: f64,
    /// Samples aggregated.
    pub samples: usize,
}

impl CellRecord {
    /// Assemble a record from a measured cell.
    pub fn from_cell(
        experiment: &str,
        algorithm: &str,
        d: usize,
        msg_bytes: u32,
        cell: &CellResult,
    ) -> Self {
        CellRecord {
            experiment: experiment.to_string(),
            algorithm: algorithm.to_string(),
            d,
            msg_bytes,
            comm_ms: cell.comm_ms,
            phases: cell.phases,
            comp_ms: cell.comp_ms,
            samples: cell.samples,
        }
    }
}

/// Write records as CSV (with header).
///
/// # Errors
///
/// I/O errors from the filesystem.
pub fn write_csv(path: &Path, records: &[CellRecord]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        out,
        "experiment,algorithm,d,msg_bytes,comm_ms,phases,comp_ms,samples"
    )?;
    for r in records {
        writeln!(
            out,
            "{},{},{},{},{:.4},{:.2},{:.4},{}",
            r.experiment, r.algorithm, r.d, r.msg_bytes, r.comm_ms, r.phases, r.comp_ms, r.samples
        )?;
    }
    out.flush()
}

/// Write records as pretty JSON.
///
/// # Errors
///
/// I/O or serialization errors.
pub fn write_json(path: &Path, records: &[CellRecord]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let json = serde_json::to_string_pretty(records)
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> CellRecord {
        CellRecord {
            experiment: "table1".into(),
            algorithm: "RS_NL".into(),
            d: 8,
            msg_bytes: 1024,
            comm_ms: 13.16,
            phases: 11.92,
            comp_ms: 13.56,
            samples: 50,
        }
    }

    #[test]
    fn csv_roundtrip_shape() {
        let dir = std::env::temp_dir().join("ipsc_sched_test_csv");
        let path = dir.join("out.csv");
        write_csv(&path, &[record()]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        assert!(lines.next().unwrap().starts_with("experiment,algorithm"));
        let row = lines.next().unwrap();
        assert!(row.contains("RS_NL"));
        assert!(row.contains("1024"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("ipsc_sched_test_json");
        let path = dir.join("out.json");
        write_json(&path, &[record()]).unwrap();
        let parsed: Vec<CellRecord> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].algorithm, "RS_NL");
        std::fs::remove_dir_all(&dir).ok();
    }
}
