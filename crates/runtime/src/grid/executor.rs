//! Work-stealing task pool for grid execution.
//!
//! The unit of work is a single *(cell, sample)* pair, so a grid
//! parallelizes across cells as well as across the samples inside one
//! cell: a 1-cell × 50-sample grid and a 50-cell × 1-sample grid both
//! keep every worker busy. Workers own a deque each, seeded round-robin
//! from the caller's distribution order; an idle worker steals from the
//! opposite end of a victim's deque.
//!
//! Determinism is structural, not scheduling-dependent: results are
//! written into a slot per task *index*, and the caller derives every
//! seed from the task index alone — so worker count, stealing order, and
//! the distribution order all leave the output unchanged.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `f(task_index)` for every index in `order` (a permutation of
/// `0..order.len()`) on `threads` workers; returns results indexed by
/// task index (NOT by `order` position or completion time).
pub(crate) fn run_work_stealing<R, F>(threads: usize, order: &[usize], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let total = order.len();
    if total == 0 {
        return Vec::new();
    }
    let workers = threads.clamp(1, total);
    // Per-worker deques, seeded round-robin in distribution order.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                order
                    .iter()
                    .skip(w)
                    .step_by(workers)
                    .copied()
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();
    let claimed = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..total).map(|_| None).collect());
    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let claimed = &claimed;
            let results = &results;
            let f = &f;
            scope.spawn(move || loop {
                // Own work first (LIFO end), then steal (FIFO end) from
                // the next victims in ring order. `claimed` is bumped
                // under the victim's deque lock, so "all deques empty"
                // implies "claimed == total" with no window in between —
                // an idle worker exits as soon as the last task is
                // claimed (it never spins while that task executes).
                let claim = |q: &Mutex<VecDeque<usize>>, back: bool| {
                    let mut q = q.lock().expect("no panics hold the deque");
                    let t = if back { q.pop_back() } else { q.pop_front() };
                    if t.is_some() {
                        claimed.fetch_add(1, Ordering::Relaxed);
                    }
                    t
                };
                let task = claim(&deques[w], true).or_else(|| {
                    (1..workers).find_map(|i| claim(&deques[(w + i) % workers], false))
                });
                match task {
                    Some(t) => {
                        let r = f(t);
                        results.lock().expect("no panics hold the results")[t] = Some(r);
                    }
                    None => {
                        // Every task is either in a deque or already
                        // claimed, so empty deques + all claimed = done.
                        if claimed.load(Ordering::Relaxed) >= total {
                            return;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    results
        .into_inner()
        .expect("no panics hold the results")
        .into_iter()
        .map(|slot| slot.expect("every task ran exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_indexed_by_task_not_by_completion() {
        let order: Vec<usize> = (0..64).rev().collect();
        let out = run_work_stealing(4, &order, |t| t * 10);
        assert_eq!(out.len(), 64);
        for (t, v) in out.iter().enumerate() {
            assert_eq!(*v, t * 10);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let order: Vec<usize> = (0..37).collect();
        let a = run_work_stealing(1, &order, |t| t * t);
        let b = run_work_stealing(8, &order, |t| t * t);
        assert_eq!(a, b);
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let order = vec![0usize, 1];
        let out = run_work_stealing(16, &order, |t| t + 1);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn empty_task_list_returns_empty() {
        let out: Vec<usize> = run_work_stealing(4, &[], |t| t);
        assert!(out.is_empty());
    }

    #[test]
    fn every_task_runs_exactly_once_under_contention() {
        let counter = AtomicUsize::new(0);
        let order: Vec<usize> = (0..500).collect();
        let out = run_work_stealing(8, &order, |t| {
            counter.fetch_add(1, Ordering::Relaxed);
            t
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }
}
