//! Declarative experiment grids: declare *(schedulers × workload points ×
//! topologies)*, execute every cell on a work-stealing pool, read the
//! results by stable cell address.
//!
//! The paper's results are all grids — every table and figure sweeps
//! `(algorithm × density × message length)` over the same sampled
//! matrices. This module turns that shape into data: an
//! [`ExperimentGrid`] compiles its axes into a flat list of [`CellSpec`]s
//! (one per supported *(column, point, topology)* combination), the
//! executor fans *(cell, sample)* work units out across worker threads,
//! and each sampled [`CommMatrix`] is generated **exactly once** per
//! `(workload point, seed)` and shared behind an [`Arc`] across every
//! scheduler column that consumes it.
//!
//! Determinism is a structural guarantee: every seed derives from the
//! [`CellSpec`] (never from execution order), so the [`GridResult`] is
//! identical across worker counts and arbitrary task orders — see
//! [`ExecOptions::shuffle_seed`].
//!
//! ```
//! use commrt::grid::{ExperimentGrid, WorkloadPoint};
//! use hypercube::Hypercube;
//! use workloads::Generator;
//!
//! let result = ExperimentGrid::new()
//!     .topology("hypercube(4)", Hypercube::new(4))
//!     .schedulers(commsched::registry::primary())
//!     .point(WorkloadPoint::shared(Generator::dregular(16, 3, 1024), 3, 1024, 42))
//!     .samples(2)
//!     .execute()
//!     .unwrap();
//! // One row, five scheduler columns, matrices generated once per seed:
//! assert_eq!(result.row(0).count(), 5);
//! assert_eq!(result.stats().matrices_generated, 2);
//! assert_eq!(result.stats().matrix_requests, 10);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use commsched::{CommMatrix, Scheduler};
use hypercube::Topology;
use simnet::{LinkCostModel, SimError};
use workloads::{Generator, SampleSet};

use crate::backend::BackendKind;
use crate::experiment::{measure_sample, Pricing, SampleOutcome};
use crate::{CellRecord, CellResult, ExperimentRunner, Scheme};

mod executor;

/// The base seed the pre-grid repro harness used for one `(d, M, entry)`
/// cell. [`SeedPolicy::PerScheduler`] points use it, which pins the
/// historical per-algorithm sample streams — every reproduced table cell
/// keeps its exact pre-grid numbers. Wrapping arithmetic so hashed
/// ad-hoc ordinals anywhere in `u64` stay panic-free.
pub fn paper_base_seed(d: usize, msg_bytes: u32, ordinal: u64) -> u64 {
    (d as u64)
        .wrapping_mul(1_000_003)
        .wrapping_add(u64::from(msg_bytes).wrapping_mul(7))
        .wrapping_add(ordinal)
}

/// Handle to a scheduler powering one grid column: a `'static` registry
/// entry, or a shared *explicit* scheduler (e.g.
/// [`commsched::registry::AdHoc`]) that exists only for this grid.
#[derive(Clone)]
pub enum SchedulerHandle {
    /// A [`commsched::registry`] entry.
    Registry(&'static dyn Scheduler),
    /// An explicit scheduler owned by the grid.
    Shared(Arc<dyn Scheduler + Send + Sync>),
}

impl SchedulerHandle {
    /// Wrap an owned scheduler.
    pub fn shared(s: impl Scheduler + Send + 'static) -> Self {
        SchedulerHandle::Shared(Arc::new(s))
    }

    /// The scheduler behind the handle.
    pub fn entry(&self) -> &dyn Scheduler {
        match self {
            SchedulerHandle::Registry(e) => *e,
            SchedulerHandle::Shared(a) => a.as_ref(),
        }
    }
}

impl From<&'static dyn Scheduler> for SchedulerHandle {
    fn from(e: &'static dyn Scheduler) -> Self {
        SchedulerHandle::Registry(e)
    }
}

impl fmt::Debug for SchedulerHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SchedulerHandle")
            .field(&self.entry().name())
            .finish()
    }
}

/// One column of the grid: a scheduler plus the communication scheme its
/// cells compile under (defaults to the entry's paper scheme) and,
/// optionally, a per-column simulation-backend override — the *backend
/// column axis* that lets one grid compare the event engine against the
/// analytic model side by side.
#[derive(Clone, Debug)]
pub struct GridColumn {
    scheduler: SchedulerHandle,
    scheme: Scheme,
    backend: Option<BackendKind>,
    cost_model: Option<LinkCostModel>,
}

impl GridColumn {
    /// A column under the scheduler's paper-default scheme
    /// ([`Scheme::for_scheduler`]) and the grid runner's backend.
    pub fn new(scheduler: impl Into<SchedulerHandle>) -> Self {
        let scheduler = scheduler.into();
        let scheme = Scheme::for_scheduler(scheduler.entry());
        GridColumn {
            scheduler,
            scheme,
            backend: None,
            cost_model: None,
        }
    }

    /// Override the scheme (e.g. the S1-vs-S2 ablation runs the same
    /// scheduler as two columns).
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Pin this column to a simulation backend, overriding the grid
    /// runner's default. Two columns of one scheduler under different
    /// backends make a differential grid (the `simcheck` harness's shape).
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Pin this column to a per-link cost model
    /// ([`simnet::LinkCostModel`]), overriding the grid runner's. One
    /// scheduler under `uniform` and under `faulty:p=0.05,seed=7` as two
    /// columns is a degradation grid — the fault-sweep figure's shape.
    pub fn with_cost_model(mut self, cost_model: LinkCostModel) -> Self {
        self.cost_model = Some(cost_model);
        self
    }

    /// The scheduler behind this column.
    pub fn scheduler(&self) -> &dyn Scheduler {
        self.scheduler.entry()
    }

    /// The compile scheme of this column's cells.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// This column's backend override (`None` = the runner's default).
    pub fn backend(&self) -> Option<BackendKind> {
        self.backend
    }

    /// The backend this column resolves to under a runner defaulting to
    /// `default`.
    pub fn backend_for(&self, default: BackendKind) -> BackendKind {
        self.backend.unwrap_or(default)
    }

    /// This column's link-cost override (`None` = the runner's default).
    pub fn cost_model(&self) -> Option<&LinkCostModel> {
        self.cost_model.as_ref()
    }

    /// The link-cost model this column resolves to under a runner
    /// defaulting to `default`.
    pub fn cost_model_for(&self, default: LinkCostModel) -> LinkCostModel {
        self.cost_model.unwrap_or(default)
    }

    /// Column label: the scheduler name, qualified with the scheme when
    /// it differs from the scheduler's paper default, with the backend
    /// when the column pins one (`RS_NL[S2]@analytic`), and with the
    /// cost-model preset when the column pins a non-uniform one
    /// (`RS_NL+faulty:p=0.05,seed=7`). Uniform-cost labels are unchanged
    /// from every release before cost models existed.
    pub fn label(&self) -> String {
        let name = self.scheduler.entry().name();
        let mut label = if self.scheme == Scheme::for_scheduler(self.scheduler.entry()) {
            name.to_string()
        } else {
            format!("{name}[{}]", self.scheme.label())
        };
        if let Some(backend) = self.backend {
            label.push('@');
            label.push_str(backend.label());
        }
        if let Some(cm) = &self.cost_model {
            if !cm.is_uniform() {
                label.push('+');
                label.push_str(&cm.to_string());
            }
        }
        label
    }
}

/// How a workload point derives the base seed of each cell's sample
/// stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeedPolicy {
    /// Every scheduler column shares this base seed — all columns see the
    /// *same* sample matrices, generated once and shared. This is the
    /// isomorphic-instances discipline: algorithms are compared on
    /// identical communication instances.
    Shared(u64),
    /// Pre-grid compatibility: base seed =
    /// [`paper_base_seed`]`(d, M, scheduler.ordinal())` — each column
    /// draws its own historical sample stream (so reproduced tables stay
    /// byte-identical), and no cross-column matrix sharing is possible.
    PerScheduler,
}

/// One point on the workload axis: a [`Generator`] plus the grid
/// coordinates `(d, msg_bytes)` it was instantiated at (used for seeds,
/// records, and row addressing) and its [`SeedPolicy`].
#[derive(Clone, Debug)]
pub struct WorkloadPoint {
    generator: Generator,
    d: usize,
    msg_bytes: u32,
    seeds: SeedPolicy,
}

impl WorkloadPoint {
    /// A point whose sample stream (base seed `base_seed`) is shared by
    /// every scheduler column — matrices are reused across columns.
    pub fn shared(generator: Generator, d: usize, msg_bytes: u32, base_seed: u64) -> Self {
        WorkloadPoint {
            generator,
            d,
            msg_bytes,
            seeds: SeedPolicy::Shared(base_seed),
        }
    }

    /// A pre-grid-compatible point: each scheduler column draws the
    /// historical per-algorithm stream ([`SeedPolicy::PerScheduler`]).
    pub fn per_scheduler(generator: Generator, d: usize, msg_bytes: u32) -> Self {
        WorkloadPoint {
            generator,
            d,
            msg_bytes,
            seeds: SeedPolicy::PerScheduler,
        }
    }

    /// The generator handle.
    pub fn generator(&self) -> &Generator {
        &self.generator
    }

    /// Density coordinate.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Message-size coordinate (bytes).
    pub fn msg_bytes(&self) -> u32 {
        self.msg_bytes
    }

    /// The seed policy.
    pub fn seeds(&self) -> SeedPolicy {
        self.seeds
    }
}

/// Stable address of one cell: indices into the grid's column, workload
/// point, and topology axes. Addresses depend only on the declaration
/// order of the axes, never on execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellId {
    /// Scheduler-column index.
    pub col: usize,
    /// Workload-point index.
    pub point: usize,
    /// Topology index.
    pub topo: usize,
}

/// A fully-resolved cell: everything needed to measure it, independent of
/// every other cell. Seeds derive from the spec alone, which is what
/// makes grid execution order-independent.
#[derive(Clone)]
pub struct CellSpec {
    /// Stable address.
    pub id: CellId,
    /// Scheduler column (handle + scheme).
    pub column: GridColumn,
    /// Workload point.
    pub point: WorkloadPoint,
    /// Topology the cell schedules for and simulates on.
    pub topology: Arc<dyn Topology>,
    /// Samples aggregated into the cell.
    pub samples: usize,
    /// Base seed resolved from the point's [`SeedPolicy`].
    pub base_seed: u64,
}

impl CellSpec {
    /// Seed of sample `k` — delegated to [`SampleSet`] so the grid and
    /// the per-cell [`ExperimentRunner::run_cell`] path share one seed
    /// derivation by construction.
    pub fn sample_seed(&self, k: usize) -> u64 {
        SampleSet::new(self.base_seed, self.samples).seed(k)
    }
}

impl fmt::Debug for CellSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CellSpec")
            .field("id", &self.id)
            .field("column", &self.column.label())
            .field("d", &self.point.d)
            .field("msg_bytes", &self.point.msg_bytes)
            .field("samples", &self.samples)
            .field("base_seed", &self.base_seed)
            .finish()
    }
}

/// Execution knobs for [`ExperimentGrid::execute_opts`]. None of them can
/// change the [`GridResult`] — that is tested, not hoped.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecOptions {
    /// Worker-thread override (`None` = the runner's thread count, which
    /// honours `IPSC_THREADS`).
    pub threads: Option<usize>,
    /// Disable the `(workload point, seed)` matrix cache, regenerating
    /// every sample per cell — only useful for measuring what reuse buys.
    pub no_matrix_reuse: bool,
    /// Shuffle the task distribution order with this seed (determinism
    /// tests).
    pub shuffle_seed: Option<u64>,
}

/// Execution accounting of one grid run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GridStats {
    /// Cells measured.
    pub cells: usize,
    /// `(column, topology)` combinations skipped because the scheduler
    /// declined the topology ([`Scheduler::supports_topology`]).
    pub skipped: usize,
    /// `(cell, sample)` work units executed.
    pub tasks: usize,
    /// Sample matrices actually generated.
    pub matrices_generated: usize,
    /// Sample-matrix requests (one per task).
    pub matrix_requests: usize,
}

impl GridStats {
    /// Requests served from the cache instead of regenerating.
    pub fn matrices_reused(&self) -> usize {
        self.matrix_requests - self.matrices_generated
    }
}

/// One measured cell of a [`GridResult`].
#[derive(Clone, Debug, PartialEq)]
pub struct GridCell {
    /// Stable address.
    pub id: CellId,
    /// Column label ([`GridColumn::label`]).
    pub algorithm: String,
    /// Scheme the cell compiled under.
    pub scheme: Scheme,
    /// Density coordinate.
    pub d: usize,
    /// Message-size coordinate (bytes).
    pub msg_bytes: u32,
    /// Resolved base seed of the cell's sample stream.
    pub base_seed: u64,
    /// The measurements.
    pub result: CellResult,
}

impl GridCell {
    /// Flatten into a report [`CellRecord`] under `experiment`.
    pub fn record(&self, experiment: &str) -> CellRecord {
        CellRecord::from_cell(
            experiment,
            &self.algorithm,
            self.d,
            self.msg_bytes,
            &self.result,
        )
    }
}

/// Why a grid could not execute.
#[derive(Debug)]
pub enum GridError {
    /// The grid declares nothing to run (no columns / points / topology /
    /// samples).
    Empty(&'static str),
    /// A sample of one cell failed to simulate. Deterministic: the first
    /// failure by `(cell index, sample index)`, regardless of worker
    /// count or execution order.
    Cell {
        /// Address of the failing cell.
        id: CellId,
        /// Column label.
        algorithm: String,
        /// Density coordinate.
        d: usize,
        /// Message-size coordinate.
        msg_bytes: u32,
        /// Failing sample index.
        sample: usize,
        /// The simulator's error.
        source: SimError,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::Empty(what) => write!(f, "grid declares nothing to run: {what}"),
            GridError::Cell {
                algorithm,
                d,
                msg_bytes,
                sample,
                source,
                ..
            } => write!(
                f,
                "{algorithm} d={d} M={msg_bytes} sample {sample}: {source}"
            ),
        }
    }
}

impl std::error::Error for GridError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GridError::Empty(_) => None,
            GridError::Cell { source, .. } => Some(source),
        }
    }
}

/// The declarative grid builder. Declare axes, then [`execute`].
///
/// [`execute`]: ExperimentGrid::execute
pub struct ExperimentGrid {
    runner: ExperimentRunner,
    columns: Vec<GridColumn>,
    points: Vec<WorkloadPoint>,
    topologies: Vec<(String, Arc<dyn Topology>)>,
    samples: usize,
    /// Grid-level backend override; falls back to the runner's. Stored on
    /// the grid (not written into the runner) so builder-call order
    /// cannot matter: `with_runner` after `with_backend` does not reset
    /// the choice.
    backend: Option<BackendKind>,
    /// Grid-level link-cost override; same builder-order discipline as
    /// `backend`.
    link_costs: Option<LinkCostModel>,
}

impl Default for ExperimentGrid {
    fn default() -> Self {
        Self::new()
    }
}

impl ExperimentGrid {
    /// An empty grid on the paper's machine calibration
    /// ([`ExperimentRunner::ipsc860`]), 1 sample per cell.
    pub fn new() -> Self {
        ExperimentGrid {
            runner: ExperimentRunner::ipsc860(),
            columns: Vec::new(),
            points: Vec::new(),
            topologies: Vec::new(),
            samples: 1,
            backend: None,
            link_costs: None,
        }
    }

    /// Replace the runner (machine params, cost model, thread count).
    pub fn with_runner(mut self, runner: ExperimentRunner) -> Self {
        self.runner = runner;
        self
    }

    /// Attach a schedule cache to the grid's runner
    /// ([`ExperimentRunner::with_cache`]): cells that request the same
    /// *(matrix, topology, scheduler, seed)* — scheme-ablation columns of
    /// a shared-seed point, or re-executions against a persistent store —
    /// hit the cache instead of rescheduling. The [`GridResult`] is
    /// byte-identical with the cache on or off (tested); only scheduling
    /// cost changes.
    pub fn with_cache(mut self, config: commcache::CacheConfig) -> Self {
        self.runner = self.runner.with_cache(config);
        self
    }

    /// The grid's runner — e.g. to read
    /// [`ExperimentRunner::schedule_cache`] stats after an execution.
    pub fn runner(&self) -> &ExperimentRunner {
        &self.runner
    }

    /// Set the default simulation backend for every column that does not
    /// pin its own ([`GridColumn::with_backend`]). The repro binaries
    /// wire this to the `IPSC_BACKEND` environment variable. Takes
    /// precedence over the runner's backend and survives a later
    /// [`ExperimentGrid::with_runner`] — builder-call order never changes
    /// which substrate prices the cells.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = Some(backend);
        self
    }

    /// The backend grid cells default to: the grid-level override when
    /// set, otherwise the runner's.
    pub fn default_backend(&self) -> BackendKind {
        self.backend.unwrap_or(self.runner.backend)
    }

    /// Set the default per-link cost model for every column that does not
    /// pin its own ([`GridColumn::with_cost_model`]). The repro binaries
    /// wire this to the `IPSC_COSTMODEL` environment variable. Same
    /// builder-order discipline as [`ExperimentGrid::with_backend`].
    pub fn with_link_costs(mut self, link_costs: LinkCostModel) -> Self {
        self.link_costs = Some(link_costs);
        self
    }

    /// The link-cost model grid cells default to: the grid-level override
    /// when set, otherwise the runner's.
    pub fn default_link_costs(&self) -> LinkCostModel {
        self.link_costs.unwrap_or(self.runner.link_costs)
    }

    /// Samples aggregated per cell.
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }

    /// Append a topology-axis entry.
    pub fn topology(mut self, label: impl Into<String>, topo: impl Topology + 'static) -> Self {
        self.topologies.push((label.into(), Arc::new(topo)));
        self
    }

    /// Append an already-shared topology.
    pub fn shared_topology(mut self, label: impl Into<String>, topo: Arc<dyn Topology>) -> Self {
        self.topologies.push((label.into(), topo));
        self
    }

    /// Append a registry scheduler as a column (paper-default scheme).
    pub fn scheduler(mut self, entry: &'static dyn Scheduler) -> Self {
        self.columns.push(GridColumn::new(entry));
        self
    }

    /// Append registry schedulers as columns, in iteration order.
    pub fn schedulers(mut self, entries: impl IntoIterator<Item = &'static dyn Scheduler>) -> Self {
        for e in entries {
            self.columns.push(GridColumn::new(e));
        }
        self
    }

    /// Append an explicit column (custom scheme or ad-hoc scheduler).
    pub fn column(mut self, column: GridColumn) -> Self {
        self.columns.push(column);
        self
    }

    /// Append a workload point.
    pub fn point(mut self, point: WorkloadPoint) -> Self {
        self.points.push(point);
        self
    }

    /// Append workload points, in iteration order.
    pub fn points(mut self, points: impl IntoIterator<Item = WorkloadPoint>) -> Self {
        self.points.extend(points);
        self
    }

    /// Compile the axes into the flat cell list: topologies outermost,
    /// then workload points, then scheduler columns — so with a single
    /// topology, cell order is row-major over the (point × column) table.
    /// Combinations whose scheduler declines the topology are omitted
    /// (their [`CellId`] stays addressable in the result, holding no
    /// cell).
    pub fn compile(&self) -> Vec<CellSpec> {
        let mut specs = Vec::new();
        for (ti, (_, topo)) in self.topologies.iter().enumerate() {
            for (pi, point) in self.points.iter().enumerate() {
                for (ci, column) in self.columns.iter().enumerate() {
                    if !column.scheduler().supports_topology(topo.as_ref()) {
                        continue;
                    }
                    let base_seed = match point.seeds {
                        SeedPolicy::Shared(base) => base,
                        SeedPolicy::PerScheduler => {
                            paper_base_seed(point.d, point.msg_bytes, column.scheduler().ordinal())
                        }
                    };
                    specs.push(CellSpec {
                        id: CellId {
                            col: ci,
                            point: pi,
                            topo: ti,
                        },
                        column: column.clone(),
                        point: point.clone(),
                        topology: Arc::clone(topo),
                        samples: self.samples,
                        base_seed,
                    });
                }
            }
        }
        specs
    }

    /// Execute with default options.
    ///
    /// # Errors
    ///
    /// [`GridError::Empty`] if an axis is empty, otherwise the first
    /// failing sample as [`GridError::Cell`].
    pub fn execute(&self) -> Result<GridResult, GridError> {
        self.execute_opts(ExecOptions::default())
    }

    /// Execute with explicit [`ExecOptions`].
    ///
    /// # Errors
    ///
    /// [`GridError::Empty`] if an axis is empty, otherwise the first
    /// failing sample as [`GridError::Cell`].
    pub fn execute_opts(&self, opts: ExecOptions) -> Result<GridResult, GridError> {
        if self.columns.is_empty() {
            return Err(GridError::Empty("no scheduler columns"));
        }
        if self.points.is_empty() {
            return Err(GridError::Empty("no workload points"));
        }
        if self.topologies.is_empty() {
            return Err(GridError::Empty("no topology"));
        }
        if self.samples == 0 {
            return Err(GridError::Empty("zero samples per cell"));
        }
        let specs = self.compile();
        let full_product = self.topologies.len() * self.points.len() * self.columns.len();
        let skipped = full_product - specs.len();

        // Flatten to (cell, sample) tasks, cell-major: task t belongs to
        // cell t / samples, sample t % samples.
        let total_tasks = specs.len() * self.samples;
        let mut order: Vec<usize> = (0..total_tasks).collect();
        if let Some(seed) = opts.shuffle_seed {
            shuffle(&mut order, seed);
        }
        let cache = MatrixCache::default();
        let reuse = !opts.no_matrix_reuse;
        let threads = opts.threads.unwrap_or(self.runner.threads);
        let outcomes: Vec<Result<SampleOutcome, SimError>> =
            executor::run_work_stealing(threads, &order, |t| {
                let spec = &specs[t / self.samples];
                let k = t % self.samples;
                let seed = spec.sample_seed(k);
                // Only Shared rows can ever see a second consumer of the
                // same (point, seed) key — PerScheduler seeds embed the
                // column ordinal — so bypassing the cache for them keeps
                // large paper sweeps from retaining thousands of matrices
                // that nobody will request twice.
                let shared = matches!(spec.point.seeds, SeedPolicy::Shared(_));
                let com = if reuse && shared {
                    cache.get_or_generate(spec.id.point, seed, || {
                        spec.point.generator.generate(seed)
                    })
                } else {
                    cache.bypass(|| spec.point.generator.generate(seed))
                };
                let entry = spec.column.scheduler();
                let topo = spec.topology.as_ref();
                // With a cache attached, duplicate (matrix, topology,
                // scheduler, seed) requests — scheme-ablation columns,
                // persistent-store re-runs — reuse the compiled schedule.
                let schedule = match self.runner.schedule_cache() {
                    Some(cache) => cache.get_or_schedule(entry, &com, topo, seed),
                    None => Arc::new(entry.schedule(&com, topo, seed)),
                };
                measure_sample(
                    &Pricing {
                        params: &self.runner.params,
                        cost_model: &self.runner.cost_model,
                        link_costs: &spec.column.cost_model_for(self.default_link_costs()),
                        backend: spec.column.backend_for(self.default_backend()),
                    },
                    spec.topology.as_ref(),
                    &com,
                    &schedule,
                    spec.column.scheme,
                )
            });

        // Aggregate per cell, in sample order; report the first failure by
        // (cell, sample) index — execution order cannot leak in.
        let mut cells: Vec<Option<GridCell>> = (0..full_product).map(|_| None).collect();
        for (si, spec) in specs.iter().enumerate() {
            let mut cell_outcomes = Vec::with_capacity(self.samples);
            for (k, outcome) in outcomes[si * self.samples..(si + 1) * self.samples]
                .iter()
                .enumerate()
            {
                match outcome {
                    Ok(o) => cell_outcomes.push(*o),
                    Err(e) => {
                        return Err(GridError::Cell {
                            id: spec.id,
                            algorithm: spec.column.label(),
                            d: spec.point.d,
                            msg_bytes: spec.point.msg_bytes,
                            sample: k,
                            source: e.clone(),
                        })
                    }
                }
            }
            let result = CellResult::aggregate(&cell_outcomes).expect("samples > 0 checked");
            let idx = (spec.id.topo * self.points.len() + spec.id.point) * self.columns.len()
                + spec.id.col;
            cells[idx] = Some(GridCell {
                id: spec.id,
                algorithm: spec.column.label(),
                scheme: spec.column.scheme,
                d: spec.point.d,
                msg_bytes: spec.point.msg_bytes,
                base_seed: spec.base_seed,
                result,
            });
        }
        Ok(GridResult {
            columns: self.columns.clone(),
            points: self.points.clone(),
            topologies: self.topologies.iter().map(|(l, _)| l.clone()).collect(),
            samples: self.samples,
            cells,
            stats: GridStats {
                cells: specs.len(),
                skipped,
                tasks: total_tasks,
                matrices_generated: cache.generated.load(Ordering::Relaxed),
                matrix_requests: cache.requests.load(Ordering::Relaxed),
            },
        })
    }
}

/// Exactly-once sample-matrix cache, keyed by `(workload point, seed)`.
/// A per-key [`OnceLock`] guarantees a racing second consumer blocks on
/// the first generation instead of duplicating it.
#[derive(Default)]
struct MatrixCache {
    #[allow(clippy::type_complexity)]
    map: Mutex<HashMap<(usize, u64), Arc<OnceLock<Arc<CommMatrix>>>>>,
    generated: AtomicUsize,
    requests: AtomicUsize,
}

impl MatrixCache {
    fn get_or_generate(
        &self,
        point: usize,
        seed: u64,
        gen: impl FnOnce() -> CommMatrix,
    ) -> Arc<CommMatrix> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let slot = self
            .map
            .lock()
            .expect("no panics hold the cache")
            .entry((point, seed))
            .or_default()
            .clone();
        slot.get_or_init(|| {
            self.generated.fetch_add(1, Ordering::Relaxed);
            Arc::new(gen())
        })
        .clone()
    }

    /// Reuse disabled: account the request and generate unconditionally.
    fn bypass(&self, gen: impl FnOnce() -> CommMatrix) -> Arc<CommMatrix> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.generated.fetch_add(1, Ordering::Relaxed);
        Arc::new(gen())
    }
}

/// Fisher-Yates over `order` driven by a splitmix64 stream — used only to
/// scramble task *distribution* order in determinism tests.
fn shuffle(order: &mut [usize], seed: u64) {
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..order.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
}

/// The measured grid: stable cell addressing ([`CellId`]), row/column
/// iteration for table rendering, and flattening into report records.
#[derive(Clone, Debug)]
pub struct GridResult {
    columns: Vec<GridColumn>,
    points: Vec<WorkloadPoint>,
    topologies: Vec<String>,
    samples: usize,
    /// Dense over the full `(topo × point × col)` product; `None` where
    /// the scheduler declined the topology.
    cells: Vec<Option<GridCell>>,
    stats: GridStats,
}

impl GridResult {
    fn index(&self, id: CellId) -> Option<usize> {
        if id.col >= self.columns.len()
            || id.point >= self.points.len()
            || id.topo >= self.topologies.len()
        {
            return None;
        }
        Some((id.topo * self.points.len() + id.point) * self.columns.len() + id.col)
    }

    /// The scheduler columns, in declaration order.
    pub fn columns(&self) -> &[GridColumn] {
        &self.columns
    }

    /// The workload points, in declaration order.
    pub fn points(&self) -> &[WorkloadPoint] {
        &self.points
    }

    /// Topology labels, in declaration order.
    pub fn topologies(&self) -> &[String] {
        &self.topologies
    }

    /// Samples per cell.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Execution accounting.
    pub fn stats(&self) -> &GridStats {
        &self.stats
    }

    /// The cell at `id`; `None` for out-of-range ids and for combinations
    /// the scheduler declined.
    pub fn cell(&self, id: CellId) -> Option<&GridCell> {
        self.cells[self.index(id)?].as_ref()
    }

    /// The cell at `(column, point)` on the first topology.
    pub fn at(&self, col: usize, point: usize) -> Option<&GridCell> {
        self.cell(CellId {
            col,
            point,
            topo: 0,
        })
    }

    /// All cells of one workload-point row (first topology), in column
    /// order — the shape of one table row.
    pub fn row(&self, point: usize) -> impl Iterator<Item = &GridCell> + '_ {
        (0..self.columns.len()).filter_map(move |col| self.at(col, point))
    }

    /// All cells of one scheduler column (first topology), in point
    /// order — the shape of one figure curve.
    pub fn column_cells(&self, col: usize) -> impl Iterator<Item = &GridCell> + '_ {
        (0..self.points.len()).filter_map(move |point| self.at(col, point))
    }

    /// Index of the column whose scheduler has `name` (first match).
    pub fn find_column(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.scheduler().name() == name)
    }

    /// Index of the first workload point at `(d, msg_bytes)`.
    pub fn point_index(&self, d: usize, msg_bytes: u32) -> Option<usize> {
        self.points
            .iter()
            .position(|p| p.d == d && p.msg_bytes == msg_bytes)
    }

    /// Every measured cell, in stable cell-index order (topology
    /// outermost, then points, then columns).
    pub fn cells(&self) -> impl Iterator<Item = &GridCell> + '_ {
        self.cells.iter().filter_map(Option::as_ref)
    }

    /// Flatten into report records under `experiment`, in stable cell
    /// order.
    pub fn records(&self, experiment: &str) -> Vec<CellRecord> {
        self.cells().map(|c| c.record(experiment)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsched::registry;
    use hypercube::{Hypercube, Mesh2d};

    fn small_grid(samples: usize) -> ExperimentGrid {
        ExperimentGrid::new()
            .topology("hypercube(4)", Hypercube::new(4))
            .schedulers(registry::primary())
            .point(WorkloadPoint::shared(
                Generator::dregular(16, 3, 1024),
                3,
                1024,
                7,
            ))
            .point(WorkloadPoint::shared(
                Generator::dregular(16, 4, 4096),
                4,
                4096,
                8,
            ))
            .samples(samples)
    }

    #[test]
    fn shared_points_generate_each_matrix_exactly_once() {
        let result = small_grid(3).execute().unwrap();
        let stats = result.stats();
        // 2 points × 3 samples = 6 distinct matrices; 5 columns × 6 = 30
        // requests.
        assert_eq!(stats.matrices_generated, 6);
        assert_eq!(stats.matrix_requests, 30);
        assert_eq!(stats.matrices_reused(), 24);
        assert_eq!(stats.cells, 10);
        assert_eq!(stats.skipped, 0);
    }

    #[test]
    fn per_scheduler_points_keep_historic_streams_and_match_run_cell() {
        // A PerScheduler grid cell must equal the pre-grid
        // run_scheduler_cell path bit-for-bit.
        let cube = Hypercube::new(4);
        let entry = registry::find("RS_NL").unwrap();
        let result = ExperimentGrid::new()
            .topology("hypercube(4)", Hypercube::new(4))
            .scheduler(entry)
            .point(WorkloadPoint::per_scheduler(
                Generator::dregular(16, 3, 2048),
                3,
                2048,
            ))
            .samples(4)
            .execute()
            .unwrap();
        let runner = ExperimentRunner::ipsc860();
        let set = SampleSet::new(paper_base_seed(3, 2048, entry.ordinal()), 4);
        let reference = runner
            .run_scheduler_cell(
                &cube,
                &set,
                &|seed| workloads::random_dregular(16, 3, 2048, seed),
                entry,
                Scheme::for_scheduler(entry),
            )
            .unwrap();
        assert_eq!(result.at(0, 0).unwrap().result, reference);
    }

    #[test]
    fn result_is_identical_across_worker_counts_and_orders() {
        let grid = small_grid(2);
        let base = grid.execute().unwrap();
        for opts in [
            ExecOptions {
                threads: Some(1),
                ..Default::default()
            },
            ExecOptions {
                threads: Some(8),
                shuffle_seed: Some(0xfeed),
                ..Default::default()
            },
            ExecOptions {
                no_matrix_reuse: true,
                shuffle_seed: Some(1),
                ..Default::default()
            },
        ] {
            let other = grid.execute_opts(opts).unwrap();
            assert_eq!(
                base.cells().collect::<Vec<_>>(),
                other.cells().collect::<Vec<_>>(),
                "{opts:?}"
            );
        }
    }

    #[test]
    fn unsupported_topologies_are_skipped_not_fatal() {
        // LP declines the mesh; everyone else runs on both topologies.
        let result = ExperimentGrid::new()
            .topology("hypercube(4)", Hypercube::new(4))
            .topology("mesh(4x4)", Mesh2d::new(4, 4))
            .schedulers(registry::primary())
            .point(WorkloadPoint::shared(
                Generator::dregular(16, 3, 512),
                3,
                512,
                11,
            ))
            .samples(1)
            .execute()
            .unwrap();
        let lp = result.find_column("LP").unwrap();
        assert!(result
            .cell(CellId {
                col: lp,
                point: 0,
                topo: 0
            })
            .is_some());
        assert!(result
            .cell(CellId {
                col: lp,
                point: 0,
                topo: 1
            })
            .is_none());
        assert_eq!(result.stats().skipped, 1);
        assert_eq!(result.stats().cells, 9);
        // Row iteration over topo 0 still sees all five columns.
        assert_eq!(result.row(0).count(), 5);
    }

    #[test]
    fn schedule_cache_cannot_change_any_cell() {
        // The commcache acceptance bar: identical GridResult with the
        // cache off, on (memory), and on (persistent, cold then warm).
        let dir = std::env::temp_dir().join(format!("grid_cache_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let base = small_grid(2).execute().unwrap();
        let cached = small_grid(2)
            .with_cache(commcache::CacheConfig::in_memory())
            .execute()
            .unwrap();
        assert_eq!(
            base.cells().collect::<Vec<_>>(),
            cached.cells().collect::<Vec<_>>()
        );
        for _ in 0..2 {
            let persistent = small_grid(2)
                .with_cache(commcache::CacheConfig::persistent(&dir))
                .execute()
                .unwrap();
            assert_eq!(
                base.cells().collect::<Vec<_>>(),
                persistent.cells().collect::<Vec<_>>()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scheme_ablation_columns_share_compiled_schedules() {
        // Two columns = one scheduler under S1 and S2, shared seeds: the
        // second column's schedules are pure cache hits (the schedule
        // depends on the scheduler, not the scheme).
        let entry = registry::find("RS_NL").unwrap();
        let grid = ExperimentGrid::new()
            .topology("hypercube(4)", Hypercube::new(4))
            .column(GridColumn::new(SchedulerHandle::from(entry)).with_scheme(Scheme::S1))
            .column(GridColumn::new(SchedulerHandle::from(entry)).with_scheme(Scheme::S2))
            .point(WorkloadPoint::shared(
                Generator::dregular(16, 3, 1024),
                3,
                1024,
                7,
            ))
            .samples(3)
            .with_cache(commcache::CacheConfig::in_memory());
        let result = grid.execute().unwrap();
        let stats = grid.runner().schedule_cache().unwrap().stats();
        assert_eq!(stats.misses, 3, "3 samples compiled once each");
        assert_eq!(stats.hits(), 3, "second column reused all of them");
        // And the two columns really measured different schemes.
        assert_ne!(
            result.at(0, 0).unwrap().result.comm_ms,
            result.at(1, 0).unwrap().result.comm_ms
        );
    }

    #[test]
    fn empty_axes_error_out() {
        let err = ExperimentGrid::new().execute().unwrap_err();
        assert!(matches!(err, GridError::Empty(_)), "{err}");
        let err = small_grid(0).execute().unwrap_err();
        assert!(err.to_string().contains("zero samples"), "{err}");
    }

    #[test]
    fn explicit_ad_hoc_columns_run() {
        use commsched::registry::AdHoc;
        use commsched::SchedulerKind;
        let result = ExperimentGrid::new()
            .topology("hypercube(4)", Hypercube::new(4))
            .column(GridColumn::new(SchedulerHandle::shared(AdHoc::new(
                "MY_RS_N",
                SchedulerKind::RsN,
                |com, _topo, seed| commsched::rs_n(com, seed),
            ))))
            .point(WorkloadPoint::shared(
                Generator::dregular(16, 3, 1024),
                3,
                1024,
                5,
            ))
            .samples(2)
            .execute()
            .unwrap();
        let cell = result.at(0, 0).unwrap();
        assert_eq!(cell.algorithm, "MY_RS_N");
        assert!(cell.result.comm_ms > 0.0);
    }

    #[test]
    fn hashed_ad_hoc_ordinals_survive_per_scheduler_seed_derivation() {
        // Regression: an AdHoc column's default ordinal is a name hash;
        // mixed into paper_base_seed and then SampleSet's `base * 1000`,
        // a full-range hash overflowed u64 and panicked in debug builds.
        use commsched::registry::AdHoc;
        use commsched::SchedulerKind;
        let result = ExperimentGrid::new()
            .topology("hypercube(4)", Hypercube::new(4))
            .column(GridColumn::new(SchedulerHandle::shared(AdHoc::new(
                "MY_RS_N",
                SchedulerKind::RsN,
                |com, _topo, seed| commsched::rs_n(com, seed),
            ))))
            .point(WorkloadPoint::per_scheduler(
                Generator::dregular(16, 3, 512),
                3,
                512,
            ))
            .samples(2)
            .execute()
            .unwrap();
        assert!(result.at(0, 0).unwrap().result.comm_ms > 0.0);
        // Even a deliberately huge pinned ordinal only wraps, never
        // panics.
        let huge = ExperimentGrid::new()
            .topology("hypercube(4)", Hypercube::new(4))
            .column(GridColumn::new(SchedulerHandle::shared(
                AdHoc::new("HUGE", SchedulerKind::RsN, |com, _topo, seed| {
                    commsched::rs_n(com, seed)
                })
                .with_ordinal(u64::MAX - 3),
            )))
            .point(WorkloadPoint::per_scheduler(
                Generator::dregular(16, 3, 512),
                3,
                512,
            ))
            .samples(2)
            .execute()
            .unwrap();
        assert!(huge.at(0, 0).unwrap().result.comm_ms > 0.0);
    }

    #[test]
    fn grid_backend_choice_survives_a_later_runner_swap() {
        // Regression: with_backend used to write into the runner, so a
        // subsequent with_runner silently reset the grid to DES.
        let grid = small_grid(1)
            .with_backend(crate::BackendKind::Analytic)
            .with_runner(ExperimentRunner::ipsc860());
        assert_eq!(grid.default_backend(), crate::BackendKind::Analytic);
        // A runner that carries its own backend is honoured when the grid
        // sets none.
        let grid = small_grid(1)
            .with_runner(ExperimentRunner::ipsc860().with_backend(crate::BackendKind::Analytic));
        assert_eq!(grid.default_backend(), crate::BackendKind::Analytic);
        // And the per-column override still wins over both.
        let entry = registry::find("RS_N").unwrap();
        let col = GridColumn::new(SchedulerHandle::from(entry))
            .with_backend(crate::BackendKind::Analytic);
        assert_eq!(
            col.backend_for(crate::BackendKind::Des),
            crate::BackendKind::Analytic
        );
    }

    #[test]
    fn scheme_override_labels_the_column() {
        let entry = registry::find("RS_NL").unwrap();
        let col = GridColumn::new(SchedulerHandle::from(entry)).with_scheme(Scheme::S2);
        assert_eq!(col.label(), "RS_NL[S2]");
        assert_eq!(
            GridColumn::new(SchedulerHandle::from(entry)).label(),
            "RS_NL"
        );
    }

    #[test]
    fn records_flatten_in_stable_cell_order() {
        let result = small_grid(1).execute().unwrap();
        let records = result.records("test");
        assert_eq!(records.len(), 10);
        // Row-major: first 5 records are point 0 across all columns.
        assert_eq!(records[0].algorithm, "AC");
        assert_eq!(records[0].d, 3);
        assert_eq!(records[5].d, 4);
        assert!(records.iter().all(|r| r.experiment == "test"));
    }

    #[test]
    fn grid_error_reports_the_failing_cell() {
        // Invalid machine params fail every cell; the reported failure
        // must be the deterministic first one by (cell, sample) index.
        let mut runner = ExperimentRunner::ipsc860();
        runner.params.long_per_byte_ns = -1.0;
        let err = small_grid(1).with_runner(runner).execute().unwrap_err();
        match err {
            GridError::Cell {
                id,
                sample,
                ref source,
                ..
            } => {
                assert_eq!(
                    id,
                    CellId {
                        col: 0,
                        point: 0,
                        topo: 0
                    }
                );
                assert_eq!(sample, 0);
                assert!(matches!(source, SimError::BadParams(_)));
            }
            ref other => panic!("expected Cell error, got {other}"),
        }
        // And it displays with full cell context.
        assert!(err.to_string().contains("d=3"), "{err}");
    }
}
