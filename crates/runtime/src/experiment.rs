use commcache::{CacheConfig, SchedCache};
use commsched::{CommMatrix, I860CostModel, Schedule, Scheduler};
use hypercube::Topology;
use simnet::{LinkCostModel, MachineParams, SimError};
use std::sync::{Arc, Mutex};
use workloads::SampleSet;

use crate::backend::{AnalyticBackend, BackendKind};
use crate::{compile, Scheme};

/// Aggregated measurements of one experiment cell (one algorithm at one
/// `(density, message size)` point), averaged over a [`SampleSet`] exactly
/// the way the paper aggregates: per sample, the cost is the *maximum* time
/// spent by any processor; the cell reports the mean over samples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellResult {
    /// Mean communication cost over samples (ms).
    pub comm_ms: f64,
    /// Fastest sample (ms).
    pub comm_ms_min: f64,
    /// Slowest sample (ms).
    pub comm_ms_max: f64,
    /// Mean number of communication phases (the paper's "# iters";
    /// 0 for AC).
    pub phases: f64,
    /// Mean simulated scheduling cost under the i860 model (ms).
    pub comp_ms: f64,
    /// Mean reciprocal pairs fused into exchanges per schedule.
    pub exchange_pairs: f64,
    /// Samples aggregated.
    pub samples: usize,
}

impl CellResult {
    /// Aggregate per-sample outcomes exactly the way the paper aggregates
    /// (mean over samples, min/max of the per-sample maxima). Every cell
    /// producer — [`ExperimentRunner::run_cell`] and the grid executor —
    /// funnels through this one function so their numbers are
    /// bit-identical. `None` for an empty outcome list.
    pub(crate) fn aggregate(outcomes: &[SampleOutcome]) -> Option<CellResult> {
        if outcomes.is_empty() {
            return None;
        }
        let mut comm_sum = 0.0;
        let mut comm_min = f64::INFINITY;
        let mut comm_max = 0.0f64;
        let mut phase_sum = 0.0;
        let mut comp_sum = 0.0;
        let mut pair_sum = 0.0;
        for o in outcomes {
            comm_sum += o.comm_ms;
            comm_min = comm_min.min(o.comm_ms);
            comm_max = comm_max.max(o.comm_ms);
            phase_sum += o.phases as f64;
            comp_sum += o.comp_ms;
            pair_sum += o.exchange_pairs as f64;
        }
        let kf = outcomes.len() as f64;
        Some(CellResult {
            comm_ms: comm_sum / kf,
            comm_ms_min: comm_min,
            comm_ms_max: comm_max,
            phases: phase_sum / kf,
            comp_ms: comp_sum / kf,
            exchange_pairs: pair_sum / kf,
            samples: outcomes.len(),
        })
    }
}

/// Runs experiment cells sample-parallel across host threads.
///
/// The simulator is deterministic, so unlike the paper we do not repeat
/// each measurement `k` times — variance comes only from the sampled
/// matrices (and scheduler seeds), which is exactly what the sample mean
/// captures.
#[derive(Clone, Debug)]
pub struct ExperimentRunner {
    /// Machine model used for every simulation.
    pub params: MachineParams,
    /// Cost model converting scheduler op counts to i860 milliseconds.
    pub cost_model: I860CostModel,
    /// Per-link cost model pricing the fabric itself
    /// ([`simnet::LinkCostModel`]): `uniform` (the default) reproduces
    /// the historical numbers byte-for-byte; other presets add latency,
    /// throttle bandwidth, or take links down per directed link.
    pub link_costs: LinkCostModel,
    /// Simulation backend pricing every sample: the exact discrete-event
    /// engine (default) or the fast analytic model
    /// ([`crate::backend::BackendKind`]).
    pub backend: BackendKind,
    /// Worker threads (defaults to available parallelism).
    pub threads: usize,
    /// Opt-in schedule cache ([`ExperimentRunner::with_cache`]); `None`
    /// compiles every schedule from scratch. Clones share the cache.
    schedule_cache: Option<Arc<SchedCache>>,
}

/// Worker-thread default: the `IPSC_THREADS` environment variable when set
/// to a positive integer (reproducible thread control on shared CI
/// machines), otherwise the host's available parallelism.
///
/// Thread count never changes *results* — cell outputs are deterministic
/// by construction — only wall-clock time and scheduling noise.
pub(crate) fn default_threads() -> usize {
    std::env::var("IPSC_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t: &usize| t > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, usize::from))
}

impl ExperimentRunner {
    /// Runner with the paper's machine calibration. Worker threads honour
    /// the `IPSC_THREADS` environment override.
    pub fn ipsc860() -> Self {
        ExperimentRunner {
            params: MachineParams::ipsc860(),
            cost_model: I860CostModel::default(),
            link_costs: LinkCostModel::Uniform,
            backend: BackendKind::Des,
            threads: default_threads(),
            schedule_cache: None,
        }
    }

    /// Select the per-link cost model for every subsequent measurement.
    /// [`LinkCostModel::Uniform`] (the default) is byte-identical to the
    /// historical pricing; see [`LinkCostModel::parse`] for the preset
    /// grammar (`loggp:...`, `hetero:...`, `faulty:...`).
    pub fn with_link_costs(mut self, link_costs: LinkCostModel) -> Self {
        self.link_costs = link_costs;
        self
    }

    /// Select the simulation backend for every subsequent measurement.
    /// [`BackendKind::Des`] is exact; [`BackendKind::Analytic`] trades
    /// documented tolerance (see `tests/backend_conformance.rs`) for
    /// orders of magnitude more cells per second.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Attach a schedule cache built from `config`. Registry-driven paths
    /// ([`ExperimentRunner::run_scheduler_cell`], the grid executor) then
    /// serve repeated *(matrix, topology, scheduler, seed)* requests from
    /// the cache instead of recompiling. Caching changes scheduling
    /// *cost*, never *results* — schedules are deterministic functions of
    /// the fingerprinted inputs (tested in the grid suite).
    pub fn with_cache(self, config: CacheConfig) -> Self {
        self.with_shared_cache(Arc::new(SchedCache::new(config)))
    }

    /// Attach an existing (possibly shared) schedule cache — e.g. one
    /// cache warmed by `schedctl` and reused across several runners.
    pub fn with_shared_cache(mut self, cache: Arc<SchedCache>) -> Self {
        self.schedule_cache = Some(cache);
        self
    }

    /// Attach a delta-aware schedule cache: fingerprint misses may be
    /// served by patching a retained base schedule (validated, falling
    /// back to a cold compile) instead of recompiling — the right cache
    /// for grids over *drifting* patterns, where consecutive cells
    /// perturb a persistent matrix. Unlike [`ExperimentRunner::with_cache`],
    /// patched schedules may differ structurally from cold compiles (while
    /// always validating), so byte-identical repro grids keep using the
    /// exact cache.
    pub fn with_incremental_cache(self, mut config: CacheConfig) -> Self {
        if config.incremental.is_none() {
            config.incremental = Some(commcache::IncrementalConfig::default());
        }
        self.with_cache(config)
    }

    /// Detach the schedule cache.
    pub fn without_cache(mut self) -> Self {
        self.schedule_cache = None;
        self
    }

    /// The attached schedule cache, if any (its
    /// [`commcache::SchedCache::stats`] snapshot reports hit rates).
    pub fn schedule_cache(&self) -> Option<&SchedCache> {
        self.schedule_cache.as_deref()
    }

    /// Measure one cell: generate each sample with `gen(seed)`, schedule it
    /// with `sched(&com, seed)`, execute under `scheme`, and aggregate.
    ///
    /// # Errors
    ///
    /// [`SimError::BadParams`] for an empty sample set, otherwise the
    /// first [`SimError`] of any sample (by sample index).
    pub fn run_cell<T: Topology + ?Sized>(
        &self,
        topo: &T,
        set: &SampleSet,
        gen: &(dyn Fn(u64) -> CommMatrix + Sync),
        sched: &(dyn Fn(&CommMatrix, u64) -> Schedule + Sync),
        scheme: Scheme,
    ) -> Result<CellResult, SimError> {
        self.run_cell_arc(
            topo,
            set,
            gen,
            &|com, seed| Arc::new(sched(com, seed)),
            scheme,
        )
    }

    /// [`ExperimentRunner::run_cell`] with an `Arc`-returning schedule
    /// closure — the internal spine, so cache-served schedules are shared
    /// by pointer instead of deep-cloned per sample.
    fn run_cell_arc<T: Topology + ?Sized>(
        &self,
        topo: &T,
        set: &SampleSet,
        gen: &(dyn Fn(u64) -> CommMatrix + Sync),
        sched: &(dyn Fn(&CommMatrix, u64) -> Arc<Schedule> + Sync),
        scheme: Scheme,
    ) -> Result<CellResult, SimError> {
        let k = set.len();
        if k == 0 {
            return Err(SimError::BadParams(
                "cannot run a cell over an empty sample set".into(),
            ));
        }
        let results: Mutex<Vec<Option<Result<SampleOutcome, SimError>>>> =
            Mutex::new(vec![None; k]);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let workers = self.threads.clamp(1, k);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if idx >= k {
                        return;
                    }
                    let seed = set.seed(idx);
                    let outcome = self.run_sample(topo, seed, gen, sched, scheme);
                    results.lock().expect("no panics hold the lock")[idx] = Some(outcome);
                });
            }
        });
        let slots = results.into_inner().expect("no panics hold the lock");
        let mut outcomes = Vec::with_capacity(k);
        for o in slots {
            outcomes.push(o.expect("worker filled every slot")?);
        }
        Ok(CellResult::aggregate(&outcomes).expect("k > 0 checked above"))
    }

    /// [`ExperimentRunner::run_cell`] for a registry entry: the schedule
    /// closure is the entry's [`Scheduler::schedule`] over `topo`, and the
    /// communication scheme is the entry's paper default
    /// ([`crate::Scheme::for_scheduler`]).
    ///
    /// This is how the repro binaries enumerate the whole registry without
    /// naming any algorithm.
    ///
    /// # Errors
    ///
    /// The first [`SimError`] of any sample (by sample index).
    pub fn run_scheduler_cell(
        &self,
        topo: &dyn Topology,
        set: &SampleSet,
        gen: &(dyn Fn(u64) -> CommMatrix + Sync),
        entry: &dyn Scheduler,
        scheme: crate::Scheme,
    ) -> Result<CellResult, SimError> {
        match &self.schedule_cache {
            Some(cache) => self.run_cell_arc(
                topo,
                set,
                gen,
                &|com, seed| cache.get_or_schedule(entry, com, topo, seed),
                scheme,
            ),
            None => self.run_cell_arc(
                topo,
                set,
                gen,
                &|com, seed| Arc::new(entry.schedule(com, topo, seed)),
                scheme,
            ),
        }
    }

    fn run_sample<T: Topology + ?Sized>(
        &self,
        topo: &T,
        seed: u64,
        gen: &dyn Fn(u64) -> CommMatrix,
        sched: &dyn Fn(&CommMatrix, u64) -> Arc<Schedule>,
        scheme: Scheme,
    ) -> Result<SampleOutcome, SimError> {
        let com = gen(seed);
        let schedule = sched(&com, seed);
        measure_sample(
            &Pricing {
                params: &self.params,
                cost_model: &self.cost_model,
                link_costs: &self.link_costs,
                backend: self.backend,
            },
            topo,
            &com,
            &schedule,
            scheme,
        )
    }
}

/// How one sample is priced: the machine calibration, the i860
/// scheduling-cost model, the link-cost overlay, and the backend doing
/// the pricing. Assembled per cell by [`ExperimentRunner::run_cell`]
/// and the grid executor (which resolves per-column overrides first).
pub(crate) struct Pricing<'a> {
    pub(crate) params: &'a MachineParams,
    pub(crate) cost_model: &'a I860CostModel,
    pub(crate) link_costs: &'a LinkCostModel,
    pub(crate) backend: BackendKind,
}

/// Schedule-to-numbers for one already-generated sample: price the
/// schedule under the selected backend and the i860 cost model. Shared by
/// [`ExperimentRunner::run_cell`] and the grid executor (which generates
/// matrices through its reuse cache instead of a per-sample closure).
///
/// [`BackendKind::Des`] keeps the historical fast path — compile under
/// `scheme` and run the untraced event engine — so default measurements
/// are bit-identical to every release before backends existed.
/// [`BackendKind::Analytic`] skips program compilation entirely.
pub(crate) fn measure_sample<T: Topology + ?Sized>(
    pricing: &Pricing<'_>,
    topo: &T,
    com: &CommMatrix,
    schedule: &Schedule,
    scheme: Scheme,
) -> Result<SampleOutcome, SimError> {
    let Pricing {
        params,
        cost_model,
        link_costs,
        backend,
    } = *pricing;
    let comm_ms = match backend {
        BackendKind::Des => {
            let programs = compile(com, schedule, scheme);
            if link_costs.is_uniform() {
                simnet::simulate(topo, params, programs)?.makespan_ms()
            } else {
                simnet::simulate_costed(topo, params, link_costs, programs)?.makespan_ms()
            }
        }
        BackendKind::Analytic => AnalyticBackend::default()
            .estimate_on_costed(params, link_costs, topo, com, schedule, scheme)?
            .makespan_ms(),
    };
    Ok(SampleOutcome {
        comm_ms,
        phases: schedule.num_phases(),
        comp_ms: cost_model.schedule_ms(schedule),
        exchange_pairs: schedule.exchange_pairs(),
    })
}

/// Per-sample measurement, aggregated by [`CellResult::aggregate`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct SampleOutcome {
    pub(crate) comm_ms: f64,
    pub(crate) phases: usize,
    pub(crate) comp_ms: f64,
    pub(crate) exchange_pairs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsched::{rs_n, rs_nl};
    use hypercube::Hypercube;

    #[test]
    fn cell_aggregates_samples() {
        let cube = Hypercube::new(4);
        let runner = ExperimentRunner::ipsc860();
        let set = SampleSet::new(77, 8);
        let cell = runner
            .run_cell(
                &cube,
                &set,
                &|seed| workloads::random_dense(16, 3, 1024, seed),
                &|com, seed| rs_n(com, seed),
                Scheme::S2,
            )
            .unwrap();
        assert_eq!(cell.samples, 8);
        assert!(cell.comm_ms > 0.0);
        assert!(cell.comm_ms_min <= cell.comm_ms && cell.comm_ms <= cell.comm_ms_max);
        assert!(cell.phases >= 3.0);
        assert!(cell.comp_ms > 0.0);
    }

    #[test]
    fn scheduler_cell_matches_closure_cell() {
        // The registry-driven entry point must measure exactly what the
        // closure-driven one measures for the same algorithm and seeds.
        let cube = Hypercube::new(4);
        let runner = ExperimentRunner::ipsc860();
        let set = SampleSet::new(5, 4);
        let gen = |seed| workloads::random_dense(16, 3, 2048, seed);
        let entry = commsched::registry::find("RS_NL").unwrap();
        let via_registry = runner
            .run_scheduler_cell(
                &cube,
                &set,
                &gen,
                entry,
                crate::Scheme::for_scheduler(entry),
            )
            .unwrap();
        let via_closure = runner
            .run_cell(
                &cube,
                &set,
                &gen,
                &|com, seed| rs_nl(com, &Hypercube::new(4), seed),
                Scheme::S1,
            )
            .unwrap();
        assert_eq!(via_registry, via_closure);
    }

    #[test]
    fn every_registry_entry_runs_end_to_end() {
        // GREEDY and the ablation variants are first-class runtime citizens,
        // not just schedule factories.
        let cube = Hypercube::new(4);
        let runner = ExperimentRunner::ipsc860();
        let set = SampleSet::new(9, 2);
        let gen = |seed| workloads::random_dense(16, 3, 1024, seed);
        for &entry in commsched::registry::all() {
            let cell = runner
                .run_scheduler_cell(
                    &cube,
                    &set,
                    &gen,
                    entry,
                    crate::Scheme::for_scheduler(entry),
                )
                .unwrap_or_else(|e| panic!("{}: {e}", entry.name()));
            assert!(cell.comm_ms > 0.0, "{}", entry.name());
        }
    }

    #[test]
    fn cached_scheduler_cells_match_uncached_bit_for_bit() {
        // Caching must change cost only: every registry entry's cell is
        // identical with and without the schedule cache, and re-running
        // the cached cell hits instead of recompiling.
        let cube = Hypercube::new(4);
        let plain = ExperimentRunner::ipsc860();
        let cached = ExperimentRunner::ipsc860().with_cache(commcache::CacheConfig::in_memory());
        let set = SampleSet::new(13, 3);
        let gen = |seed| workloads::random_dregular(16, 3, 1024, seed);
        for &entry in commsched::registry::all() {
            let scheme = crate::Scheme::for_scheduler(entry);
            let a = plain
                .run_scheduler_cell(&cube, &set, &gen, entry, scheme)
                .unwrap();
            let b = cached
                .run_scheduler_cell(&cube, &set, &gen, entry, scheme)
                .unwrap();
            assert_eq!(a, b, "{}", entry.name());
        }
        let stats = cached.schedule_cache().unwrap().stats();
        let entries = commsched::registry::all().len() as u64;
        assert_eq!(
            stats.misses,
            entries * 3,
            "each (entry, sample) compiled once"
        );
        // A second pass over the same cells is pure hits.
        for &entry in commsched::registry::all() {
            cached
                .run_scheduler_cell(
                    &cube,
                    &set,
                    &gen,
                    entry,
                    crate::Scheme::for_scheduler(entry),
                )
                .unwrap();
        }
        let stats = cached.schedule_cache().unwrap().stats();
        assert_eq!(stats.misses, entries * 3, "no recompilation");
        assert_eq!(stats.mem_hits, entries * 3);
    }

    #[test]
    fn incremental_runner_patches_drifting_cells() {
        // A grid over a drifting pattern: each cell perturbs the previous
        // matrix slightly. Under the incremental cache the later cells
        // are served by patching, and every measurement still comes from
        // a schedule that validates against its own matrix (the runner's
        // simulators would reject an invalid decomposition by producing
        // nonsense; we check the cache counters and determinism here).
        let cube = Hypercube::new(4);
        let runner =
            ExperimentRunner::ipsc860().with_incremental_cache(commcache::CacheConfig::in_memory());
        let entry = commsched::registry::find("RS_NL").unwrap();
        let scheme = crate::Scheme::for_scheduler(entry);
        let set = SampleSet::new(29, 1);
        let mut base = workloads::random_dregular(16, 4, 1024, 3);
        let mut results = Vec::new();
        for step in 0..4usize {
            let com = base.clone();
            let r = runner
                .run_scheduler_cell(&cube, &set, &move |_seed| com.clone(), entry, scheme)
                .unwrap();
            results.push(r);
            let from = (step * 5) % 16;
            let old_dst = (0..16).find(|&d| base.get(from, d) > 0).unwrap();
            base.set(from, old_dst, 0);
            let new_dst = (0..16)
                .find(|&d| d != from && d != old_dst && base.get(from, d) == 0)
                .unwrap();
            base.set(from, new_dst, 1024);
        }
        let inc = runner
            .schedule_cache()
            .unwrap()
            .incremental_stats()
            .unwrap();
        assert_eq!(inc.patches, 3, "every drifted cell patched: {inc:?}");
        assert_eq!(inc.validation_rejections, 0);
        // Re-running the drifted grid from a fresh runner sharing the
        // cache reproduces the same results (patched schedules are cached
        // under the exact fingerprint like any compile).
        let shared = runner.clone();
        let com = base.clone();
        let r1 = runner
            .run_scheduler_cell(
                &cube,
                &set,
                &{
                    let com = com.clone();
                    move |_| com.clone()
                },
                entry,
                scheme,
            )
            .unwrap();
        let r2 = shared
            .run_scheduler_cell(&cube, &set, &move |_| com.clone(), entry, scheme)
            .unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn runner_clones_share_the_cache() {
        let runner = ExperimentRunner::ipsc860().with_cache(commcache::CacheConfig::in_memory());
        let clone = runner.clone();
        let cube = Hypercube::new(4);
        let com = workloads::random_dregular(16, 3, 512, 5);
        let entry = commsched::registry::find("RS_N").unwrap();
        runner
            .schedule_cache()
            .unwrap()
            .get_or_schedule(entry, &com, &cube, 5);
        clone
            .schedule_cache()
            .unwrap()
            .get_or_schedule(entry, &com, &cube, 5);
        assert_eq!(clone.schedule_cache().unwrap().stats().mem_hits, 1);
        assert!(runner.without_cache().schedule_cache().is_none());
    }

    #[test]
    fn empty_sample_set_is_an_error_not_a_panic() {
        // Regression: `self.threads.clamp(1, k)` with `k = 0` violated
        // `clamp`'s `min <= max` contract and panicked before any sample
        // ran; an empty set must surface as a proper error instead.
        let cube = Hypercube::new(4);
        let runner = ExperimentRunner::ipsc860();
        let set = SampleSet::new(1, 0);
        let err = runner
            .run_cell(
                &cube,
                &set,
                &|seed| workloads::random_dense(16, 3, 1024, seed),
                &|com, seed| rs_n(com, seed),
                Scheme::S2,
            )
            .unwrap_err();
        assert!(
            matches!(err, simnet::SimError::BadParams(_)),
            "unexpected error: {err}"
        );
        assert!(err.to_string().contains("empty sample set"), "{err}");
    }

    #[test]
    fn cell_results_are_deterministic_across_thread_counts() {
        let cube = Hypercube::new(4);
        let mut runner = ExperimentRunner::ipsc860();
        let set = SampleSet::new(3, 6);
        let gen = |seed| workloads::random_dense(16, 4, 512, seed);
        let run = |r: &ExperimentRunner| {
            r.run_cell(
                &cube,
                &set,
                &gen,
                &|com, seed| rs_nl(com, &Hypercube::new(4), seed),
                Scheme::S1,
            )
            .unwrap()
        };
        runner.threads = 1;
        let a = run(&runner);
        runner.threads = 8;
        let b = run(&runner);
        assert_eq!(a, b);
    }
}
