//! Link-cost-model conformance across both backends.
//!
//! Two invariants guard the cost-model subsystem's seams:
//!
//! 1. **Uniform is the legacy path, byte for byte.** `estimate_costed`
//!    under `LinkCostModel::Uniform` must return a `BackendReport` equal
//!    in every field to plain `estimate` — not merely close — for every
//!    registry scheduler on both backends. This is what lets every
//!    costed call site (grid, daemon, repro binaries) call the costed
//!    API unconditionally without perturbing a single pre-cost-model
//!    number.
//!
//! 2. **Fault outcomes are a deterministic function of the seed.** A
//!    `faulty:` model with a fixed seed kills a fixed link set; whether
//!    a run survives (reroute) or fails (`LinkDown`) must be identical
//!    across repeats and across backends, because the daemon memoizes
//!    costed estimates and the fault sweep compares schedulers on "the
//!    same broken machine".

use commrt::{BackendKind, LinkCostModel, Scheme};
use commsched::registry;
use hypercube::{Hypercube, Topology};
use simnet::{MachineParams, SimError};
use workloads::{Generator, SampleSet};

const NODES: usize = 16;

fn entries_on(topo: &dyn Topology) -> Vec<&'static dyn commsched::registry::Scheduler> {
    registry::all()
        .iter()
        .copied()
        .filter(|e| e.supports_topology(topo))
        .collect()
}

#[test]
fn uniform_costed_estimate_is_byte_identical_to_legacy_estimate() {
    let cube = Hypercube::new(4);
    let params = MachineParams::ipsc860();
    let set = SampleSet::new(11, 3);
    let matrices = set.realize(&Generator::dregular(NODES, 3, 1024));

    for kind in BackendKind::all() {
        let backend = kind.backend();
        for entry in entries_on(&cube) {
            let scheme = Scheme::for_scheduler(entry);
            for (k, com) in matrices.iter().enumerate() {
                let schedule = entry.schedule(com, &cube, set.seed(k));
                let legacy = backend
                    .estimate(&params, &cube, com, &schedule, scheme)
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", kind.label(), entry.name()));
                let costed = backend
                    .estimate_costed(
                        &params,
                        &LinkCostModel::Uniform,
                        &cube,
                        com,
                        &schedule,
                        scheme,
                    )
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", kind.label(), entry.name()));
                // Full-struct equality: makespan, every phase end, every
                // contention counter.
                assert_eq!(
                    costed,
                    legacy,
                    "uniform costed estimate diverged from legacy estimate \
                     (backend {}, scheduler {}, sample {k})",
                    kind.label(),
                    entry.name()
                );
            }
        }
    }
}

#[test]
fn nonuniform_models_change_the_price_on_both_backends() {
    let cube = Hypercube::new(4);
    let params = MachineParams::ipsc860();
    let com = workloads::random_dregular(NODES, 3, 4096, 21);
    // Per-transfer overhead is charged unconditionally, so the loggp
    // makespan is strictly larger than uniform on any non-empty matrix.
    let loggp: LinkCostModel = "loggp:o=50000,g=10000,G=2.0".parse().unwrap();

    for kind in BackendKind::all() {
        let backend = kind.backend();
        let entry = registry::all()[0];
        let scheme = Scheme::for_scheduler(entry);
        let schedule = entry.schedule(&com, &cube, 1);
        let uniform = backend
            .estimate_costed(
                &params,
                &LinkCostModel::Uniform,
                &cube,
                &com,
                &schedule,
                scheme,
            )
            .unwrap();
        let costed = backend
            .estimate_costed(&params, &loggp, &cube, &com, &schedule, scheme)
            .unwrap();
        assert!(
            costed.makespan_ns > uniform.makespan_ns,
            "backend {}: loggp makespan {} not above uniform {}",
            kind.label(),
            costed.makespan_ns,
            uniform.makespan_ns
        );
    }
}

/// Outcome of one costed run, reduced to the surface the fault sweep
/// compares: completed at some price, stranded on a dead link, or some
/// other error (always a test failure here).
fn classify(r: Result<commrt::BackendReport, SimError>) -> Result<u64, (usize, usize, usize)> {
    match r {
        Ok(report) => Ok(report.makespan_ns),
        Err(SimError::LinkDown { link, src, dst }) => Err((link, src, dst)),
        Err(e) => panic!("unexpected non-fault error: {e}"),
    }
}

#[test]
fn fault_outcomes_are_deterministic_and_agree_across_backends() {
    let params = MachineParams::ipsc860();
    // High enough that the 64 directed cube links lose several members;
    // the exact set is pinned by the seed.
    let faulty = LinkCostModel::Faulty {
        p_ppm: 50_000,
        seed: 42,
    };
    let cube = Hypercube::new(4);
    let set = SampleSet::new(31, 4);
    let matrices = set.realize(&Generator::dregular(NODES, 3, 1024));
    let entry = registry::find("RS_N").expect("RS_N is always registered");
    let scheme = Scheme::for_scheduler(entry);

    let mut saw_linkdown = false;
    for (k, com) in matrices.iter().enumerate() {
        let schedule = entry.schedule(com, &cube, set.seed(k));
        let outcomes: Vec<_> = BackendKind::all()
            .iter()
            .map(|kind| {
                let run = || {
                    classify(
                        kind.backend()
                            .estimate_costed(&params, &faulty, &cube, com, &schedule, scheme),
                    )
                };
                // Determinism: the same request prices identically twice.
                let first = run();
                assert_eq!(first, run(), "{} not deterministic", kind.label());
                first
            })
            .collect();
        // Differential: both backends agree on whether the run survives.
        // (Prices differ by model — the DES simulates, the analytic
        // sums — but strandedness is a pure function of routes and the
        // drawn fault set, which both share.)
        assert_eq!(
            outcomes[0].is_ok(),
            outcomes[1].is_ok(),
            "sample {k}: DES and analytic disagree on survival: {outcomes:?}"
        );
        saw_linkdown |= outcomes[0].is_err();
    }
    assert!(
        saw_linkdown,
        "fault model never stranded a transfer; the differential test is vacuous \
         (raise p or change the seed)"
    );
}

#[test]
fn torus_reroutes_around_the_faults_the_cube_cannot() {
    let params = MachineParams::ipsc860();
    let faulty = LinkCostModel::Faulty {
        p_ppm: 50_000,
        seed: 42,
    };
    let torus = topo::Torus::try_new(&[4, 4]).unwrap();
    let set = SampleSet::new(31, 4);
    let matrices = set.realize(&Generator::dregular(NODES, 3, 1024));
    let entry = registry::find("RS_N").expect("RS_N is always registered");
    let scheme = Scheme::for_scheduler(entry);

    for kind in BackendKind::all() {
        let backend = kind.backend();
        for (k, com) in matrices.iter().enumerate() {
            let schedule = entry.schedule(com, &torus, set.seed(k));
            // The torus has detours, so the same fault probability that
            // strands cube transfers must never produce LinkDown here.
            backend
                .estimate_costed(&params, &faulty, &torus, com, &schedule, scheme)
                .unwrap_or_else(|e| {
                    panic!(
                        "{} sample {k}: torus run failed under faults: {e}",
                        kind.label()
                    )
                });
        }
    }
}
