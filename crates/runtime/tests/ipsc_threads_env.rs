//! `IPSC_THREADS` environment override — isolated in its own integration
//! binary because environment variables are process-global and the other
//! test binaries construct runners concurrently.

use commrt::{ExperimentGrid, ExperimentRunner, WorkloadPoint};
use hypercube::Hypercube;
use workloads::Generator;

#[test]
fn ipsc_threads_overrides_the_runner_thread_count() {
    std::env::set_var("IPSC_THREADS", "3");
    assert_eq!(ExperimentRunner::ipsc860().threads, 3);

    // Garbage and zero fall back to the host default.
    std::env::set_var("IPSC_THREADS", "0");
    assert!(ExperimentRunner::ipsc860().threads >= 1);
    std::env::set_var("IPSC_THREADS", "not-a-number");
    assert!(ExperimentRunner::ipsc860().threads >= 1);

    // The override steers the grid executor too (the grid inherits the
    // runner's thread count) — and, per the determinism guarantee, the
    // results are identical to an unconstrained run.
    std::env::set_var("IPSC_THREADS", "2");
    let grid = || {
        ExperimentGrid::new()
            .topology("hypercube(4)", Hypercube::new(4))
            .schedulers(commsched::registry::primary())
            .point(WorkloadPoint::shared(
                Generator::dregular(16, 3, 1024),
                3,
                1024,
                17,
            ))
            .samples(2)
    };
    let pinned = grid().execute().unwrap();
    std::env::remove_var("IPSC_THREADS");
    let free = grid().execute().unwrap();
    assert_eq!(
        pinned.cells().collect::<Vec<_>>(),
        free.cells().collect::<Vec<_>>()
    );
}
