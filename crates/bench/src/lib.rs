//! Shared driver code for the reproduction harness: the experiment grid of
//! Wang & Ranka (1994) Section 6 — a 64-node hypercube, densities
//! `d ∈ {4, 8, 16, 32, 48}`, uniform message sizes from 16 B to 128 KB, 50
//! random samples per cell — plus helpers shared by the per-figure
//! binaries.

#![forbid(unsafe_code)]

use commrt::{CellRecord, CellResult, ExperimentRunner, Scheme};
use commsched::{ac, lp, rs_n, rs_nl, CommMatrix, Schedule, SchedulerKind};
use hypercube::Hypercube;
use workloads::SampleSet;

/// The paper's machine: a 64-node hypercube.
pub fn paper_cube() -> Hypercube {
    Hypercube::new(6)
}

/// The densities of Table 1.
pub const DENSITIES: [usize; 5] = [4, 8, 16, 32, 48];

/// The message sizes of Table 1 (bytes).
pub const TABLE1_SIZES: [u32; 3] = [256, 1024, 131_072];

/// The message-size sweep of Figures 6-9: powers of two from 16 B to 128 KB.
pub fn figure_sizes() -> Vec<u32> {
    (4..=17).map(|x| 1u32 << x).collect()
}

/// Sample count: the paper uses 50; the harness accepts an override via the
/// `REPRO_SAMPLES` environment variable to trade precision for speed.
pub fn sample_count() -> usize {
    std::env::var("REPRO_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(50)
}

/// Produce the schedule of `kind` for `com` (seeded where randomized).
pub fn schedule_for(
    kind: SchedulerKind,
    com: &CommMatrix,
    cube: &Hypercube,
    seed: u64,
) -> Schedule {
    match kind {
        SchedulerKind::Ac => ac(com),
        SchedulerKind::Lp => lp(com),
        SchedulerKind::RsN => rs_n(com, seed),
        SchedulerKind::RsNl => rs_nl(com, cube, seed),
    }
}

/// Measure one `(algorithm, d, msg_bytes)` cell on the paper's machine.
///
/// # Errors
///
/// Propagates the first simulation error of any sample.
pub fn measure_cell(
    runner: &ExperimentRunner,
    cube: &Hypercube,
    kind: SchedulerKind,
    d: usize,
    msg_bytes: u32,
    samples: usize,
) -> Result<CellResult, simnet::SimError> {
    let n = cube.num_nodes_();
    // Base seed mixes the cell coordinates so no two cells share samples.
    let base = (d as u64) * 1_000_003 + (msg_bytes as u64) * 7 + kind as u64;
    let set = SampleSet::new(base, samples);
    // The paper's assumption 2: "all nodes send and receive an approximately
    // equal number of messages" — the exactly d-regular generator (its RS_N
    // phase counts ~d + log d only hold under that regularity).
    runner.run_cell(
        cube,
        &set,
        &move |seed| workloads::random_dregular(n, d, msg_bytes, seed),
        &|com, seed| schedule_for(kind, com, cube, seed),
        Scheme::paper_default(kind),
    )
}

/// Convenience: measure and convert to a [`CellRecord`].
///
/// # Errors
///
/// Propagates the first simulation error of any sample.
pub fn record_cell(
    experiment: &str,
    runner: &ExperimentRunner,
    cube: &Hypercube,
    kind: SchedulerKind,
    d: usize,
    msg_bytes: u32,
    samples: usize,
) -> Result<CellRecord, simnet::SimError> {
    let cell = measure_cell(runner, cube, kind, d, msg_bytes, samples)?;
    Ok(CellRecord::from_cell(
        experiment,
        kind.label(),
        d,
        msg_bytes,
        &cell,
    ))
}

/// Extension trait covering the `num_nodes` call without importing
/// `Topology` everywhere in the binaries.
pub trait CubeExt {
    /// Number of nodes.
    fn num_nodes_(&self) -> usize;
}

impl CubeExt for Hypercube {
    fn num_nodes_(&self) -> usize {
        use hypercube::Topology;
        self.num_nodes()
    }
}

/// Render a Table-1-style block for one density.
pub fn format_density_block(d: usize, rows: &[(u32, Vec<CellRecord>)]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "d = {d}");
    let _ = writeln!(
        out,
        "  {:>9} | {:>10} {:>10} {:>10} {:>10}",
        "msg size", "AC", "LP", "RS_N", "RS_NL"
    );
    for (bytes, records) in rows {
        let find = |label: &str| {
            records
                .iter()
                .find(|r| r.algorithm == label)
                .map_or(f64::NAN, |r| r.comm_ms)
        };
        let _ = writeln!(
            out,
            "  {:>8}B | {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            bytes,
            find("AC"),
            find("LP"),
            find("RS_N"),
            find("RS_NL")
        );
    }
    if let Some((_, records)) = rows.last() {
        let find = |label: &str, f: &dyn Fn(&CellRecord) -> f64| {
            records
                .iter()
                .find(|r| r.algorithm == label)
                .map_or(f64::NAN, f)
        };
        let _ = writeln!(
            out,
            "  {:>9} | {:>10} {:>10.2} {:>10.2} {:>10.2}",
            "# iters",
            "-",
            find("LP", &|r| r.phases),
            find("RS_N", &|r| r.phases),
            find("RS_NL", &|r| r.phases)
        );
        let _ = writeln!(
            out,
            "  {:>9} | {:>10} {:>10.2} {:>10.2} {:>10.2}",
            "comp",
            "-",
            find("LP", &|r| r.comp_ms),
            find("RS_N", &|r| r.comp_ms),
            find("RS_NL", &|r| r.comp_ms)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_sizes_span_16b_to_128kb() {
        let sizes = figure_sizes();
        assert_eq!(sizes.first(), Some(&16));
        assert_eq!(sizes.last(), Some(&131_072));
        assert_eq!(sizes.len(), 14);
    }

    #[test]
    fn cell_seeds_differ_across_cells() {
        // Different (kind, d, bytes) must map to different base seeds.
        let a = (4u64) * 1_000_003 + 256 * 7 + SchedulerKind::Ac as u64;
        let b = (8u64) * 1_000_003 + 256 * 7 + SchedulerKind::Ac as u64;
        let c = (4u64) * 1_000_003 + 1024 * 7 + SchedulerKind::Lp as u64;
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn small_cell_measures() {
        let cube = paper_cube();
        let runner = ExperimentRunner::ipsc860();
        let cell = measure_cell(&runner, &cube, SchedulerKind::RsN, 4, 1024, 3).unwrap();
        assert!(cell.comm_ms > 0.0);
        assert!(cell.phases >= 4.0);
    }
}
