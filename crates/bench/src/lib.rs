//! Shared driver code for the reproduction harness: the experiment grid of
//! Wang & Ranka (1994) Section 6 — a 64-node hypercube, densities
//! `d ∈ {4, 8, 16, 32, 48}`, uniform message sizes from 16 B to 128 KB, 50
//! random samples per cell — plus helpers shared by the per-figure
//! binaries.
//!
//! The binaries do not name algorithms: they enumerate
//! [`commsched::registry`] (the primary entries for the paper tables, the
//! variants for the ablations), so a scheduler registered there appears in
//! every artifact automatically. Since the grid refactor they also do not
//! loop over cells: each declares its sweep as one
//! [`commrt::ExperimentGrid`] ([`paper_grid`]), executes it on the
//! work-stealing pool, and renders tables from the returned
//! [`commrt::GridResult`].

#![forbid(unsafe_code)]

pub mod simcheck;

use commrt::grid::{paper_base_seed, WorkloadPoint};
use commrt::{CellRecord, CellResult, ExperimentGrid, ExperimentRunner, Scheme};
use commsched::{CommMatrix, Schedule, Scheduler, SchedulerKind};
use hypercube::Hypercube;
use workloads::{Generator, SampleSet};

/// The paper's machine: a 64-node hypercube.
pub fn paper_cube() -> Hypercube {
    Hypercube::new(6)
}

/// The densities of Table 1.
pub const DENSITIES: [usize; 5] = [4, 8, 16, 32, 48];

/// The message sizes of Table 1 (bytes).
pub const TABLE1_SIZES: [u32; 3] = [256, 1024, 131_072];

/// The message-size sweep of Figures 6-9: powers of two from 16 B to 128 KB.
pub fn figure_sizes() -> Vec<u32> {
    (4..=17).map(|x| 1u32 << x).collect()
}

/// Sample count: the paper uses 50; the harness accepts an override via the
/// `REPRO_SAMPLES` environment variable to trade precision for speed.
pub fn sample_count() -> usize {
    sample_count_or(50)
}

/// [`sample_count`] with a caller-chosen default — the one parse of the
/// `REPRO_SAMPLES` contract (positive integers only; anything else falls
/// back), shared by the repro binaries, the `simcheck` harness, the
/// benches, and the conformance suite.
pub fn sample_count_or(default: usize) -> usize {
    std::env::var("REPRO_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Produce the schedule of `kind` for `com` (seeded where randomized) —
/// compat shim over the registry for enum-keyed call sites.
pub fn schedule_for(
    kind: SchedulerKind,
    com: &CommMatrix,
    cube: &Hypercube,
    seed: u64,
) -> Schedule {
    kind.scheduler().schedule(com, cube, seed)
}

/// The repro binaries' opt-in schedule cache, from the `IPSC_CACHE`
/// environment variable: unset/empty/`off` = no cache, `mem` = in-memory
/// only, anything else = a persistent artifact-store directory. Caching
/// never changes a reported number (tested below and in the grid suite) —
/// only how often schedules are recompiled.
pub fn cache_config_from_env() -> Option<commrt::CacheConfig> {
    match std::env::var("IPSC_CACHE") {
        Err(_) => None,
        Ok(v) if v.is_empty() || v == "off" => None,
        Ok(v) if v == "mem" => Some(commrt::CacheConfig::in_memory()),
        Ok(dir) => Some(commrt::CacheConfig::persistent(dir)),
    }
}

/// The repro binaries' simulation-backend selection, from the
/// `IPSC_BACKEND` environment variable: unset/empty/`des` = the exact
/// discrete-event engine, `analytic` = the occupancy model (estimates
/// within the conformance suite's documented tolerances, orders of
/// magnitude faster — `BENCH_backend_throughput.json`).
///
/// # Panics
///
/// Panics on an unrecognized value — a typo'd backend must not silently
/// fall back to a different substrate mid-experiment.
pub fn backend_from_env() -> commrt::BackendKind {
    commrt::BackendKind::from_env().unwrap_or_else(|e| panic!("{e}"))
}

/// The repro binaries' link-cost-model selection, from the
/// `IPSC_COSTMODEL` environment variable: unset/empty/`uniform` = the
/// paper's uniform machine (byte-identical to every pre-cost-model
/// output), otherwise a model string like `loggp:o=75000,g=10000,G=1.5`
/// or `faulty:p=0.05,seed=42` (see [`commrt::LinkCostModel::parse`]).
///
/// # Panics
///
/// Panics on an unrecognized value — a typo'd model must not silently
/// price a sweep on the wrong machine.
pub fn cost_model_from_env() -> commrt::LinkCostModel {
    commrt::LinkCostModel::from_env().unwrap_or_else(|e| panic!("{e}"))
}

/// The paper's sweep as a declarative grid: `entries` as scheduler
/// columns, one pre-grid-compatible [`WorkloadPoint`] per `(d, M)` pair
/// (densities outermost), `samples` samples per cell, on the 64-node
/// hypercube. Each binary narrows the axes to its figure and renders from
/// the executed [`commrt::GridResult`]. Honours the `IPSC_CACHE` schedule
/// cache opt-in ([`cache_config_from_env`]), the `IPSC_BACKEND`
/// simulation-backend selection ([`backend_from_env`]), and the
/// `IPSC_COSTMODEL` link-cost model ([`cost_model_from_env`]).
pub fn paper_grid(
    entries: impl IntoIterator<Item = &'static dyn Scheduler>,
    densities: &[usize],
    sizes: &[u32],
    samples: usize,
) -> ExperimentGrid {
    let n = paper_cube().num_nodes_();
    let mut grid = ExperimentGrid::new()
        .topology("hypercube(6)", paper_cube())
        .schedulers(entries)
        .samples(samples)
        .with_backend(backend_from_env())
        .with_link_costs(cost_model_from_env());
    if let Some(config) = cache_config_from_env() {
        grid = grid.with_cache(config);
    }
    for &d in densities {
        for &msg_bytes in sizes {
            // The paper's assumption 2: "all nodes send and receive an
            // approximately equal number of messages" — the exactly
            // d-regular generator (its RS_N phase counts ~d + log d only
            // hold under that regularity). PerScheduler seeds pin the
            // historical per-algorithm sample streams.
            grid = grid.point(WorkloadPoint::per_scheduler(
                Generator::dregular(n, d, msg_bytes),
                d,
                msg_bytes,
            ));
        }
    }
    grid
}

/// Measure one `(algorithm, d, msg_bytes)` cell on the paper's machine
/// under the entry's paper-default scheme.
///
/// Kept as the closure-driven reference oracle for the grid path: a
/// [`paper_grid`] cell must equal this measurement bit-for-bit (tested
/// below).
///
/// # Errors
///
/// Propagates the first simulation error of any sample.
pub fn measure_cell(
    runner: &ExperimentRunner,
    cube: &Hypercube,
    entry: &dyn Scheduler,
    d: usize,
    msg_bytes: u32,
    samples: usize,
) -> Result<CellResult, simnet::SimError> {
    let n = cube.num_nodes_();
    // Base seed mixes the cell coordinates so no two cells share samples
    // (`Scheduler::ordinal` pins the historical per-algorithm streams).
    let base = paper_base_seed(d, msg_bytes, entry.ordinal());
    let set = SampleSet::new(base, samples);
    // The paper's assumption 2: "all nodes send and receive an approximately
    // equal number of messages" — the exactly d-regular generator (its RS_N
    // phase counts ~d + log d only hold under that regularity).
    runner.run_scheduler_cell(
        cube,
        &set,
        &move |seed| workloads::random_dregular(n, d, msg_bytes, seed),
        entry,
        Scheme::for_scheduler(entry),
    )
}

/// Convenience: measure and convert to a [`CellRecord`].
///
/// # Errors
///
/// Propagates the first simulation error of any sample.
pub fn record_cell(
    experiment: &str,
    runner: &ExperimentRunner,
    cube: &Hypercube,
    entry: &dyn Scheduler,
    d: usize,
    msg_bytes: u32,
    samples: usize,
) -> Result<CellRecord, simnet::SimError> {
    let cell = measure_cell(runner, cube, entry, d, msg_bytes, samples)?;
    Ok(CellRecord::from_entry(
        experiment, entry, d, msg_bytes, &cell,
    ))
}

/// Extension trait covering the `num_nodes` call without importing
/// `Topology` everywhere in the binaries.
pub trait CubeExt {
    /// Number of nodes.
    fn num_nodes_(&self) -> usize;
}

impl CubeExt for Hypercube {
    fn num_nodes_(&self) -> usize {
        use hypercube::Topology;
        self.num_nodes()
    }
}

/// Wall-clock-time `f` over `reps` repetitions into a
/// [`criterion::CaseResult`] (ns), for recording hand-timed measurements
/// next to the bench outputs.
pub fn time_case(
    name: impl Into<String>,
    reps: usize,
    mut f: impl FnMut(),
) -> criterion::CaseResult {
    let mut samples = Vec::with_capacity(reps.max(1));
    for _ in 0..reps.max(1) {
        let t0 = std::time::Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    criterion::CaseResult {
        name: name.into(),
        mean_ns: samples.iter().sum::<f64>() / samples.len() as f64,
        min_ns: samples.iter().copied().fold(f64::INFINITY, f64::min),
        max_ns: samples.iter().copied().fold(0.0f64, f64::max),
    }
}

/// Write `BENCH_<group>.json` in the one shared measurement format —
/// delegated to the vendored criterion shim's quiet writer (same path
/// resolution, sanitization, merge, and JSON shape as the bench targets;
/// no stdout, because the repro binaries pin theirs byte-for-byte).
///
/// # Errors
///
/// I/O errors from the filesystem.
pub fn write_bench_json(
    group: &str,
    cases: &[criterion::CaseResult],
) -> std::io::Result<std::path::PathBuf> {
    criterion::write_report_quiet(group, cases)
}

/// Append `cases` to `BENCH_<group>.json` across *processes*: existing
/// cases survive, except that a new case replaces any old one with the
/// same name (re-running a sweep must update its rows, not duplicate
/// them). This is how `schedctl bench --dims` adds its `daemon/d{dim}`
/// rows to the `BENCH_scale_sim.json` the scale bench wrote earlier —
/// the shim's own writer truncates on a process's first write.
///
/// # Errors
///
/// I/O errors from the filesystem.
pub fn append_bench_json(
    group: &str,
    cases: &[criterion::CaseResult],
) -> std::io::Result<std::path::PathBuf> {
    let mut merged = criterion::read_report(group);
    merged.retain(|old| !cases.iter().any(|new| new.name == old.name));
    merged.extend(cases.iter().cloned());
    criterion::rewrite_report(group, &merged)
}

/// Render a Table-1-style block for one density. The column set is taken
/// from the records themselves (first-row order), so the table grows with
/// the registry instead of hardcoding algorithm names.
pub fn format_density_block(d: usize, rows: &[(u32, Vec<CellRecord>)]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "d = {d}");
    let labels: Vec<&str> = rows
        .first()
        .map(|(_, records)| records.iter().map(|r| r.algorithm.as_str()).collect())
        .unwrap_or_default();
    let _ = write!(out, "  {:>9} |", "msg size");
    for label in &labels {
        let _ = write!(out, " {label:>12}");
    }
    let _ = writeln!(out);
    let find = |records: &[CellRecord], label: &str, f: &dyn Fn(&CellRecord) -> f64| {
        records
            .iter()
            .find(|r| r.algorithm == label)
            .map_or(f64::NAN, f)
    };
    for (bytes, records) in rows {
        let _ = write!(out, "  {:>8}B |", bytes);
        for label in &labels {
            let _ = write!(out, " {:>12.2}", find(records, label, &|r| r.comm_ms));
        }
        let _ = writeln!(out);
    }
    // Footer rows from the last (largest-message) row; schedule-free
    // algorithms (0 phases, e.g. AC) print "-".
    if let Some((_, records)) = rows.last() {
        for (title, f) in [
            (
                "# iters",
                &(|r: &CellRecord| r.phases) as &dyn Fn(&CellRecord) -> f64,
            ),
            ("comp", &|r: &CellRecord| r.comp_ms),
        ] {
            let _ = write!(out, "  {title:>9} |");
            for label in &labels {
                if find(records, label, &|r| r.phases) == 0.0 {
                    let _ = write!(out, " {:>12}", "-");
                } else {
                    let _ = write!(out, " {:>12.2}", find(records, label, f));
                }
            }
            let _ = writeln!(out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsched::registry;

    #[test]
    fn figure_sizes_span_16b_to_128kb() {
        let sizes = figure_sizes();
        assert_eq!(sizes.first(), Some(&16));
        assert_eq!(sizes.last(), Some(&131_072));
        assert_eq!(sizes.len(), 14);
    }

    #[test]
    fn cell_seeds_differ_across_cells() {
        // Different (entry, d, bytes) must map to different base seeds,
        // and the canonical formula must stay pinned (historical sample
        // streams).
        let ac = registry::find("AC").unwrap();
        let lp = registry::find("LP").unwrap();
        let a = paper_base_seed(4, 256, ac.ordinal());
        let b = paper_base_seed(8, 256, ac.ordinal());
        let c = paper_base_seed(4, 1024, lp.ordinal());
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, 4 * 1_000_003 + 256 * 7);
    }

    #[test]
    fn paper_grid_cells_match_the_closure_oracle_bit_for_bit() {
        // The grid rewrite must not move a single bit of any reproduced
        // table: each grid cell equals the pre-grid measure_cell path.
        let result = paper_grid(registry::primary(), &[4, 8], &[256, 1024], 2)
            .execute()
            .unwrap();
        let cube = paper_cube();
        let runner = ExperimentRunner::ipsc860();
        for entry in registry::primary() {
            let col = result.find_column(entry.name()).unwrap();
            for (d, bytes) in [(4, 256), (4, 1024), (8, 256), (8, 1024)] {
                let pi = result.point_index(d, bytes).unwrap();
                let oracle = measure_cell(&runner, &cube, entry, d, bytes, 2).unwrap();
                assert_eq!(
                    result.at(col, pi).unwrap().result,
                    oracle,
                    "{} d={d} M={bytes}",
                    entry.name()
                );
            }
        }
    }

    #[test]
    fn paper_grid_numbers_survive_the_schedule_cache() {
        // The repro binaries must be byte-identical with IPSC_CACHE set or
        // unset; the env var is process-global, so exercise the same code
        // path (with_cache) directly.
        let plain = paper_grid(registry::primary(), &[4], &[1024], 2)
            .execute()
            .unwrap();
        let cached = paper_grid(registry::primary(), &[4], &[1024], 2)
            .with_cache(commrt::CacheConfig::in_memory())
            .execute()
            .unwrap();
        assert_eq!(
            plain.cells().collect::<Vec<_>>(),
            cached.cells().collect::<Vec<_>>()
        );
    }

    #[test]
    fn bench_json_has_the_shim_shape() {
        let case = time_case("noop", 2, || {});
        assert!(case.min_ns <= case.mean_ns && case.mean_ns <= case.max_ns);
        let path = write_bench_json("libtest_selftest", &[case]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.contains("\"name\": \"noop\""));
        assert!(text.contains("\"mean_ns\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_bench_json_replaces_by_name_and_keeps_the_rest() {
        let case = |name: &str, mean: f64| criterion::CaseResult {
            name: name.to_string(),
            mean_ns: mean,
            min_ns: mean,
            max_ns: mean,
        };
        let group = "libtest_append_selftest";
        let path = write_bench_json(group, &[case("scale/a", 1.0)]).unwrap();
        // Cross-process-style append: keeps scale/a, adds daemon rows.
        append_bench_json(group, &[case("daemon/d4", 2.0)]).unwrap();
        // Re-running a sweep replaces its rows instead of duplicating.
        append_bench_json(group, &[case("daemon/d4", 3.0), case("daemon/d5", 4.0)]).unwrap();
        let back = criterion::read_report(group);
        let names: Vec<&str> = back.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["scale/a", "daemon/d4", "daemon/d5"]);
        assert_eq!(back[1].mean_ns, 3.0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn small_cell_measures() {
        let cube = paper_cube();
        let runner = ExperimentRunner::ipsc860();
        let entry = registry::find("RS_N").unwrap();
        let cell = measure_cell(&runner, &cube, entry, 4, 1024, 3).unwrap();
        assert!(cell.comm_ms > 0.0);
        assert!(cell.phases >= 4.0);
    }

    #[test]
    fn greedy_cell_measures_like_any_other_entry() {
        let cube = paper_cube();
        let runner = ExperimentRunner::ipsc860();
        let entry = registry::find("GREEDY").unwrap();
        let cell = measure_cell(&runner, &cube, entry, 4, 1024, 2).unwrap();
        assert!(cell.comm_ms > 0.0);
        assert!(cell.phases >= 4.0);
        assert!(cell.comp_ms > 0.0);
    }

    #[test]
    fn density_block_grows_with_the_registry() {
        let cube = paper_cube();
        let runner = ExperimentRunner::ipsc860();
        let records: Vec<CellRecord> = registry::primary()
            .map(|e| record_cell("t", &runner, &cube, e, 4, 256, 1).unwrap())
            .collect();
        let block = format_density_block(4, &[(256, records)]);
        for e in registry::primary() {
            assert!(block.contains(e.name()), "missing column {}", e.name());
        }
        assert!(block.contains("# iters"));
        assert!(block.contains(" - "), "AC must show '-' footer entries");
    }

    #[test]
    fn schedule_for_is_a_registry_shim() {
        let cube = Hypercube::new(4);
        let com = workloads::random_dregular(16, 3, 512, 1);
        let via_shim = schedule_for(SchedulerKind::RsNl, &com, &cube, 5);
        let via_registry = registry::find("RS_NL").unwrap().schedule(&com, &cube, 5);
        assert_eq!(via_shim.phases(), via_registry.phases());
    }
}
