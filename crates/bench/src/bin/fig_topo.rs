//! Cross-fabric scheduler comparison: every registry scheduler on four
//! 16-node machines — the paper's hypercube (`cube:d=4`), two tori of
//! the same node count (`torus:4x4`, `torus:2x2x2x2`), and a k=4
//! fat-tree — over the same sampled d-regular traffic. The paper's
//! question ("does runtime scheduling beat asynchronous sends?") is
//! machine-shaped: wraparound links shorten routes, fat-tree up-down
//! paths lengthen them, and link-aware scheduling (RS_NL) shifts value
//! accordingly. Schedulers that decline a fabric (LP requires e-cube
//! hypercubes) appear as explicit holes, not silent omissions.
//!
//! Run: `cargo run -p repro_bench --release --bin fig_topo`
//! (honours `IPSC_BACKEND`, `IPSC_CACHE`, and `REPRO_SAMPLES`).

use commrt::grid::{CellId, ExperimentGrid, WorkloadPoint};
use commrt::write_csv;
use commsched::registry;
use repro_bench::{backend_from_env, cache_config_from_env, sample_count_or, write_bench_json};
use topo::TopologyKind;
use workloads::Generator;

/// The compared fabrics — all 16 nodes, so one matrix family serves all.
const KINDS: [&str; 4] = ["cube:d=4", "torus:4x4", "torus:2x2x2x2", "fattree:k=4"];
const NODES: usize = 16;
const DENSITIES: [usize; 2] = [3, 8];
const MSG_BYTES: u32 = 1024;

fn main() {
    let samples = sample_count_or(5);
    let mut grid = ExperimentGrid::new()
        .schedulers(registry::all().iter().copied())
        .samples(samples)
        .with_backend(backend_from_env());
    if let Some(config) = cache_config_from_env() {
        grid = grid.with_cache(config);
    }
    for spec in KINDS {
        let kind = TopologyKind::parse(spec).expect("pinned kind string");
        assert_eq!(
            kind.num_nodes(),
            NODES,
            "{spec} is not a {NODES}-node fabric"
        );
        grid = grid.shared_topology(spec, kind.build_arc());
    }
    for &d in &DENSITIES {
        // Shared seeds: every scheduler and every fabric scores the same
        // sampled matrices, so columns differ only by algorithm and rows
        // only by machine.
        grid = grid.point(WorkloadPoint::shared(
            Generator::dregular(NODES, d, MSG_BYTES),
            d,
            MSG_BYTES,
            900 + d as u64,
        ));
    }
    let result = grid.execute().unwrap_or_else(|e| panic!("{e}"));

    let entries = registry::all();
    let mut records = Vec::new();
    let mut cases = Vec::new();
    for (ti, spec) in KINDS.iter().enumerate() {
        println!("fabric {spec} ({NODES} nodes): mean comm time (ms), {samples} sample(s)");
        print!("{:>10} |", "scheduler");
        for d in DENSITIES {
            print!(" {:>9}", format!("d={d}"));
        }
        println!();
        for (ci, entry) in entries.iter().enumerate() {
            print!("{:>10} |", entry.name());
            for (pi, &d) in DENSITIES.iter().enumerate() {
                let id = CellId {
                    col: ci,
                    point: pi,
                    topo: ti,
                };
                match result.cell(id) {
                    Some(cell) => {
                        records.push(cell.record(&format!("fig_topo/{spec}")));
                        cases.push(criterion::CaseResult {
                            name: format!("topo_compare/{spec}/{}/d{d}", entry.name()),
                            mean_ns: cell.result.comm_ms * 1e6,
                            min_ns: cell.result.comm_ms_min * 1e6,
                            max_ns: cell.result.comm_ms_max * 1e6,
                        });
                        print!(" {:>9.3}", cell.result.comm_ms);
                    }
                    // The scheduler declined this fabric: an addressable
                    // hole, rendered as such.
                    None => print!(" {:>9}", "declined"),
                }
            }
            println!();
        }
        println!();
    }

    let stats = result.stats();
    println!(
        "cells: {} measured, {} declined (scheduler does not support the fabric)",
        stats.cells, stats.skipped
    );
    write_csv(std::path::Path::new("results/fig_topo.csv"), &records).expect("write csv");
    println!("wrote results/fig_topo.csv");
    let path = write_bench_json("topo_compare", &cases).expect("write bench json");
    println!("wrote {}", path.display());
}
