//! Regenerates **Figures 10 and 11** of the paper: the scheduling
//! (computation) overhead of RS_N and RS_NL as a fraction of the
//! communication cost, versus message size (2^x bytes, x = 4..17), for
//! every density — assuming the schedule is used once. The fraction falls
//! sharply when the message size crosses the 100-byte protocol switch and
//! becomes negligible for large messages, which is the paper's argument
//! that the schedulers are cheap enough for *runtime* scheduling.
//!
//! Both figures come from one grid over (RS_N, RS_NL) × densities ×
//! sizes; rendering transposes it per figure.
//!
//! Run: `cargo run -p repro-bench --release --bin fig10to11`

use commrt::write_csv;
use commsched::registry;
use repro_bench::{figure_sizes, paper_grid, sample_count, DENSITIES};

fn main() {
    let samples = sample_count().min(20);
    let sizes = figure_sizes();

    let entries = ["RS_N", "RS_NL"].map(|name| registry::find(name).expect("registered"));
    let result = paper_grid(entries, &DENSITIES, &sizes, samples)
        .execute()
        .unwrap_or_else(|e| panic!("{e}"));

    let mut records = Vec::new();
    for (name, fig) in [("RS_N", 10u32), ("RS_NL", 11)] {
        let col = result.find_column(name).expect("declared column");
        println!("Figure {fig}: comp/comm fraction for {name} (schedule used once)");
        print!("{:>9} |", "bytes");
        for d in DENSITIES {
            print!(" {:>8}", format!("d={d}"));
        }
        println!();
        for &bytes in &sizes {
            print!("{bytes:>9} |");
            for d in DENSITIES {
                let point = result.point_index(d, bytes).expect("declared point");
                let cell = result.at(col, point).expect("measured cell");
                let frac = cell.result.comp_ms / cell.result.comm_ms;
                records.push(cell.record(&format!("fig{fig}")));
                print!(" {:>8.3}", frac);
            }
            println!();
        }
        println!();
    }

    println!("paper: RS_N fraction <= ~0.6 beyond 128 B, < 0.25 beyond 2 KB;");
    println!("       RS_NL fraction <= ~2.5 for small messages, < 0.25 beyond 8 KB");
    write_csv(std::path::Path::new("results/fig10to11.csv"), &records).expect("write csv");
    println!("wrote results/fig10to11.csv");
}
