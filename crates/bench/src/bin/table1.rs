//! Regenerates **Table 1** of the paper: communication cost (ms), number of
//! communication phases, and scheduling cost on a 64-node hypercube, for
//! d in {4, 8, 16, 32, 48} and message sizes {256 B, 1 KB, 128 KB}.
//!
//! Columns come from the scheduler registry's primary entries — the
//! paper's AC/LP/RS_N/RS_NL plus the deterministic GREEDY baseline; a
//! newly registered scheduler becomes a new column with no change here.
//!
//! Run: `cargo run -p repro-bench --release --bin table1`
//! (set `REPRO_SAMPLES` to override the paper's 50 samples per cell).

use commrt::{write_csv, write_json, ExperimentRunner};
use commsched::registry;
use repro_bench::{
    format_density_block, paper_cube, record_cell, sample_count, DENSITIES, TABLE1_SIZES,
};

fn main() {
    let cube = paper_cube();
    let runner = ExperimentRunner::ipsc860();
    let samples = sample_count();
    println!("Table 1 reproduction: 64-node iPSC/860 model, {samples} samples per cell\n");

    let mut all_records = Vec::new();
    for d in DENSITIES {
        let mut rows = Vec::new();
        for bytes in TABLE1_SIZES {
            let mut records = Vec::new();
            for entry in registry::primary() {
                let rec = record_cell("table1", &runner, &cube, entry, d, bytes, samples)
                    .unwrap_or_else(|e| panic!("{} d={d} M={bytes}: {e}", entry.name()));
                records.push(rec.clone());
                all_records.push(rec);
            }
            rows.push((bytes, records));
        }
        print!("{}", format_density_block(d, &rows));
        println!();
    }

    let out_dir = std::path::Path::new("results");
    write_csv(&out_dir.join("table1.csv"), &all_records).expect("write csv");
    write_json(&out_dir.join("table1.json"), &all_records).expect("write json");
    println!("wrote results/table1.csv and results/table1.json");
}
