//! Regenerates **Table 1** of the paper: communication cost (ms), number of
//! communication phases, and scheduling cost on a 64-node hypercube, for
//! d in {4, 8, 16, 32, 48} and message sizes {256 B, 1 KB, 128 KB}.
//!
//! Columns come from the scheduler registry's primary entries — the
//! paper's AC/LP/RS_N/RS_NL plus the deterministic GREEDY baseline; a
//! newly registered scheduler becomes a new column with no change here.
//! The whole sweep is one declarative [`repro_bench::paper_grid`]
//! executed cell- and sample-parallel; this binary only renders the
//! result.
//!
//! Run: `cargo run -p repro-bench --release --bin table1`
//! (set `REPRO_SAMPLES` to override the paper's 50 samples per cell, and
//! `IPSC_THREADS` to pin the worker count).

use commrt::{write_csv, write_grid_markdown, write_json};
use commsched::registry;
use repro_bench::{format_density_block, paper_grid, sample_count, DENSITIES, TABLE1_SIZES};

fn main() {
    let samples = sample_count();
    println!("Table 1 reproduction: 64-node iPSC/860 model, {samples} samples per cell\n");

    let result = paper_grid(registry::primary(), &DENSITIES, &TABLE1_SIZES, samples)
        .execute()
        .unwrap_or_else(|e| panic!("{e}"));

    let mut all_records = Vec::new();
    for d in DENSITIES {
        let mut rows = Vec::new();
        for bytes in TABLE1_SIZES {
            let point = result.point_index(d, bytes).expect("declared point");
            let records: Vec<_> = result.row(point).map(|c| c.record("table1")).collect();
            all_records.extend(records.iter().cloned());
            rows.push((bytes, records));
        }
        print!("{}", format_density_block(d, &rows));
        println!();
    }

    let out_dir = std::path::Path::new("results");
    write_csv(&out_dir.join("table1.csv"), &all_records).expect("write csv");
    write_json(&out_dir.join("table1.json"), &all_records).expect("write json");
    write_grid_markdown(
        &out_dir.join("table1.md"),
        "Table 1: communication cost on the simulated 64-node iPSC/860",
        &result,
    )
    .expect("write markdown");
    println!("wrote results/table1.csv and results/table1.json");
    eprintln!(
        "grid: {} cells, {} tasks; also wrote results/table1.md",
        result.stats().cells,
        result.stats().tasks
    );
}
