//! Ablation studies for the design choices the paper calls out:
//!
//! 1. `CCOM` row randomization on/off (Section 4.2: without the shuffle,
//!    early phases pile node contention onto small node ids).
//! 2. RS_NL pairwise-exchange preference on/off (Section 5 / Observation 1).
//! 3. S1 vs S2 for each phased algorithm (Section 6).
//! 4. Claim policy: atomic vs hold-and-wait circuit establishment.
//! 5. Bounded system buffers for AC (Section 3's blocking hazard).
//!
//! Run: `cargo run -p repro-bench --release --bin ablations`

use commrt::{run_schedule, ExperimentRunner, Scheme};
use commsched::{ac, rs_n_with, rs_nl, rs_nl_with, RsOptions, SchedulerKind};
use repro_bench::{paper_cube, sample_count, CubeExt};
use simnet::MachineParams;
use workloads::SampleSet;

fn main() {
    let cube = paper_cube();
    let n = cube.num_nodes_();
    let samples = sample_count().min(20);

    println!("=== Ablation 1: RS_N randomization (d=16, 1 KB) ===");
    {
        // Section 4.2: without randomization the live entries sit in
        // ascending destination order and every row starts its scan at the
        // same place, so early phases collide on small node ids. Both the
        // row shuffle and the random sweep start are disabled together to
        // expose the fully deterministic worst case.
        let runner = ExperimentRunner::ipsc860();
        let set = SampleSet::new(101, samples);
        let gen = move |seed| workloads::random_dense(n, 16, 1024, seed);
        for (label, on) in [("randomized (paper)", true), ("fully deterministic", false)] {
            let opts = RsOptions {
                randomize_rows: on,
                random_start: on,
                ..RsOptions::default()
            };
            let cell = runner
                .run_cell(
                    &cube,
                    &set,
                    &gen,
                    &|com, seed| rs_n_with(com, seed, opts),
                    Scheme::S2,
                )
                .expect("cell");
            println!(
                "  {label:<20} phases = {:>6.2}   comm = {:>7.2} ms",
                cell.phases, cell.comm_ms
            );
        }
        println!("  (paper: randomization keeps the expected number of collisions bounded.");
        println!("   in this implementation the cyclic row sweep already spreads collisions,");
        println!("   so the measured gap is small — the shuffle is kept for fidelity to the");
        println!("   paper's analysis, which assumes it)\n");
    }

    println!("=== Ablation 2: pairwise-exchange preference (RS_NL, symmetric halo, 32 KB) ===");
    {
        let runner = ExperimentRunner::ipsc860();
        let set = SampleSet::new(202, samples);
        let gen = move |_seed| workloads::structured::ring_halo(n, 4, 32_768);
        for (label, pref) in [("with preference", true), ("without preference", false)] {
            let opts = RsOptions {
                pairwise_preference: pref,
                ..RsOptions::default()
            };
            let cell = runner
                .run_cell(
                    &cube,
                    &set,
                    &gen,
                    &|com, seed| rs_nl_with(com, &paper_cube(), seed, opts),
                    Scheme::S1,
                )
                .expect("cell");
            println!(
                "  {label:<20} exchanges = {:>6.1}   comm = {:>7.2} ms",
                cell.exchange_pairs, cell.comm_ms
            );
        }
        println!("  (paper: fusing reciprocal pairs halves their cost on the iPSC/860)\n");
    }

    println!("=== Ablation 3: S1 vs S2 per algorithm ===");
    {
        // Two workloads: random (no reciprocal pairs to fuse) and a
        // symmetric halo (everything fusable). The paper's rule — use S1
        // where the algorithm exploits pairwise exchange — is about the
        // second kind; on purely random traffic S2's free-running blast is
        // competitive.
        let runner = ExperimentRunner::ipsc860();
        for (wl_label, gen) in [
            (
                "random d=16, 32 KB   ",
                Box::new(move |seed| workloads::random_dregular(n, 16, 32_768, seed))
                    as Box<dyn Fn(u64) -> commsched::CommMatrix + Sync>,
            ),
            (
                "symmetric halo, 32 KB",
                Box::new(move |_| workloads::structured::ring_halo(n, 8, 32_768)),
            ),
        ] {
            let set = SampleSet::new(303, samples);
            for kind in [SchedulerKind::Lp, SchedulerKind::RsN, SchedulerKind::RsNl] {
                let mut row = format!("  {wl_label}  {:<6}", kind.label());
                for scheme in [Scheme::S1, Scheme::S2] {
                    let cell = runner
                        .run_cell(
                            &cube,
                            &set,
                            gen.as_ref(),
                            &|com, seed| repro_bench::schedule_for(kind, com, &paper_cube(), seed),
                            scheme,
                        )
                        .expect("cell");
                    row.push_str(&format!("  {} = {:>7.2} ms", scheme.label(), cell.comm_ms));
                }
                println!("{row}");
            }
        }
        println!("  (paper: S1 wins where pairwise exchange is exploited — LP, RS_NL)\n");
    }

    println!("=== Ablation 4: machine model — ports and claim policy (AC, d=16, 32 KB) ===");
    {
        let set = SampleSet::new(404, samples);
        let default = MachineParams::ipsc860();
        let split_atomic = MachineParams {
            ports: simnet::PortModel::Split,
            ..MachineParams::ipsc860()
        };
        for (label, params) in [
            ("unified + atomic (default)", default),
            ("split   + atomic          ", split_atomic),
            (
                "split   + hold-and-wait   ",
                MachineParams::ipsc860_hold_and_wait(),
            ),
        ] {
            let runner = ExperimentRunner {
                params,
                ..ExperimentRunner::ipsc860()
            };
            let cell = runner
                .run_cell(
                    &cube,
                    &set,
                    &move |seed| workloads::random_dregular(n, 16, 32_768, seed),
                    &|com, _| ac(com),
                    Scheme::S2,
                )
                .expect("cell");
            println!("  {label} comm = {:>8.2} ms", cell.comm_ms);
        }
        println!("  (split ports let send overlap recv — faster than Observation 1's unified");
        println!("   engine; hold-and-wait then adds back tree-saturation blocking)\n");
    }

    println!(
        "=== Ablation 5: AC without pre-posted receives (send-detect-receive, d=8, 16 KB) ==="
    );
    {
        // With pre-posted receives (Figure 1) buffers are never touched; the
        // paper's Section 3 hazard appears in the send-detect-receive
        // variant, where every arrival is buffered and copied, and bounded
        // buffers can deadlock the machine.
        let com = workloads::random_dregular(n, 8, 16_384, 909);
        let posted = run_schedule(
            &cube,
            &MachineParams::ipsc860(),
            &com,
            &ac(&com),
            Scheme::S2,
        )
        .expect("posted AC runs");
        println!(
            "  pre-posted (Figure 1)      comm = {:>8.2} ms   copies = {}",
            posted.makespan_ms(),
            posted.stats.copies
        );
        for (label, cap) in [
            ("send-detect, unbounded     ", None),
            ("send-detect, 512 KB buffers", Some(512 * 1024)),
            ("send-detect, 64 KB buffers ", Some(64 * 1024)),
        ] {
            let params = MachineParams {
                buffer_bytes: cap,
                ..MachineParams::ipsc860()
            };
            let progs = commrt::compile_ac_send_detect(&com);
            match simnet::simulate(&cube, &params, progs) {
                Ok(report) => println!(
                    "  {label} comm = {:>8.2} ms   copies = {}",
                    report.makespan_ms(),
                    report.stats.copies
                ),
                Err(e) => println!("  {label} DEADLOCK: {e}"),
            }
        }
        println!("  (paper Section 3: buffer copying is costly; overflow can deadlock)\n");
    }

    println!("=== Bonus: RS_NL on a 2-D mesh (topology generality, d=8, 8 KB) ===");
    {
        let mesh = hypercube::Mesh2d::new(8, 8);
        let com = workloads::random_dregular(64, 8, 8192, 77);
        let schedule = rs_nl(&com, &mesh, 77);
        let report = run_schedule(
            &mesh,
            &MachineParams::ipsc860(),
            &com,
            &schedule,
            Scheme::S1,
        )
        .expect("mesh run");
        println!(
            "  mesh comm = {:.2} ms over {} phases (link-free: {})",
            report.makespan_ms(),
            schedule.num_phases(),
            schedule.link_contention_free(&mesh)
        );
    }
}
