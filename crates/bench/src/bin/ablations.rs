//! Ablation studies for the design choices the paper calls out:
//!
//! 1. Registry variants: every ablation entry in the scheduler registry
//!    (alternative `RsOptions` — row randomization off, pairwise-exchange
//!    preference off, ...) measured against its family's canonical
//!    configuration on a random and a symmetric workload (Sections 4.2
//!    and 5 / Observation 1). Registering a new variant adds it here with
//!    no change to this binary.
//! 2. S1 vs S2 for each phased scheduler (Section 6).
//! 3. Claim policy: atomic vs hold-and-wait circuit establishment.
//! 4. Bounded system buffers for AC (Section 3's blocking hazard).
//!
//! Studies 1-3 are declarative grids with *shared* sample streams: every
//! scheduler column of a workload point consumes the same sampled
//! matrices, generated once (the isomorphic-instances discipline). The
//! reuse speedup is measured and recorded in
//! `BENCH_grid_matrix_reuse.json`.
//!
//! Run: `cargo run -p repro-bench --release --bin ablations`

use commrt::grid::{ExecOptions, GridColumn, SchedulerHandle};
use commrt::{run_schedule, ExperimentGrid, ExperimentRunner, Scheme, WorkloadPoint};
use commsched::{registry, Scheduler};
use repro_bench::{paper_cube, sample_count, time_case, CubeExt};
use simnet::MachineParams;
use workloads::Generator;

fn main() {
    let cube = paper_cube();
    let n = cube.num_nodes_();
    let samples = sample_count().min(20);

    println!("=== Ablation 1: registry variants vs their canonical configuration ===");
    let variant_grid = {
        // Two probe workloads: random d-regular traffic (where the
        // randomization toggles matter, Section 4.2) and a symmetric halo
        // (where the pairwise-exchange preference matters, Section 5).
        // Shared seed policy: every column sees the same matrices.
        let mut columns: Vec<&'static dyn Scheduler> = Vec::new();
        for variant in registry::variants() {
            let base = variant.family().scheduler();
            if !columns.iter().any(|c| c.name() == base.name()) {
                columns.push(base);
            }
        }
        columns.extend(registry::variants());
        ExperimentGrid::new()
            .with_backend(repro_bench::backend_from_env())
            .topology("hypercube(6)", paper_cube())
            .schedulers(columns)
            .point(WorkloadPoint::shared(
                Generator::dregular(n, 16, 1024),
                16,
                1024,
                101,
            ))
            .point(WorkloadPoint::shared(
                Generator::fixed(
                    "ring_halo(w=4,32K)",
                    workloads::structured::ring_halo(n, 4, 32_768),
                ),
                8,
                32_768,
                202,
            ))
            .samples(samples)
    };
    {
        let result = variant_grid.execute().unwrap_or_else(|e| panic!("{e}"));
        for (point, wl_label) in [(0, "random d=16, 1 KB    "), (1, "symmetric halo, 32 KB")] {
            for variant in registry::variants() {
                let base = variant.family().scheduler();
                let mut row = format!("  {wl_label}  {:<13}", variant.name());
                for entry in [base, variant] {
                    let col = result.find_column(entry.name()).expect("declared column");
                    let cell = result.at(col, point).expect("measured cell");
                    row.push_str(&format!(
                        "  {:<6} phases = {:>5.1} pairs = {:>5.1} comm = {:>7.2} ms",
                        if entry.is_variant() {
                            "ablate"
                        } else {
                            "paper"
                        },
                        cell.result.phases,
                        cell.result.exchange_pairs,
                        cell.result.comm_ms
                    ));
                }
                println!("{row}");
            }
            println!();
        }
        println!("  (Section 4.2: randomization keeps expected collisions bounded — the");
        println!("   cyclic row sweep already spreads them, so the RS_*_DET gap is small.");
        println!("   Section 5: the pairwise preference is what buys RS_NL its fused");
        println!("   exchanges on symmetric traffic — RS_NL_NOPAIR loses them)\n");
        eprintln!(
            "ablation 1 grid: {} matrices generated for {} requests ({} reused across columns)",
            result.stats().matrices_generated,
            result.stats().matrix_requests,
            result.stats().matrices_reused()
        );
    }

    println!("=== Ablation 2: S1 vs S2 per phased scheduler ===");
    {
        // Two workloads: random (no reciprocal pairs to fuse) and a
        // symmetric halo (everything fusable). The paper's rule — use S1
        // where the algorithm exploits pairwise exchange — is about the
        // second kind; on purely random traffic S2's free-running blast is
        // competitive. Each scheduler is two grid columns, one per scheme,
        // sharing one sample stream.
        let phased: Vec<&'static dyn Scheduler> = registry::primary()
            .filter(|e| e.node_contention_free())
            .collect();
        let mut grid = ExperimentGrid::new()
            .with_backend(repro_bench::backend_from_env())
            .topology("hypercube(6)", paper_cube())
            .samples(samples);
        for &entry in &phased {
            for scheme in [Scheme::S1, Scheme::S2] {
                grid =
                    grid.column(GridColumn::new(SchedulerHandle::from(entry)).with_scheme(scheme));
            }
        }
        let result = grid
            .point(WorkloadPoint::shared(
                Generator::dregular(n, 16, 32_768),
                16,
                32_768,
                303,
            ))
            .point(WorkloadPoint::shared(
                Generator::fixed(
                    "ring_halo(w=8,32K)",
                    workloads::structured::ring_halo(n, 8, 32_768),
                ),
                16,
                32_768,
                303,
            ))
            .execute()
            .unwrap_or_else(|e| panic!("{e}"));
        for (point, wl_label) in [(0, "random d=16, 32 KB   "), (1, "symmetric halo, 32 KB")] {
            for (i, entry) in phased.iter().enumerate() {
                let mut row = format!("  {wl_label}  {:<6}", entry.name());
                for (j, scheme) in [Scheme::S1, Scheme::S2].into_iter().enumerate() {
                    let cell = result.at(2 * i + j, point).expect("measured cell");
                    row.push_str(&format!(
                        "  {} = {:>7.2} ms",
                        scheme.label(),
                        cell.result.comm_ms
                    ));
                }
                println!("{row}");
            }
        }
        println!("  (paper: S1 wins where pairwise exchange is exploited — LP, RS_NL)\n");
    }

    let ac = registry::find("AC").expect("registered");
    println!("=== Ablation 3: machine model — ports and claim policy (AC, d=16, 32 KB) ===");
    {
        let default = MachineParams::ipsc860();
        let split_atomic = MachineParams {
            ports: simnet::PortModel::Split,
            ..MachineParams::ipsc860()
        };
        for (label, params) in [
            ("unified + atomic (default)", default),
            ("split   + atomic          ", split_atomic),
            (
                "split   + hold-and-wait   ",
                MachineParams::ipsc860_hold_and_wait(),
            ),
        ] {
            let mut runner = ExperimentRunner::ipsc860();
            runner.params = params;
            let result = ExperimentGrid::new()
                .with_runner(runner)
                .with_backend(repro_bench::backend_from_env())
                .topology("hypercube(6)", paper_cube())
                .scheduler(ac)
                .point(WorkloadPoint::shared(
                    Generator::dregular(n, 16, 32_768),
                    16,
                    32_768,
                    404,
                ))
                .samples(samples)
                .execute()
                .expect("cell");
            let cell = result.at(0, 0).expect("measured cell");
            println!("  {label} comm = {:>8.2} ms", cell.result.comm_ms);
        }
        println!("  (split ports let send overlap recv — faster than Observation 1's unified");
        println!("   engine; hold-and-wait then adds back tree-saturation blocking)\n");
    }

    println!(
        "=== Ablation 4: AC without pre-posted receives (send-detect-receive, d=8, 16 KB) ==="
    );
    {
        // With pre-posted receives (Figure 1) buffers are never touched; the
        // paper's Section 3 hazard appears in the send-detect-receive
        // variant, where every arrival is buffered and copied, and bounded
        // buffers can deadlock the machine.
        let com = workloads::random_dregular(n, 8, 16_384, 909);
        let posted = run_schedule(
            &cube,
            &MachineParams::ipsc860(),
            &com,
            &ac.schedule(&com, &cube, 0),
            Scheme::S2,
        )
        .expect("posted AC runs");
        println!(
            "  pre-posted (Figure 1)      comm = {:>8.2} ms   copies = {}",
            posted.makespan_ms(),
            posted.stats.copies
        );
        for (label, cap) in [
            ("send-detect, unbounded     ", None),
            ("send-detect, 512 KB buffers", Some(512 * 1024)),
            ("send-detect, 64 KB buffers ", Some(64 * 1024)),
        ] {
            let params = MachineParams {
                buffer_bytes: cap,
                ..MachineParams::ipsc860()
            };
            let progs = commrt::compile_ac_send_detect(&com);
            match simnet::simulate(&cube, &params, progs) {
                Ok(report) => println!(
                    "  {label} comm = {:>8.2} ms   copies = {}",
                    report.makespan_ms(),
                    report.stats.copies
                ),
                Err(e) => println!("  {label} DEADLOCK: {e}"),
            }
        }
        println!("  (paper Section 3: buffer copying is costly; overflow can deadlock)\n");
    }

    println!("=== Bonus: link-free schedulers on a 2-D mesh (topology generality, d=8, 8 KB) ===");
    {
        let mesh = hypercube::Mesh2d::new(8, 8);
        let com = workloads::random_dregular(64, 8, 8192, 77);
        for entry in registry::all()
            .iter()
            .copied()
            .filter(|e| e.link_contention_free() && e.supports_topology(&mesh))
        {
            let schedule = entry.schedule(&com, &mesh, 77);
            let report = run_schedule(
                &mesh,
                &MachineParams::ipsc860(),
                &com,
                &schedule,
                Scheme::for_scheduler(entry),
            )
            .expect("mesh run");
            println!(
                "  {:<13} mesh comm = {:.2} ms over {} phases (link-free: {})",
                entry.name(),
                report.makespan_ms(),
                schedule.num_phases(),
                schedule.link_contention_free(&mesh)
            );
        }
    }

    // Measure what matrix reuse buys on the ablation-1 grid (every base
    // and variant column of a row consumes the same samples) and record
    // it next to the criterion outputs. Stderr only: stdout above is the
    // reproduced artifact.
    let reuse = time_case("ablation1_grid_reuse", 3, || {
        variant_grid.execute().expect("grid runs");
    });
    let no_reuse = time_case("ablation1_grid_no_reuse", 3, || {
        variant_grid
            .execute_opts(ExecOptions {
                no_matrix_reuse: true,
                ..Default::default()
            })
            .expect("grid runs");
    });
    let speedup = no_reuse.mean_ns / reuse.mean_ns;
    eprintln!(
        "matrix reuse: {:.1} ms vs {:.1} ms without ({speedup:.2}x)",
        reuse.mean_ns / 1e6,
        no_reuse.mean_ns / 1e6
    );
    match repro_bench::write_bench_json("grid_matrix_reuse", &[reuse, no_reuse]) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("BENCH report not written: {e}"),
    }
}
