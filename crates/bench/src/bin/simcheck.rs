//! Differential conformance harness between the simulation backends —
//! the command-line face of [`repro_bench::simcheck`].
//!
//! For every registry scheduler × workload family × cube dimension the
//! harness runs the same `(matrix, schedule)` through the exact
//! discrete-event engine and the analytic occupancy model, asserts the
//! documented tolerance bands and phase-profile tracking, pins exact
//! agreement on contention-free schedules, and reports the worst
//! divergence observed.
//!
//! ```text
//! cargo run --release -p repro_bench --bin simcheck -- [--dims 3,4,5] \
//!     [--samples N] [--verbose]
//! ```
//!
//! Exits non-zero on any violated invariant (CI gates on this).
//! `REPRO_SAMPLES` is the default for `--samples`.

use repro_bench::simcheck;

struct Args {
    dims: Vec<u32>,
    samples: usize,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dims: vec![3, 4, 5],
        samples: repro_bench::sample_count_or(2),
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--dims" => {
                let v = it.next().ok_or("--dims needs a comma-separated list")?;
                args.dims = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<u32>()
                            .map_err(|_| format!("bad dimension {s:?}"))
                    })
                    .collect::<Result<_, _>>()?;
                if args.dims.iter().any(|&d| !(2..=10).contains(&d)) {
                    return Err("dimensions must be in 2..=10".into());
                }
            }
            "--samples" => {
                args.samples = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .ok_or("--samples needs a positive integer")?;
            }
            "--verbose" => args.verbose = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("simcheck: {e}");
        eprintln!("usage: simcheck [--dims 3,4,5] [--samples N] [--verbose]");
        std::process::exit(2);
    });

    println!(
        "simcheck: differential backend conformance, dims={:?}, {} sample(s) per case",
        args.dims, args.samples
    );

    // Invariant 3 first: exact agreement on contention-free schedules.
    match simcheck::run_exact(&args.dims) {
        Ok(checked) => println!("exact-agreement pinning: {checked} cases, all bit-identical"),
        Err(e) => {
            eprintln!("exact-agreement pinning FAILED: {e}");
            std::process::exit(1);
        }
    }

    // Invariants 1-2: tolerance bands and phase-profile tracking.
    let report = simcheck::run_conformance(&args.dims, args.samples);
    if args.verbose {
        for case in &report.cases {
            println!(
                "  {:>12} {:<28} dim={} seed={} ratio={:.3}",
                case.scheduler,
                case.workload,
                case.dim,
                case.seed,
                case.ratio()
            );
        }
    }
    print!("{}", report.summary());
    if !report.is_pass() {
        std::process::exit(1);
    }
}
