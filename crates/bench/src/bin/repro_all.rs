//! Runs the complete reproduction suite (Table 1, Figures 5-11, ablations)
//! by invoking the individual binaries' logic is equivalent to running:
//!
//! ```text
//! cargo run -p repro-bench --release --bin table1
//! cargo run -p repro-bench --release --bin fig5
//! cargo run -p repro-bench --release --bin fig6to9
//! cargo run -p repro-bench --release --bin fig10to11
//! cargo run -p repro-bench --release --bin ablations
//! ```
//!
//! This wrapper shells out to the sibling binaries so each keeps its own
//! focused output, honouring `REPRO_SAMPLES`.

use std::process::Command;

fn main() {
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir").to_path_buf();
    for bin in ["table1", "fig6to9", "fig10to11", "fig5", "ablations"] {
        let path = dir.join(bin);
        println!("\n================ {bin} ================\n");
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("launching {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nAll reproduction outputs written under results/.");
}
