//! Regenerates **Figures 6-9** of the paper: communication cost vs message
//! size (16 B .. 128 KB), one figure per density d in {4, 8, 16, 32}, for
//! every primary scheduler in the registry.
//!
//! Run: `cargo run -p repro-bench --release --bin fig6to9`

use commrt::{write_csv, CellRecord, ExperimentRunner};
use commsched::registry;
use repro_bench::{figure_sizes, measure_cell, paper_cube, sample_count};

fn main() {
    let cube = paper_cube();
    let runner = ExperimentRunner::ipsc860();
    let samples = sample_count().min(25);
    let sizes = figure_sizes();
    let figure_for_d = [(4usize, 6u32), (8, 7), (16, 8), (32, 9)];

    let mut records = Vec::new();
    for (d, fig) in figure_for_d {
        println!("Figure {fig}: communication cost (ms) vs message size, d = {d}");
        print!("{:>9} |", "bytes");
        for entry in registry::primary() {
            print!(" {:>10}", entry.name());
        }
        println!();
        for &bytes in &sizes {
            let mut row = vec![format!("{bytes:>9} |")];
            for entry in registry::primary() {
                let cell = measure_cell(&runner, &cube, entry, d, bytes, samples)
                    .unwrap_or_else(|e| panic!("{} d={d} M={bytes}: {e}", entry.name()));
                records.push(CellRecord::from_entry(
                    &format!("fig{fig}"),
                    entry,
                    d,
                    bytes,
                    &cell,
                ));
                row.push(format!("{:>10.2}", cell.comm_ms));
            }
            println!("{}", row.join(" "));
        }
        println!();
    }

    write_csv(std::path::Path::new("results/fig6to9.csv"), &records).expect("write csv");
    println!("wrote results/fig6to9.csv");
}
