//! Regenerates **Figures 6-9** of the paper: communication cost vs message
//! size (16 B .. 128 KB), one figure per density d in {4, 8, 16, 32}, for
//! every primary scheduler in the registry — one declarative grid,
//! rendered per figure.
//!
//! Run: `cargo run -p repro-bench --release --bin fig6to9`

use commrt::write_csv;
use commsched::registry;
use repro_bench::{figure_sizes, paper_grid, sample_count};

fn main() {
    let samples = sample_count().min(25);
    let sizes = figure_sizes();
    let figure_for_d = [(4usize, 6u32), (8, 7), (16, 8), (32, 9)];

    let result = paper_grid(registry::primary(), &[4, 8, 16, 32], &sizes, samples)
        .execute()
        .unwrap_or_else(|e| panic!("{e}"));

    let mut records = Vec::new();
    for (d, fig) in figure_for_d {
        println!("Figure {fig}: communication cost (ms) vs message size, d = {d}");
        print!("{:>9} |", "bytes");
        for column in result.columns() {
            print!(" {:>10}", column.label());
        }
        println!();
        for &bytes in &sizes {
            let point = result.point_index(d, bytes).expect("declared point");
            let mut row = vec![format!("{bytes:>9} |")];
            for cell in result.row(point) {
                records.push(cell.record(&format!("fig{fig}")));
                row.push(format!("{:>10.2}", cell.result.comm_ms));
            }
            println!("{}", row.join(" "));
        }
        println!();
    }

    write_csv(std::path::Path::new("results/fig6to9.csv"), &records).expect("write csv");
    println!("wrote results/fig6to9.csv");
}
