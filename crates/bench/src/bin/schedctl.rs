//! `schedctl` — operate the schedule cache from the command line.
//!
//! The paper's economics are amortization: schedule once, execute many
//! times. `schedctl` makes that operational for whole workload specs:
//! `warm` precompiles every *(matrix sample, scheduler)* pair of a spec
//! into a persistent [`commcache::ArtifactStore`], `stats` summarizes a
//! store directory, and `inspect` decodes individual artifacts. A warmed
//! store is picked up by any later run pointed at the same directory
//! (`IPSC_CACHE=<dir>` for the repro binaries, or
//! `CacheConfig::persistent` in code).
//!
//! ```text
//! schedctl warm --dir results/cache --n 64 --d 4,8 --bytes 1024 --samples 3
//! schedctl warm --dir results/cache --n 64 --d 4,8 --bytes 1024 --samples 3 --expect-hits
//! schedctl stats --dir results/cache
//! schedctl inspect --dir results/cache --fingerprint <32-hex>
//! ```
//!
//! The second `warm` over an unchanged spec compiles nothing: every
//! request is answered by the store (`--expect-hits` turns that into an
//! exit-code assertion, which is how CI smoke-tests the cache).
//!
//! By default `warm` uses the **paper seed discipline** — per-scheduler
//! base seeds `paper_base_seed(d, M, ordinal)`, the streams the repro
//! binaries request — so warming `--n 64 --d 4,8,16,32,48
//! --bytes 256,1024,131072 --samples 50` precompiles exactly the
//! schedules `table1` will ask for under `IPSC_CACHE=<same dir>`.
//! Passing `--base-seed` switches to one *shared* sample stream instead
//! (the `WorkloadPoint::shared` discipline of ablation-style grids).
//!
//! With `--addr`, `schedctl` is also the client of a live `schedd`
//! daemon: `submit` sends one schedule request, `bench` replays one
//! request repeatedly and reports latency plus the daemon's dedup hit
//! rate, `stats --addr` snapshots the daemon's counters, and `shutdown`
//! drains it:
//!
//! ```text
//! schedctl submit --addr unix:/tmp/schedd.sock --scheduler RS_NL --n 16
//! schedctl bench --addr unix:/tmp/schedd.sock --requests 500
//! schedctl stats --addr unix:/tmp/schedd.sock
//! schedctl shutdown --addr unix:/tmp/schedd.sock
//! ```

use std::process::ExitCode;
use std::time::Instant;

use commcache::{
    decode_artifact_full, ArtifactStore, CacheConfig, Fingerprint, SchedCache, StoreError,
    TopologyMeta,
};
use commrt::grid::paper_base_seed;
use commrt::BackendKind;
use commsched::{registry, Scheduler};
use hypercube::Hypercube;
use schedd::{Client, Endpoint, SchemeChoice, SubmitRequest, TopologySpec};
use workloads::{Generator, SampleSet};

const USAGE: &str = "\
schedctl — inspect and warm the ipsc-sched schedule cache

USAGE:
  schedctl warm [OPTIONS]      precompile a workload spec into the cache
  schedctl stats [OPTIONS]     summarize a cache directory, or a live
                               daemon's counters with --addr
  schedctl inspect [OPTIONS]   decode artifacts
  schedctl submit [OPTIONS]    submit one request to a live schedd
  schedctl bench [OPTIONS]     replay requests against a live schedd
  schedctl shutdown --addr <e> drain and stop a live schedd
  schedctl help                print this text

OPTIONS:
  --dir <path>         artifact-store directory   [default: results/cache]
  --addr <endpoint>    live daemon: unix:<path> or tcp:<host:port>
  --n <nodes>          hypercube size (power of two)        [default: 64]
  --d <list>           densities, comma-separated          [default: 4,8]
  --bytes <list>       message sizes (bytes), comma-sep   [default: 1024]
  --schedulers <spec>  comma-separated names, or primary|all
                                                       [default: primary]
  --samples <k>        samples per workload point            [default: 3]
  --base-seed <s>      warm ONE shared sample stream from this base seed
                       (sample k = base*1000+k) instead of the default
                       paper discipline — per-scheduler base seeds
                       paper_base_seed(d, M, ordinal), i.e. exactly the
                       schedules the repro binaries request under
                       IPSC_CACHE=<dir>
  --budget-mb <mb>     in-memory byte budget                [default: 64]
  --expect-hits        (warm) exit 1 unless ≥ 1 request was answered by
                       the store — asserts a previous warm is being reused
  --fingerprint <hex>  (inspect) only this artifact
  --scheduler <name>   (submit/bench) registry entry      [default: RS_NL]
  --topo <kind>        (submit/bench) schedule on this fabric instead of
                       the --n hypercube: cube:d=N, mesh:RxC,
                       torus:AxBx..., or fattree:k=N (node count follows
                       the kind; traffic stays --d-regular)
  --seed <s>           (submit/bench) scheduler seed           [default: 0]
  --scheme <s>         (submit/bench) s1|s2|default      [default: default]
  --backend <b>        (submit/bench) des|analytic   [default: IPSC_BACKEND]
  --costmodel <m>      (submit/bench) link-cost model: uniform,
                       loggp:o=..,g=..,G=.., hetero:factor=..,frac=..,
                       or faulty:p=..,seed=..  [default: IPSC_COSTMODEL]
  --want-schedule      (submit) stream the compiled schedule summary too
  --requests <k>       (bench) how many requests to replay   [default: 200]
  --dims <lo>..<hi>    (bench) sweep hypercube dimensions instead of one
                       --n, appending daemon/d{dim} latency rows to
                       BENCH_scale_sim.json (daemon needs --max-nodes
                       covering 2^hi)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str);
    let opts = &args[1.min(args.len())..];
    let result = match command {
        Some("warm") => warm(opts),
        Some("stats") => stats(opts),
        Some("inspect") => inspect(opts),
        Some("submit") => submit(opts),
        Some("bench") => bench(opts),
        Some("shutdown") => shutdown(opts),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command `{other}` (try `schedctl help`)")),
    };
    result.unwrap_or_else(|message| {
        eprintln!("schedctl: {message}");
        ExitCode::from(2)
    })
}

/// Value of `--name` in `opts`, if present.
fn opt_value<'a>(opts: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    let mut found = None;
    let mut it = opts.iter();
    while let Some(arg) = it.next() {
        if arg == name {
            match it.next() {
                Some(v) => found = Some(v.as_str()),
                None => return Err(format!("{name} expects a value")),
            }
        }
    }
    Ok(found)
}

fn opt_flag(opts: &[String], name: &str) -> bool {
    opts.iter().any(|a| a == name)
}

/// Reject anything that is not a known flag (or a known flag's value) —
/// a misspelled `--expect-hit` must fail loudly, not silently fall back
/// to defaults.
fn reject_unknown(
    opts: &[String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Result<(), String> {
    let mut i = 0;
    while i < opts.len() {
        let arg = opts[i].as_str();
        if value_flags.contains(&arg) {
            i += 2; // flag + its value (a missing value errors in opt_value)
        } else if bool_flags.contains(&arg) {
            i += 1;
        } else {
            return Err(format!("unknown argument `{arg}` (try `schedctl help`)"));
        }
    }
    Ok(())
}

fn opt_parsed<T: std::str::FromStr>(opts: &[String], name: &str, default: T) -> Result<T, String> {
    match opt_value(opts, name)? {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("{name}: cannot parse `{v}`")),
    }
}

fn opt_list<T: std::str::FromStr + Clone>(
    opts: &[String],
    name: &str,
    default: &[T],
) -> Result<Vec<T>, String> {
    match opt_value(opts, name)? {
        None => Ok(default.to_vec()),
        Some(v) => v
            .split(',')
            .map(|part| {
                part.trim()
                    .parse()
                    .map_err(|_| format!("{name}: cannot parse `{part}`"))
            })
            .collect(),
    }
}

fn store_dir(opts: &[String]) -> Result<std::path::PathBuf, String> {
    Ok(opt_value(opts, "--dir")?
        .map(Into::into)
        .unwrap_or_else(ArtifactStore::default_dir))
}

fn resolve_schedulers(spec: &str) -> Result<Vec<&'static dyn Scheduler>, String> {
    match spec {
        "primary" => Ok(registry::primary().collect()),
        "all" => Ok(registry::all().to_vec()),
        names => names
            .split(',')
            .map(|name| {
                registry::find(name.trim())
                    .ok_or_else(|| format!("unknown scheduler `{}`", name.trim()))
            })
            .collect(),
    }
}

fn warm(opts: &[String]) -> Result<ExitCode, String> {
    reject_unknown(
        opts,
        &[
            "--dir",
            "--n",
            "--d",
            "--bytes",
            "--schedulers",
            "--samples",
            "--base-seed",
            "--budget-mb",
        ],
        &["--expect-hits"],
    )?;
    let dir = store_dir(opts)?;
    let n: usize = opt_parsed(opts, "--n", 64)?;
    if !n.is_power_of_two() {
        return Err(format!("--n {n} is not a power of two (hypercube size)"));
    }
    let densities: Vec<usize> = opt_list(opts, "--d", &[4, 8])?;
    let sizes: Vec<u32> = opt_list(opts, "--bytes", &[1024])?;
    let samples: usize = opt_parsed(opts, "--samples", 3)?;
    let shared_base: Option<u64> = match opt_value(opts, "--base-seed")? {
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("--base-seed: cannot parse `{v}`"))?,
        ),
        None => None,
    };
    let budget_mb: usize = opt_parsed(opts, "--budget-mb", 64)?;
    let entries = resolve_schedulers(opt_value(opts, "--schedulers")?.unwrap_or("primary"))?;

    let cube = Hypercube::new(n.trailing_zeros());
    let cache = SchedCache::new(CacheConfig::persistent(&dir).with_byte_budget(budget_mb << 20));
    let t0 = Instant::now();
    let mut requested = 0u64;
    for &d in &densities {
        for &bytes in &sizes {
            let generator = Generator::dregular(n, d, bytes);
            match shared_base {
                // Shared discipline: one sample stream, every scheduler
                // sees the same matrices (WorkloadPoint::shared grids).
                Some(base) => {
                    for seed in SampleSet::new(base, samples).seeds() {
                        let com = generator.generate(seed);
                        for entry in &entries {
                            if !entry.supports_topology(&cube) {
                                continue;
                            }
                            cache.get_or_schedule(*entry, &com, &cube, seed);
                            requested += 1;
                        }
                    }
                }
                // Paper discipline (default): the per-scheduler streams
                // the repro binaries request — warming here means table1
                // et al. under IPSC_CACHE=<dir> recompile nothing.
                None => {
                    for entry in &entries {
                        if !entry.supports_topology(&cube) {
                            continue;
                        }
                        let set =
                            SampleSet::new(paper_base_seed(d, bytes, entry.ordinal()), samples);
                        for seed in set.seeds() {
                            let com = generator.generate(seed);
                            cache.get_or_schedule(*entry, &com, &cube, seed);
                            requested += 1;
                        }
                    }
                }
            }
        }
    }
    let elapsed = t0.elapsed();
    let stats = cache.stats();
    println!(
        "warmed {} schedule(s) over {} workload point(s) ({} sample(s) each, {} scheduler(s), {} seeds) in {:.2} ms",
        requested,
        densities.len() * sizes.len(),
        samples,
        entries.len(),
        if shared_base.is_some() {
            "shared"
        } else {
            "paper per-scheduler"
        },
        elapsed.as_secs_f64() * 1e3,
    );
    println!("cache dir: {}", dir.display());
    println!(
        "compiled: {}  store_hits: {}  mem_hits: {}  store_writes: {}  store_skips: {}  store_errors: {}",
        stats.misses,
        stats.store_hits,
        stats.mem_hits,
        stats.store_writes,
        stats.store_skips,
        stats.store_errors,
    );
    println!("hit rate: {:.1}%", stats.hit_rate() * 100.0);
    if opt_flag(opts, "--expect-hits") && stats.store_hits == 0 {
        eprintln!("schedctl: --expect-hits: no request was answered by the store");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// Decode every artifact under `dir`, returning per-entry details plus
/// skip/error tallies.
struct Scan {
    /// `(fingerprint, file bytes, schedule, fabric)` of each trusted
    /// artifact; the fabric is `None` for version-1 files and artifacts
    /// written without topology metadata.
    decoded: Vec<(Fingerprint, u64, commsched::Schedule, Option<TopologyMeta>)>,
    version_skips: usize,
    errors: Vec<(Fingerprint, StoreError)>,
}

fn scan(store: &ArtifactStore) -> Result<Scan, String> {
    let mut result = Scan {
        decoded: Vec::new(),
        version_skips: 0,
        errors: Vec::new(),
    };
    for fp in store
        .entries()
        .map_err(|e| format!("{}: {e}", store.dir().display()))?
    {
        let path = store.path_for(fp);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) => {
                result.errors.push((fp, StoreError::Io(e)));
                continue;
            }
        };
        match decode_artifact_full(&bytes) {
            Ok((_, schedule, topology)) => {
                result
                    .decoded
                    .push((fp, bytes.len() as u64, schedule, topology))
            }
            Err(StoreError::UnsupportedVersion(_)) => result.version_skips += 1,
            Err(e) => result.errors.push((fp, e)),
        }
    }
    Ok(result)
}

fn stats(opts: &[String]) -> Result<ExitCode, String> {
    reject_unknown(opts, &["--dir", "--addr"], &[])?;
    if let Some(addr) = opt_value(opts, "--addr")? {
        return daemon_stats(addr);
    }
    let dir = store_dir(opts)?;
    let store = ArtifactStore::new(&dir);
    let scan = scan(&store)?;
    println!("cache dir: {}", dir.display());
    println!(
        "artifacts: {} trusted, {} foreign-version (skipped), {} unreadable",
        scan.decoded.len(),
        scan.version_skips,
        scan.errors.len()
    );
    let total_bytes: u64 = scan.decoded.iter().map(|(_, b, _, _)| b).sum();
    println!("store size: {total_bytes} bytes");
    // Per-family tallies, in the paper's column order.
    let mut families: Vec<(&str, usize, usize)> = Vec::new();
    for (_, _, schedule, _) in &scan.decoded {
        let label = schedule.algorithm().label();
        match families.iter_mut().find(|(l, _, _)| *l == label) {
            Some((_, count, phases)) => {
                *count += 1;
                *phases += schedule.num_phases();
            }
            None => families.push((label, 1, schedule.num_phases())),
        }
    }
    for (label, count, phases) in &families {
        println!(
            "  {label:<6} {count:>5} schedule(s), {:.1} phase(s) mean",
            *phases as f64 / *count as f64
        );
    }
    for (fp, err) in &scan.errors {
        println!("  ! {fp}: {err}");
    }
    Ok(ExitCode::SUCCESS)
}

fn inspect(opts: &[String]) -> Result<ExitCode, String> {
    reject_unknown(opts, &["--dir", "--fingerprint"], &[])?;
    let dir = store_dir(opts)?;
    let store = ArtifactStore::new(&dir);
    let filter = match opt_value(opts, "--fingerprint")? {
        Some(hex) => Some(
            Fingerprint::from_hex(hex)
                .ok_or_else(|| format!("--fingerprint: `{hex}` is not 32 hex digits"))?,
        ),
        None => None,
    };
    let scan = scan(&store)?;
    let mut shown = 0;
    for (fp, file_bytes, schedule, topology) in &scan.decoded {
        if filter.is_some_and(|f| f != *fp) {
            continue;
        }
        shown += 1;
        let fabric = topology.as_ref().map_or_else(
            || "-".to_string(),
            |t| format!("{} nodes={} links={}", t.kind, t.nodes, t.links),
        );
        println!(
            "{fp}  {:<6} n={:<4} phases={:<4} messages={:<5} ops={:<8} file={file_bytes}B  topo: {fabric}",
            schedule.algorithm().label(),
            schedule.n(),
            schedule.num_phases(),
            schedule.message_count(),
            schedule.ops(),
        );
    }
    for (fp, err) in &scan.errors {
        if filter.is_some_and(|f| f != *fp) {
            continue;
        }
        shown += 1;
        println!("{fp}  UNREADABLE: {err}");
    }
    if let Some(f) = filter {
        if shown == 0 {
            return Err(format!("no artifact {f} under {}", dir.display()));
        }
    }
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------
// Daemon-client verbs (live schedd over --addr)
// ---------------------------------------------------------------------------

fn connect(opts: &[String]) -> Result<Client, String> {
    let addr = opt_value(opts, "--addr")?.ok_or("--addr is required for daemon verbs")?;
    let endpoint = Endpoint::parse(addr)?;
    Client::connect(&endpoint).map_err(|e| format!("cannot connect to {endpoint}: {e}"))
}

/// Build one request from the shared submit/bench flags.
fn request_from(opts: &[String]) -> Result<SubmitRequest, String> {
    if let Some(spec) = opt_value(opts, "--topo")? {
        let kind = topo::TopologyKind::parse(spec).map_err(|e| format!("--topo: {e}"))?;
        let topology = match &kind {
            topo::TopologyKind::Cube { dims } => TopologySpec::Hypercube { dims: *dims },
            topo::TopologyKind::Mesh { rows, cols } => TopologySpec::Mesh2d {
                rows: *rows,
                cols: *cols,
            },
            topo::TopologyKind::Torus { extents } => TopologySpec::Torus {
                extents: extents.clone(),
            },
            topo::TopologyKind::FatTree { k } => TopologySpec::FatTree { k: *k },
        };
        return request_on(opts, topology, kind.num_nodes());
    }
    let n: usize = opt_parsed(opts, "--n", 16)?;
    if !n.is_power_of_two() {
        return Err(format!("--n {n} is not a power of two (hypercube size)"));
    }
    request_with_n(opts, n)
}

/// [`request_from`] with the machine size fixed by the caller (the
/// `--dims` sweep overrides `--n` per dimension).
fn request_with_n(opts: &[String], n: usize) -> Result<SubmitRequest, String> {
    request_on(
        opts,
        TopologySpec::Hypercube {
            dims: n.trailing_zeros(),
        },
        n,
    )
}

fn request_on(opts: &[String], topology: TopologySpec, n: usize) -> Result<SubmitRequest, String> {
    let d: usize = opt_parsed(opts, "--d", 4.min(n - 1))?;
    let bytes: u32 = opt_parsed(opts, "--bytes", 1024)?;
    let seed: u64 = opt_parsed(opts, "--seed", 0)?;
    let scheduler = opt_value(opts, "--scheduler")?
        .unwrap_or("RS_NL")
        .to_string();
    registry::find(&scheduler).ok_or_else(|| format!("unknown scheduler `{scheduler}`"))?;
    let scheme = match opt_value(opts, "--scheme")?.unwrap_or("default") {
        "s1" | "S1" => SchemeChoice::S1,
        "s2" | "S2" => SchemeChoice::S2,
        "default" => SchemeChoice::Default,
        other => return Err(format!("--scheme: `{other}` is not s1|s2|default")),
    };
    let backend = match opt_value(opts, "--backend")? {
        Some(v) => BackendKind::parse(v).ok_or_else(|| format!("unknown backend `{v}`"))?,
        None => BackendKind::from_env()?,
    };
    let cost_model = match opt_value(opts, "--costmodel")? {
        Some(v) => v.parse().map_err(|e| format!("--costmodel: {e}"))?,
        None => schedd::LinkCostModel::from_env().map_err(|e| e.to_string())?,
    };
    Ok(SubmitRequest {
        request_id: 0,
        want_schedule: opt_flag(opts, "--want-schedule"),
        topology,
        scheduler,
        scheme,
        backend,
        seed,
        matrix: Generator::dregular(n, d.min(n - 1), bytes).generate(seed),
        cost_model,
    })
}

const DAEMON_FLAGS: &[&str] = &[
    "--addr",
    "--n",
    "--d",
    "--bytes",
    "--seed",
    "--scheduler",
    "--topo",
    "--scheme",
    "--backend",
    "--costmodel",
    "--requests",
    "--dims",
];

fn submit(opts: &[String]) -> Result<ExitCode, String> {
    reject_unknown(opts, DAEMON_FLAGS, &["--want-schedule"])?;
    let req = request_from(opts)?;
    let mut client = connect(opts)?;
    let t0 = Instant::now();
    let reply = client.submit(req.clone()).map_err(|e| e.to_string())?;
    let elapsed = t0.elapsed();
    println!(
        "{}  {} on {} seed={} backend={}{}",
        reply.fingerprint,
        req.scheduler,
        req.topology,
        req.seed,
        req.backend.label(),
        if req.cost_model.is_uniform() {
            String::new()
        } else {
            format!(" cost={}", req.cost_model)
        }
    );
    println!(
        "makespan: {:.3} ms over {} phase(s)  ({})",
        reply.estimate.makespan_ns as f64 / 1e6,
        reply.estimate.phase_end_ns.len(),
        if reply.freshly_compiled {
            "freshly compiled"
        } else {
            "served from cache/dedup"
        },
    );
    if let Some(schedule) = &reply.schedule {
        println!(
            "schedule: n={} phases={} messages={} ops={}",
            schedule.n(),
            schedule.num_phases(),
            schedule.message_count(),
            schedule.ops(),
        );
    }
    println!("round trip: {:.2} ms", elapsed.as_secs_f64() * 1e3);
    Ok(ExitCode::SUCCESS)
}

fn bench(opts: &[String]) -> Result<ExitCode, String> {
    reject_unknown(opts, DAEMON_FLAGS, &["--want-schedule"])?;
    let requests: usize = opt_parsed(opts, "--requests", 200)?;
    if let Some(spec) = opt_value(opts, "--dims")? {
        return bench_dims(opts, spec, requests);
    }
    let req = request_from(opts)?;
    let mut client = connect(opts)?;
    let before = client.stats().map_err(|e| e.to_string())?;
    let mut latencies_us: Vec<u64> = Vec::with_capacity(requests);
    let t0 = Instant::now();
    for _ in 0..requests {
        let t = Instant::now();
        client.submit(req.clone()).map_err(|e| e.to_string())?;
        latencies_us.push(t.elapsed().as_micros() as u64);
    }
    let wall = t0.elapsed().as_secs_f64();
    let after = client.stats().map_err(|e| e.to_string())?;
    latencies_us.sort_unstable();
    let pct = |p: f64| latencies_us[((latencies_us.len() - 1) as f64 * p).round() as usize];
    let d_completed = after.completed.saturating_sub(before.completed);
    let d_compiles = after.compiles.saturating_sub(before.compiles);
    println!(
        "{requests} request(s) in {:.2} ms -> {:.0} req/s",
        wall * 1e3,
        requests as f64 / wall.max(1e-9),
    );
    println!(
        "latency: p50 {}us p99 {}us max {}us",
        pct(0.50),
        pct(0.99),
        latencies_us.last().copied().unwrap_or(0),
    );
    println!(
        "daemon dedup: {d_compiles} compile(s) / {d_completed} completed ({:.1}% hit rate)",
        if d_completed == 0 {
            0.0
        } else {
            (1.0 - d_compiles as f64 / d_completed as f64) * 100.0
        },
    );
    Ok(ExitCode::SUCCESS)
}

/// `bench --dims <lo>..<hi>`: replay `requests` requests per hypercube
/// dimension against the live daemon and append one `daemon/d{dim}` row
/// per dimension (mean/min/max ns per request) to `BENCH_scale_sim.json`
/// — the daemon-side leg of the scale curve `benches/scale.rs` starts.
/// The daemon must have been started with a `--max-nodes` admitting the
/// largest dimension.
fn bench_dims(opts: &[String], spec: &str, requests: usize) -> Result<ExitCode, String> {
    if opt_value(opts, "--topo")?.is_some() {
        return Err("--dims sweeps hypercubes; it cannot be combined with --topo".into());
    }
    let (lo, hi) = spec
        .split_once("..")
        .and_then(|(a, b)| Some((a.trim().parse::<u32>().ok()?, b.trim().parse::<u32>().ok()?)))
        .filter(|&(lo, hi)| lo >= 1 && lo <= hi)
        .ok_or_else(|| format!("--dims: `{spec}` is not `<lo>..<hi>` with 1 <= lo <= hi"))?;
    let mut client = connect(opts)?;
    let mut cases = Vec::new();
    println!("daemon sweep: dims {lo}..{hi}, {requests} request(s) each");
    for dim in lo..=hi {
        let req = request_with_n(opts, 1usize << dim)?;
        let mut latencies_ns: Vec<u64> = Vec::with_capacity(requests);
        let t0 = Instant::now();
        for _ in 0..requests {
            let t = Instant::now();
            client.submit(req.clone()).map_err(|e| e.to_string())?;
            latencies_ns.push(t.elapsed().as_nanos() as u64);
        }
        let wall = t0.elapsed().as_secs_f64();
        let mean = latencies_ns.iter().sum::<u64>() as f64 / latencies_ns.len().max(1) as f64;
        let case = criterion::CaseResult {
            name: format!("daemon/d{dim}"),
            mean_ns: mean,
            min_ns: latencies_ns.iter().min().copied().unwrap_or(0) as f64,
            max_ns: latencies_ns.iter().max().copied().unwrap_or(0) as f64,
        };
        println!(
            "  d={dim:<2} ({:>7} nodes): {:>8.0} req/s, mean {:>10.1} us",
            1u64 << dim,
            requests as f64 / wall.max(1e-9),
            mean / 1e3,
        );
        cases.push(case);
    }
    let path = repro_bench::append_bench_json("scale_sim", &cases).map_err(|e| e.to_string())?;
    println!("appended {} row(s) to {}", cases.len(), path.display());
    Ok(ExitCode::SUCCESS)
}

fn daemon_stats(addr: &str) -> Result<ExitCode, String> {
    let endpoint = Endpoint::parse(addr)?;
    let mut client =
        Client::connect(&endpoint).map_err(|e| format!("cannot connect to {endpoint}: {e}"))?;
    let s = client.stats().map_err(|e| e.to_string())?;
    println!(
        "daemon: {endpoint}{}",
        if s.draining != 0 { "  (draining)" } else { "" }
    );
    println!(
        "connections: {} active / {} accepted, {} mid-stream disconnect(s)",
        s.connections_active, s.connections_accepted, s.disconnects_midstream
    );
    println!(
        "requests: {} submitted, {} completed, {} in flight, queue depth {}",
        s.submits, s.completed, s.inflight, s.queue_depth
    );
    println!(
        "dedup: {} compile(s), {} coalesced, hit rate {:.1}%",
        s.compiles,
        s.coalesced,
        s.dedup_hit_rate() * 100.0
    );
    println!(
        "schedule cache: {} request(s), {} mem hit(s), {} store hit(s), {} miss(es)",
        s.cache_requests, s.cache_mem_hits, s.cache_store_hits, s.cache_misses
    );
    println!(
        "estimate cache: {} hit(s), {} miss(es)",
        s.estimate_hits, s.estimate_misses
    );
    println!(
        "incremental: {} delta submit(s), {} base hit(s), {} patch(es) ({:.1}% patch rate), {} fallback(s), {} validation rejection(s)",
        s.delta_submits,
        s.incr_base_hits,
        s.incr_patches,
        s.patch_rate() * 100.0,
        s.incr_fallbacks,
        s.incr_validation_rejections
    );
    println!(
        "rejections: {} quota, {} overload, {} shutdown",
        s.rejected_quota, s.rejected_overload, s.rejected_shutdown
    );
    println!(
        "errors: {} malformed, {} other, {} write failure(s)",
        s.errors_malformed, s.errors_other, s.write_failures
    );
    Ok(ExitCode::SUCCESS)
}

fn shutdown(opts: &[String]) -> Result<ExitCode, String> {
    reject_unknown(opts, &["--addr"], &[])?;
    let mut client = connect(opts)?;
    client.shutdown().map_err(|e| e.to_string())?;
    println!("shutdown acknowledged; daemon is draining");
    Ok(ExitCode::SUCCESS)
}
