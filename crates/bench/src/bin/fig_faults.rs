//! Fault-injection sweep: every registry scheduler on a 16-node
//! hypercube and a 16-node torus, re-priced under `faulty:` link-cost
//! models of increasing per-link failure probability. Schedules are
//! compiled once per sample (they are cost-model agnostic) and the same
//! transfers are then charged against p ∈ {0, 0.01, 0.05} with a fixed
//! fault seed, so the sweep isolates pricing: the hypercube's e-cube
//! router has no detours (a dead link on a route strands the transfer
//! as a typed `LinkDown`), while the torus reroutes around dead links
//! and completes at a longer makespan. Reported per cell: completion
//! rate, mean makespan over the completed samples, and degradation
//! relative to the p=0 baseline.
//!
//! Run: `cargo run -p repro_bench --release --bin fig_faults`
//! (honours `IPSC_BACKEND` and `REPRO_SAMPLES`).
//!
//! `--expect-completion-rate <min>` exits non-zero when the aggregate
//! completion rate over all measured cells falls below `min` — the CI
//! smoke gate proving fault injection degrades runs without ever
//! panicking.

use commrt::{LinkCostModel, Scheme};
use commsched::registry;
use repro_bench::{backend_from_env, sample_count_or, write_bench_json};
use simnet::{MachineParams, SimError};
use topo::TopologyKind;
use workloads::{Generator, SampleSet};

/// The two contrasted fabrics: same node count, opposite fault
/// behaviour (the hypercube strands, the torus reroutes).
const FABRICS: [&str; 2] = ["cube:d=4", "torus:4x4"];
const NODES: usize = 16;
const DENSITY: usize = 3;
const MSG_BYTES: u32 = 1024;
/// Swept per-link failure probabilities, in ppm (label, p).
const PROBS: [(&str, u64); 3] = [("0", 0), ("0.01", 10_000), ("0.05", 50_000)];
/// One fixed fault seed: the whole sweep prices against the same drawn
/// fault set, so schedulers are compared on identical broken machines.
const FAULT_SEED: u64 = 42;

fn main() {
    let expect_rate = expect_completion_rate_arg();
    let samples = sample_count_or(5);
    let backend_kind = backend_from_env();
    let backend = backend_kind.backend();
    let params = MachineParams::ipsc860();
    let entries = registry::all();

    let mut cases = Vec::new();
    let mut total_runs = 0usize;
    let mut total_ok = 0usize;

    for (ti, spec) in FABRICS.iter().enumerate() {
        let kind = TopologyKind::parse(spec).expect("pinned kind string");
        assert_eq!(
            kind.num_nodes(),
            NODES,
            "{spec} is not a {NODES}-node fabric"
        );
        let topo = kind.build_arc();

        // One test set per fabric; every scheduler and every p price the
        // same sampled matrices, so columns differ only by algorithm and
        // rows only by failure probability.
        let set = SampleSet::new(7700 + ti as u64, samples);
        let gen = Generator::dregular(NODES, DENSITY, MSG_BYTES);
        let matrices = set.realize(&gen);

        println!(
            "fabric {spec} ({NODES} nodes, d={DENSITY}): mean makespan ms (completion %), \
             {samples} sample(s), backend {}, fault seed {FAULT_SEED}",
            backend_kind.label()
        );
        print!("{:>10} |", "scheduler");
        for (label, _) in PROBS {
            print!(" {:>16}", format!("p={label}"));
        }
        println!();

        for entry in entries {
            if !entry.supports_topology(topo.as_ref()) {
                println!(
                    "{:>10} | declined (scheduler does not support the fabric)",
                    entry.name()
                );
                continue;
            }
            let scheme = Scheme::for_scheduler(*entry);
            // Schedules are link-cost agnostic: compile once per sample,
            // then re-price the same transfers under every model.
            let schedules: Vec<_> = (0..samples)
                .map(|k| entry.schedule(&matrices[k], topo.as_ref(), set.seed(k)))
                .collect();

            print!("{:>10} |", entry.name());
            let mut baseline_ms = None;
            for (label, p_ppm) in PROBS {
                let model = LinkCostModel::Faulty {
                    p_ppm,
                    seed: FAULT_SEED,
                };
                let mut done_ms: Vec<f64> = Vec::new();
                for k in 0..samples {
                    total_runs += 1;
                    match backend.estimate_costed(
                        &params,
                        &model,
                        topo.as_ref(),
                        &matrices[k],
                        &schedules[k],
                        scheme,
                    ) {
                        Ok(report) => {
                            total_ok += 1;
                            done_ms.push(report.makespan_ms());
                        }
                        // The injected fault stranded a transfer: the
                        // expected typed failure, counted against the
                        // completion rate.
                        Err(SimError::LinkDown { .. }) => {}
                        // Anything else is a bug in the sweep, not a fault.
                        Err(e) => panic!("{spec}/{}/p={label}: {e}", entry.name()),
                    }
                }
                let rate = done_ms.len() as f64 / samples as f64;
                let mean_ms = mean(&done_ms);
                if p_ppm == 0 {
                    baseline_ms = mean_ms;
                }
                let degradation = match (mean_ms, baseline_ms) {
                    (Some(m), Some(b)) if b > 0.0 => Some(m / b),
                    _ => None,
                };

                match mean_ms {
                    Some(m) => print!(" {:>8.3} ({:>3.0}%)", m, rate * 100.0),
                    None => print!(" {:>8} ({:>3.0}%)", "—", rate * 100.0),
                }

                let name =
                    |metric: &str| format!("faults/{spec}/{}/p{label}/{metric}", entry.name());
                if let Some(m) = mean_ms {
                    let (lo, hi) = min_max(&done_ms);
                    cases.push(criterion::CaseResult {
                        name: name("makespan"),
                        mean_ns: m * 1e6,
                        min_ns: lo * 1e6,
                        max_ns: hi * 1e6,
                    });
                }
                // Rates and ratios are dimensionless; the report's ns
                // fields carry them verbatim (a completion case of 0.8
                // means 80% of samples completed).
                cases.push(criterion::CaseResult {
                    name: name("completion"),
                    mean_ns: rate,
                    min_ns: rate,
                    max_ns: rate,
                });
                if let Some(d) = degradation {
                    cases.push(criterion::CaseResult {
                        name: name("degradation"),
                        mean_ns: d,
                        min_ns: d,
                        max_ns: d,
                    });
                }
            }
            println!();
        }
        println!();
    }

    let path = write_bench_json("faults", &cases).expect("write bench json");
    println!("wrote {}", path.display());

    let aggregate = total_ok as f64 / total_runs.max(1) as f64;
    println!(
        "aggregate completion: {total_ok}/{total_runs} runs ({:.1}%)",
        aggregate * 100.0
    );
    if let Some(min) = expect_rate {
        if aggregate < min {
            eprintln!("FAIL: aggregate completion rate {aggregate:.3} below required {min:.3}");
            std::process::exit(1);
        }
        println!("completion gate passed (>= {min:.3})");
    }
}

fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

fn min_max(xs: &[f64]) -> (f64, f64) {
    xs.iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        })
}

fn expect_completion_rate_arg() -> Option<f64> {
    let mut expect = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--expect-completion-rate" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--expect-completion-rate needs a value"));
                let min: f64 = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("bad completion rate {v:?}")));
                if !(0.0..=1.0).contains(&min) {
                    die(&format!("completion rate {min} outside [0, 1]"));
                }
                expect = Some(min);
            }
            "--help" | "-h" => {
                println!(
                    "usage: fig_faults [--expect-completion-rate <0..1>]\n\
                     env: IPSC_BACKEND=des|analytic, REPRO_SAMPLES=<n>"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    expect
}

fn die(msg: &str) -> ! {
    eprintln!("fig_faults: {msg}");
    std::process::exit(1)
}
