//! Regenerates **Figure 5** of the paper: the regions of the
//! `(density, message size)` plane where each algorithm has the lowest
//! communication cost on the 64-node machine (scheduling cost excluded,
//! exactly as the paper's figure assumes static or amortized scheduling).
//!
//! Run: `cargo run -p repro-bench --release --bin fig5`

use commrt::{write_csv, ExperimentRunner};
use commsched::registry;
use repro_bench::{measure_cell, paper_cube, sample_count, DENSITIES};

fn main() {
    let cube = paper_cube();
    let runner = ExperimentRunner::ipsc860();
    let samples = sample_count().min(20); // a 2-D sweep; keep it tractable
    let sizes: Vec<u32> = (6..=16).map(|x| 1u32 << x).collect(); // 64 B .. 64 KB

    println!("Figure 5 reproduction: winner per (d, msg size), {samples} samples per cell");
    println!("(columns are log2(msg bytes) = 6..16, as in the paper's x-axis)\n");
    print!("{:>4} |", "d");
    for bytes in &sizes {
        print!(" {:>6}", format!("2^{}", bytes.trailing_zeros()));
    }
    println!();
    println!("-----+{}", "-".repeat(sizes.len() * 7));

    let mut records = Vec::new();
    // Cells indexed [density][size] -> per-algorithm (label, comm, comp).
    type Cell = Vec<(&'static str, f64, f64)>;
    let mut grid: Vec<Vec<Cell>> = Vec::new();
    for d in DENSITIES {
        print!("{d:>4} |");
        let mut row = Vec::new();
        for &bytes in &sizes {
            let mut cellv = Vec::new();
            let mut best: Option<(&str, f64)> = None;
            for entry in registry::primary() {
                let cell = measure_cell(&runner, &cube, entry, d, bytes, samples)
                    .unwrap_or_else(|e| panic!("{} d={d} M={bytes}: {e}", entry.name()));
                records.push(commrt::CellRecord::from_entry(
                    "fig5", entry, d, bytes, &cell,
                ));
                cellv.push((entry.name(), cell.comm_ms, cell.comp_ms));
                if best.is_none() || cell.comm_ms < best.unwrap().1 {
                    best = Some((entry.name(), cell.comm_ms));
                }
            }
            row.push(cellv);
            print!(" {:>6}", best.unwrap().0);
        }
        grid.push(row);
        println!();
    }

    println!("\npaper's regions: AC at small d/M; LP at large d and M >~1 KB; RS_N(L) elsewhere");

    // Extension the paper discusses but does not plot: the same regions when
    // the schedule is computed at runtime and used only ONCE, so each
    // algorithm is charged comm + comp. Zero-overhead AC expands; RS_NL
    // shrinks toward large messages.
    println!("\nwinner when the schedule is used once (comm + scheduling cost):");
    print!("{:>4} |", "d");
    for bytes in &sizes {
        print!(" {:>6}", format!("2^{}", bytes.trailing_zeros()));
    }
    println!();
    println!("-----+{}", "-".repeat(sizes.len() * 7));
    for (d, row) in DENSITIES.iter().zip(&grid) {
        print!("{d:>4} |");
        for cell in row {
            let best = cell
                .iter()
                .min_by(|a, b| (a.1 + a.2).total_cmp(&(b.1 + b.2)))
                .expect("cells present");
            print!(" {:>6}", best.0);
        }
        println!();
    }

    write_csv(std::path::Path::new("results/fig5.csv"), &records).expect("write csv");
    println!("wrote results/fig5.csv");
}
