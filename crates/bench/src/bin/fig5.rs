//! Regenerates **Figure 5** of the paper: the regions of the
//! `(density, message size)` plane where each algorithm has the lowest
//! communication cost on the 64-node machine (scheduling cost excluded,
//! exactly as the paper's figure assumes static or amortized scheduling).
//!
//! The whole plane is one grid; both winner maps (comm-only, and
//! comm + scheduling for the schedule-used-once extension) are read off
//! the same executed result.
//!
//! Run: `cargo run -p repro-bench --release --bin fig5`

use commrt::write_csv;
use commsched::registry;
use repro_bench::{paper_grid, sample_count, DENSITIES};

fn main() {
    let samples = sample_count().min(20); // a 2-D sweep; keep it tractable
    let sizes: Vec<u32> = (6..=16).map(|x| 1u32 << x).collect(); // 64 B .. 64 KB

    println!("Figure 5 reproduction: winner per (d, msg size), {samples} samples per cell");
    println!("(columns are log2(msg bytes) = 6..16, as in the paper's x-axis)\n");

    let result = paper_grid(registry::primary(), &DENSITIES, &sizes, samples)
        .execute()
        .unwrap_or_else(|e| panic!("{e}"));

    print!("{:>4} |", "d");
    for bytes in &sizes {
        print!(" {:>6}", format!("2^{}", bytes.trailing_zeros()));
    }
    println!();
    println!("-----+{}", "-".repeat(sizes.len() * 7));

    for d in DENSITIES {
        print!("{d:>4} |");
        for &bytes in &sizes {
            let point = result.point_index(d, bytes).expect("declared point");
            let best = result
                .row(point)
                .fold(None::<(&str, f64)>, |best, cell| match best {
                    Some((_, ms)) if cell.result.comm_ms >= ms => best,
                    _ => Some((cell.algorithm.as_str(), cell.result.comm_ms)),
                })
                .expect("cells present");
            print!(" {:>6}", best.0);
        }
        println!();
    }

    println!("\npaper's regions: AC at small d/M; LP at large d and M >~1 KB; RS_N(L) elsewhere");

    // Extension the paper discusses but does not plot: the same regions when
    // the schedule is computed at runtime and used only ONCE, so each
    // algorithm is charged comm + comp. Zero-overhead AC expands; RS_NL
    // shrinks toward large messages.
    println!("\nwinner when the schedule is used once (comm + scheduling cost):");
    print!("{:>4} |", "d");
    for bytes in &sizes {
        print!(" {:>6}", format!("2^{}", bytes.trailing_zeros()));
    }
    println!();
    println!("-----+{}", "-".repeat(sizes.len() * 7));
    for d in DENSITIES {
        print!("{d:>4} |");
        for &bytes in &sizes {
            let point = result.point_index(d, bytes).expect("declared point");
            let best = result
                .row(point)
                .min_by(|a, b| {
                    (a.result.comm_ms + a.result.comp_ms)
                        .total_cmp(&(b.result.comm_ms + b.result.comp_ms))
                })
                .expect("cells present");
            print!(" {:>6}", best.algorithm);
        }
        println!();
    }

    write_csv(
        std::path::Path::new("results/fig5.csv"),
        &result.records("fig5"),
    )
    .expect("write csv");
    println!("wrote results/fig5.csv");
}
