//! `simcheck` — the differential conformance harness between the two
//! simulation backends.
//!
//! The discrete-event engine ([`commrt::DesBackend`]) is the oracle; the
//! analytic occupancy model ([`commrt::AnalyticBackend`]) is the device
//! under test. For every registry scheduler × workload family × cube
//! dimension the harness estimates the same `(matrix, schedule)` under
//! both backends and checks:
//!
//! 1. **Tolerance** — the makespan ratio `analytic / DES` stays inside
//!    the documented per-family band ([`tolerance`]); same for the final
//!    phase-completion estimate.
//! 2. **Tracking** — on multi-phase schedules the *normalized* cumulative
//!    phase profiles of the two backends never drift apart by more than
//!    [`PROFILE_DRIFT`]: the analytic model must distribute time across
//!    phases the way the event engine does, not merely land near the
//!    total.
//! 3. **Exactness** — on contention-free schedules (single-message
//!    matrices; single-phase schedules whose transfers share no engine,
//!    port, or link after exchange fusion) the two backends agree *to the
//!    nanosecond* ([`run_exact`]).
//!
//! Shared by the root `tests/backend_conformance.rs` suite and the
//! `simcheck` repro binary, so CI and the command line check the same
//! invariants. The worst observed divergence is always reported — the
//! point of a differential harness is to watch the gap, not only to gate
//! on it.

use commrt::{AnalyticBackend, BackendReport, DesBackend, Scheme, SimBackend};
use commsched::{registry, CommMatrix, Scheduler, SchedulerKind};
use hypercube::Hypercube;
use workloads::Generator;

/// Maximum allowed drift between the two backends' *normalized*
/// cumulative phase profiles (fraction of the total, in `0..=1`).
///
/// Checked for S1 schedules only: S1's per-pair rendezvous makes "phase
/// k completed" a real event in both backends, so the shapes must track.
/// Under S2 (and AC) phases overlap freely in the event engine — all
/// sends are issued up front — while the analytic pool reports cumulative
/// occupancy prefixes; the two profiles measure different things and only
/// the totals are comparable.
pub const PROFILE_DRIFT: f64 = 0.60;

/// The documented tolerance band for `analytic / DES` makespan ratios,
/// per scheduler family and scheme.
///
/// Why the bands differ (see `docs/ARCHITECTURE.md` for the model):
///
/// * **AC** — the analytic pool serializes every shared resource, but
///   the event engine's AC run resolves contention opportunistically and
///   overlaps copies; the band is the widest.
/// * **S2 families (RS_N, GREEDY)** — pool occupancy tracks the engine
///   closely on regular traffic; residual gap comes from idle slots the
///   pool cannot see (a resource waiting on a hand-off).
/// * **S1 families (LP, RS_NL)** — the model takes the minimum of a
///   max-plus availability chain and the per-phase pool sum; it hides
///   later-phase handshakes under the previous phase and ignores
///   ready-signal traffic, so it undershoots short-message runs and can
///   overshoot chained one-way traffic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerance {
    /// Lower bound on `analytic / DES` (inclusive).
    pub lo: f64,
    /// Upper bound on `analytic / DES` (inclusive).
    pub hi: f64,
}

/// The band an entry's measurements must stay inside.
///
/// Calibrated over dims 2–6 × 5 workload families × 8 seeds; observed
/// ranges were AC 0.54–1.00, phased-S2 0.57–1.00, phased-S1 0.65–1.44,
/// and the bands add margin on both sides. Tightening the analytic model
/// should tighten these numbers, never loosen them.
pub fn tolerance(entry: &dyn Scheduler) -> Tolerance {
    match (entry.family(), Scheme::for_scheduler(entry)) {
        // AC: the unordered blast benefits from opportunistic overlap the
        // serializing pool cannot see, so the model undershoots most here.
        (SchedulerKind::Ac, _) => Tolerance { lo: 0.40, hi: 1.25 },
        // Phased under S2: pool occupancy tracks the engine from below
        // (idle hand-off slots are invisible to occupancy sums).
        (_, Scheme::S2) => Tolerance { lo: 0.45, hi: 1.20 },
        // Phased under S1: the min of the max-plus chain and the phase
        // pool sum brackets the rendezvous structure from above.
        (_, Scheme::S1) => Tolerance { lo: 0.50, hi: 1.75 },
    }
}

/// One differential measurement.
#[derive(Clone, Debug)]
pub struct ConformanceCase {
    /// Registry entry name.
    pub scheduler: String,
    /// Workload family label.
    pub workload: String,
    /// Cube dimension.
    pub dim: u32,
    /// Matrix/scheduler seed.
    pub seed: u64,
    /// Scheme the schedule executed under.
    pub scheme: Scheme,
    /// Event-engine makespan (ns).
    pub des_ns: u64,
    /// Analytic estimate (ns).
    pub analytic_ns: u64,
}

impl ConformanceCase {
    /// `analytic / DES` (1.0 when both are zero).
    pub fn ratio(&self) -> f64 {
        if self.des_ns == 0 && self.analytic_ns == 0 {
            1.0
        } else if self.des_ns == 0 {
            f64::INFINITY
        } else {
            self.analytic_ns as f64 / self.des_ns as f64
        }
    }

    /// Divergence magnitude: `|ln(ratio)|` (0 = exact agreement).
    pub fn divergence(&self) -> f64 {
        self.ratio().ln().abs()
    }

    fn describe(&self) -> String {
        format!(
            "{} on {} (dim={}, seed={}, {}): des={:.3} ms, analytic={:.3} ms, ratio={:.3}",
            self.scheduler,
            self.workload,
            self.dim,
            self.seed,
            self.scheme.label(),
            self.des_ns as f64 / 1e6,
            self.analytic_ns as f64 / 1e6,
            self.ratio()
        )
    }
}

/// Everything one conformance sweep observed.
#[derive(Clone, Debug, Default)]
pub struct ConformanceReport {
    /// Every measured case.
    pub cases: Vec<ConformanceCase>,
    /// Human-readable descriptions of every violated invariant.
    pub violations: Vec<String>,
    /// Cases in which the two backends agreed exactly.
    pub exact_matches: usize,
}

impl ConformanceReport {
    /// The case with the largest [`ConformanceCase::divergence`].
    pub fn worst(&self) -> Option<&ConformanceCase> {
        self.cases
            .iter()
            .max_by(|a, b| a.divergence().total_cmp(&b.divergence()))
    }

    /// Whether every invariant held.
    pub fn is_pass(&self) -> bool {
        self.violations.is_empty()
    }

    /// Multi-line human-readable summary, always naming the worst
    /// divergence.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "simcheck: {} cases, {} exact, {} violation(s)",
            self.cases.len(),
            self.exact_matches,
            self.violations.len()
        );
        if let Some(w) = self.worst() {
            let _ = writeln!(out, "worst divergence: {}", w.describe());
        }
        for v in &self.violations {
            let _ = writeln!(out, "VIOLATION: {v}");
        }
        out
    }
}

/// The workload families of the sweep, instantiated for a `2^dim`-node
/// cube: the paper's d-regular family at a sparse and a dense point, the
/// dense-random family, non-uniform sizes, and the exchange-heavy ring
/// halo that stresses S1 fusion.
pub fn workload_families(dim: u32) -> Vec<(String, Generator)> {
    let n = 1usize << dim;
    let dense_d = (n / 4).clamp(2, 8);
    let halo = workloads::structured::ring_halo(n, 2.min(n / 2 - 1).max(1), 16_384);
    vec![
        (
            format!("dregular(d=2,M=16384)/{n}"),
            Generator::dregular(n, 2, 16_384),
        ),
        (
            format!("dregular(d={dense_d},M=1024)/{n}"),
            Generator::dregular(n, dense_d, 1024),
        ),
        (
            format!("dense(d=3,M=4096)/{n}"),
            Generator::dense(n, 3, 4096),
        ),
        (
            format!("nonuniform(d=3,64..8192)/{n}"),
            Generator::nonuniform(n, 3, 64, 8192),
        ),
        (format!("ring_halo(w=2,M=16384)/{n}"), {
            Generator::fixed(format!("ring_halo/{n}"), halo)
        }),
    ]
}

/// Run one differential case under both backends.
fn differential(
    entry: &dyn Scheduler,
    cube: &Hypercube,
    com: &CommMatrix,
    seed: u64,
) -> (BackendReport, BackendReport, Scheme) {
    let params = simnet::MachineParams::ipsc860();
    let scheme = Scheme::for_scheduler(entry);
    let schedule = entry.schedule(com, cube, seed);
    let des = DesBackend::default()
        .estimate(&params, cube, com, &schedule, scheme)
        .unwrap_or_else(|e| panic!("{} DES failed: {e}", entry.name()));
    let ana = AnalyticBackend::default()
        .estimate(&params, cube, com, &schedule, scheme)
        .unwrap_or_else(|e| panic!("{} analytic failed: {e}", entry.name()));
    (des, ana, scheme)
}

/// The full differential sweep: every registry scheduler × workload
/// family × dimension × sample seed, checked against [`tolerance`] and
/// [`PROFILE_DRIFT`].
pub fn run_conformance(dims: &[u32], samples: usize) -> ConformanceReport {
    let mut report = ConformanceReport::default();
    for &dim in dims {
        let cube = Hypercube::new(dim);
        for (workload, generator) in workload_families(dim) {
            for k in 0..samples {
                // One matrix per (workload, seed), shared by every entry:
                // the differential intent is "same instance under both
                // backends *and* across schedulers".
                let seed = dim as u64 * 7919 + k as u64;
                let com = generator.generate(seed);
                for &entry in registry::all() {
                    let tol = tolerance(entry);
                    let (des, ana, scheme) = differential(entry, &cube, &com, seed);
                    let case = ConformanceCase {
                        scheduler: entry.name().to_string(),
                        workload: workload.clone(),
                        dim,
                        seed,
                        scheme,
                        des_ns: des.makespan_ns,
                        analytic_ns: ana.makespan_ns,
                    };
                    let ratio = case.ratio();
                    if ratio < tol.lo || ratio > tol.hi {
                        report.violations.push(format!(
                            "makespan ratio {ratio:.3} outside [{:.2}, {:.2}]: {}",
                            tol.lo,
                            tol.hi,
                            case.describe()
                        ));
                    }
                    if des.makespan_ns == ana.makespan_ns {
                        report.exact_matches += 1;
                    }
                    if let Some(v) = check_profile(&case, &des, &ana) {
                        report.violations.push(v);
                    }
                    report.cases.push(case);
                }
            }
        }
    }
    report
}

/// Normalized cumulative phase-profile drift (invariant 2 of the module
/// docs). Only meaningful for multi-phase schedules with real work.
fn check_profile(
    case: &ConformanceCase,
    des: &BackendReport,
    ana: &BackendReport,
) -> Option<String> {
    let (dt, at) = (
        *des.phase_end_ns.last().unwrap_or(&0),
        *ana.phase_end_ns.last().unwrap_or(&0),
    );
    if des.phase_end_ns.len() != ana.phase_end_ns.len() {
        return Some(format!(
            "phase-profile length mismatch ({} vs {}): {}",
            des.phase_end_ns.len(),
            ana.phase_end_ns.len(),
            case.describe()
        ));
    }
    if case.scheme != Scheme::S1 || des.phase_end_ns.len() < 3 || dt == 0 || at == 0 {
        return None;
    }
    for (k, (&d, &a)) in des.phase_end_ns.iter().zip(&ana.phase_end_ns).enumerate() {
        let drift = (d as f64 / dt as f64 - a as f64 / at as f64).abs();
        if drift > PROFILE_DRIFT {
            return Some(format!(
                "normalized phase profile drifts {drift:.3} > {PROFILE_DRIFT} at phase {k}: {}",
                case.describe()
            ));
        }
    }
    None
}

/// The contention-free pinning pass (invariant 3): for every registry
/// entry, analytic and DES must agree **exactly** on
///
/// * a single-message matrix (any schedule shape collapses to one
///   transfer), and
/// * the half-cube shift `i -> i + n/2` (one phase of endpoint-disjoint,
///   link-disjoint circuits under every scheduler), and
/// * the neighbor exchange `i <-> i ^ 1` for S1 families (one phase of
///   fused pairs), **when** the scheduler emits the single-phase shape —
///   which the paper's four do; the shape is asserted, not assumed.
///
/// # Errors
///
/// A description of the first disagreement (scheduler, workload,
/// nanosecond values).
pub fn run_exact(dims: &[u32]) -> Result<usize, String> {
    let mut checked = 0;
    for &dim in dims {
        let cube = Hypercube::new(dim);
        let n = 1usize << dim;

        // One message across the cube's diameter.
        let mut lone = CommMatrix::new(n);
        lone.set(0, n - 1, 32_768);

        // Half-cube shift: senders and receivers are disjoint node sets,
        // and the top-dimension circuits are pairwise link-disjoint.
        let mut shift = CommMatrix::new(n);
        for i in 0..n / 2 {
            shift.set(i, i + n / 2, 8192);
        }

        // Neighbor exchange: d=1 reciprocal pairs, fused under S1.
        let mut pairs = CommMatrix::new(n);
        for i in 0..n {
            pairs.set(i, i ^ 1, 4096);
        }

        for &entry in registry::all() {
            for (com, label) in [(&lone, "lone"), (&shift, "shift"), (&pairs, "pairs")] {
                let schedule = entry.schedule(com, &cube, 5);
                // The exactness claim covers contention-free *schedules*:
                // at most one non-empty phase (none for AC) whose
                // transfers share no resource. That shape is a hard
                // precondition asserted for every entry — a scheduler or
                // phasing change that splits one of these matrices into
                // several phases leaves the pinned exactness class and
                // must fail here loudly, not silently weaken the check.
                let nonempty = schedule.phases().iter().filter(|p| !p.is_empty()).count();
                if nonempty > 1 {
                    return Err(format!(
                        "{} split contention-free workload {label} (dim {dim}) into \
                         {nonempty} phases; exactness class violated",
                        entry.name()
                    ));
                }
                let (des, ana, scheme) = differential(entry, &cube, com, 5);
                if des.makespan_ns != ana.makespan_ns {
                    return Err(format!(
                        "exactness violated: {} on {label} (dim {dim}, {}): \
                         des={} ns vs analytic={} ns",
                        entry.name(),
                        scheme.label(),
                        des.makespan_ns,
                        ana.makespan_ns
                    ));
                }
                checked += 1;
            }
        }
    }
    Ok(checked)
}
