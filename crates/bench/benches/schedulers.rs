//! Wall-clock throughput of the scheduling algorithms on the host machine
//! (the i860 cost model handles the paper's overhead figures; this measures
//! the actual Rust implementation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use commsched::{lp, rs_n, rs_nl, CompressedMatrix};
use hypercube::Hypercube;

fn bench_schedulers(c: &mut Criterion) {
    let cube = Hypercube::new(6);
    let mut group = c.benchmark_group("schedulers_n64");
    for d in [4usize, 16, 48] {
        let com = workloads::random_dregular(64, d, 1024, 42);
        group.bench_with_input(BenchmarkId::new("lp", d), &com, |b, com| {
            b.iter(|| black_box(lp(com)))
        });
        group.bench_with_input(BenchmarkId::new("rs_n", d), &com, |b, com| {
            b.iter(|| black_box(rs_n(com, 7)))
        });
        group.bench_with_input(BenchmarkId::new("rs_nl", d), &com, |b, com| {
            b.iter(|| black_box(rs_nl(com, &cube, 7)))
        });
    }
    group.finish();
}

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("compression_n64");
    for d in [4usize, 48] {
        let com = workloads::random_dregular(64, d, 1024, 42);
        group.bench_with_input(BenchmarkId::new("compress", d), &com, |b, com| {
            b.iter(|| black_box(CompressedMatrix::compress(com, 7)))
        });
    }
    group.finish();
}

fn bench_larger_machines(c: &mut Criterion) {
    // Scaling beyond the paper: schedulers on 256 and 1024 nodes.
    let mut group = c.benchmark_group("rs_nl_scaling_d8");
    group.sample_size(20);
    for dims in [6u32, 8, 10] {
        let n = 1usize << dims;
        let cube = Hypercube::new(dims);
        let com = workloads::random_dregular(n, 8, 1024, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &com, |b, com| {
            b.iter(|| black_box(rs_nl(com, &cube, 3)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_schedulers,
    bench_compression,
    bench_larger_machines
);
criterion_main!(benches);
