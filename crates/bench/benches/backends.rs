//! Backend throughput: cells per second under the discrete-event engine
//! vs the analytic model, on the paper's 64-node machine (d=6 cube) with
//! dense traffic — the sweep-scaling argument for pluggable backends, as
//! numbers.
//!
//! One *cell* is the grid work unit in the steady state of a big sweep:
//! sample matrices already generated (the grid's matrix-reuse cache) and
//! schedules already compiled (the `commcache` schedule cache, which PR'd
//! scheduling down to a lookup — simulation is the remaining
//! wall-clock), priced per sample under the backend
//! ([`commrt::ExperimentRunner::run_scheduler_cell`] with a warm shared
//! cache). Cases land in `BENCH_backend_throughput.json` as
//! `des/<entry>` and `analytic/<entry>` (ns per cell) plus `grid/des`
//! and `grid/analytic` (ns for the whole 5-column grid), with a
//! cells/sec speedup table on stdout. The analytic backend must clear
//! 10x on the dense grid as a whole (and 3x on every individual entry —
//! LP's event run is atypically cheap because XOR phases fuse almost
//! every pair, halving its transfer count); the bench asserts both, so a
//! model regression that erases the point of the backend fails loudly
//! here.

use std::sync::Arc;

use commcache::{CacheConfig, SchedCache};
use commrt::grid::WorkloadPoint;
use commrt::{BackendKind, ExperimentGrid, ExperimentRunner, Scheme};
use commsched::registry;
use repro_bench::{paper_cube, time_case, write_bench_json, CubeExt};
use workloads::{Generator, SampleSet};

fn main() {
    let cube = paper_cube();
    let n = cube.num_nodes_();
    // Dense d=6 grid point: d = 16 messages per node, 4 KiB payloads.
    let (d, bytes) = (16, 4096);
    let samples_per_cell = 2;
    let reps = repro_bench::sample_count_or(5);

    let set = SampleSet::new(11, samples_per_cell);
    // Steady-state sweep economics: matrices generated once (the grid's
    // reuse cache) ...
    let matrices: Vec<_> = set
        .seeds()
        .map(|seed| (seed, workloads::random_dregular(n, d, bytes, seed)))
        .collect();
    let gen = {
        let matrices = matrices.clone();
        move |seed: u64| {
            matrices
                .iter()
                .find(|(s, _)| *s == seed)
                .expect("seed from the same sample set")
                .1
                .clone()
        }
    };
    // ... and schedules compiled once (warm shared commcache).
    let cache = Arc::new(SchedCache::new(CacheConfig::in_memory()));
    for &entry in registry::primary().collect::<Vec<_>>().iter() {
        for (seed, com) in &matrices {
            cache.get_or_schedule(entry, com, &cube, *seed);
        }
    }

    let mut cases = Vec::new();
    let mut table = Vec::new();
    for &entry in registry::primary().collect::<Vec<_>>().iter() {
        let mut per_backend = Vec::new();
        for kind in BackendKind::all() {
            let runner = ExperimentRunner::ipsc860()
                .with_backend(kind)
                .with_shared_cache(Arc::clone(&cache));
            let case = time_case(format!("{}/{}", kind.label(), entry.name()), reps, || {
                runner
                    .run_scheduler_cell(&cube, &set, &gen, entry, Scheme::for_scheduler(entry))
                    .unwrap_or_else(|e| panic!("{} under {kind}: {e}", entry.name()));
            });
            per_backend.push(case.mean_ns);
            cases.push(case);
        }
        let (des_ns, ana_ns) = (per_backend[0], per_backend[1]);
        table.push((entry.name(), des_ns, ana_ns));
    }

    // The headline number: the whole dense 5-column grid, cells/sec.
    let mut grid_ns = Vec::new();
    for kind in BackendKind::all() {
        let grid = ExperimentGrid::new()
            .topology("hypercube(6)", paper_cube())
            .schedulers(registry::primary())
            .point(WorkloadPoint::shared(
                Generator::dregular(n, d, bytes),
                d,
                bytes,
                11,
            ))
            .samples(samples_per_cell)
            .with_backend(kind);
        let case = time_case(format!("grid/{}", kind.label()), reps, || {
            grid.execute()
                .unwrap_or_else(|e| panic!("grid under {kind}: {e}"));
        });
        grid_ns.push(case.mean_ns);
        cases.push(case);
    }

    println!(
        "backend throughput: 64-node cube, dregular(d={d}, M={bytes}), \
         {samples_per_cell} samples/cell, {reps} reps"
    );
    println!(
        "{:>8} | {:>14} | {:>14} | {:>9}",
        "entry", "des cells/s", "analytic c/s", "speedup"
    );
    for (name, des_ns, ana_ns) in &table {
        let speedup = des_ns / ana_ns;
        println!(
            "{:>8} | {:>14.2} | {:>14.2} | {:>8.1}x",
            name,
            1e9 / des_ns,
            1e9 / ana_ns,
            speedup
        );
        assert!(
            speedup >= 3.0,
            "{name}: analytic backend only {speedup:.1}x faster than DES — \
             the model has lost its reason to exist"
        );
    }
    let cols = table.len() as f64;
    let grid_speedup = grid_ns[0] / grid_ns[1];
    println!(
        "{:>8} | {:>14.2} | {:>14.2} | {:>8.1}x",
        "grid",
        cols * 1e9 / grid_ns[0],
        cols * 1e9 / grid_ns[1],
        grid_speedup
    );
    assert!(
        grid_speedup >= 10.0,
        "dense-grid speedup {grid_speedup:.1}x below the 10x acceptance bar"
    );

    let path = write_bench_json("backend_throughput", &cases).expect("write bench json");
    println!("wrote {}", path.display());
}
