//! Cold compile vs warm cache hit, per registry scheduler — the cache's
//! reason to exist, as numbers.
//!
//! For each registry entry the bench times three paths of the cache on
//! the paper's 64-node machine:
//!
//! * **cold** — every request uses a fresh seed, so every request misses:
//!   fingerprint + compile + insert (the price of a first iteration);
//! * **warm** — the replay pattern of `examples/persistent_patterns.rs`:
//!   the caller kept the [`commcache::Fingerprint`] it computed when it
//!   first compiled and replays through `get_or_compute`, so a hit is a
//!   pure sharded lookup (the price of every later iteration);
//! * **rekey** — a hit through `get_or_schedule`, re-fingerprinting the
//!   matrix on every request (the grid executor's path, where no caller
//!   holds the key).
//!
//! Results land in `BENCH_schedule_cache.json` (cases `cold/<name>`,
//! `warm/<name>`, `rekey/<name>`) via the shared quiet writer, plus a
//! speedup table on stdout. Warm beats cold *structurally*: a miss
//! performs the whole hit path and then compiles, inserts, and (for the
//! schedule-free AC, whose compile is nearly free) still pays the
//! fingerprint that the replay pattern amortizes away.

use commcache::{CacheConfig, Fingerprint, SchedCache};
use commsched::registry;
use repro_bench::{paper_cube, time_case, write_bench_json, CubeExt};

fn main() {
    let cube = paper_cube();
    let n = cube.num_nodes_();
    let (d, bytes) = (8, 4096);
    let com = workloads::random_dregular(n, d, bytes, 7);
    let reps = std::env::var("REPRO_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(25);

    // A generous budget: the cold loop inserts `reps` distinct keys per
    // scheduler and evictions would perturb the miss path being timed.
    let cache = SchedCache::new(CacheConfig::in_memory().with_byte_budget(256 << 20));
    let mut cases = Vec::new();
    let mut table = Vec::new();
    for &entry in registry::all() {
        let mut cold_seed = 1_000_000u64;
        let cold = time_case(format!("cold/{}", entry.name()), reps, || {
            cold_seed += 1;
            let _ = cache.get_or_schedule(entry, &com, &cube, cold_seed);
        });
        // First compile of the replayed pattern: compute and *keep* the
        // key, exactly like an iterative solver's first iteration.
        let key = Fingerprint::compute(&com, &cube, entry.name(), 7);
        cache.get_or_compute(key, || entry.schedule(&com, &cube, 7));
        let warm = time_case(format!("warm/{}", entry.name()), reps, || {
            let _ = cache.get_or_compute(key, || entry.schedule(&com, &cube, 7));
        });
        let rekey = time_case(format!("rekey/{}", entry.name()), reps, || {
            let _ = cache.get_or_schedule(entry, &com, &cube, 7);
        });
        table.push((
            entry.name().to_string(),
            cold.min_ns,
            warm.min_ns,
            rekey.min_ns,
            cold.min_ns / warm.min_ns,
        ));
        cases.push(cold);
        cases.push(warm);
        cases.push(rekey);
    }

    println!(
        "schedule cache: cold compile vs warm hit (n={n}, d={d}, M={bytes}B, min over {reps} reps)"
    );
    println!(
        "  {:<14} {:>14} {:>14} {:>14} {:>9}",
        "scheduler", "cold (ns)", "warm (ns)", "rekey (ns)", "speedup"
    );
    for (name, cold_ns, warm_ns, rekey_ns, speedup) in &table {
        println!("  {name:<14} {cold_ns:>14.0} {warm_ns:>14.0} {rekey_ns:>14.0} {speedup:>8.0}x");
    }
    let stats = cache.stats();
    println!(
        "  requests: {}  hits: {}  compiled: {}",
        stats.requests,
        stats.hits(),
        stats.misses
    );
    match write_bench_json("schedule_cache", &cases) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("BENCH_schedule_cache.json not written: {e}"),
    }
}
