//! Scaling curves for the two simulation substrates — the numbers behind
//! the "cost scales with traffic, not topology" claim.
//!
//! Two sweeps land in `BENCH_scale_sim.json`:
//!
//! * `analytic/d{dim}` — pricing a fixed pool of 2048 random transfers
//!   on hypercubes from d=6 (the paper's machine) to d=20 (a
//!   million-node fabric), plus `analytic_resident_bytes/d{dim}` with
//!   the pool's table footprint. Above the sparse crossover the cost
//!   per pool may grow only with the route lengths (~d), never with
//!   the 2^d node count — the `--expect-analytic-growth` gate pins the
//!   d=14 → d=20 ratio.
//! * `des-seq/d{dim}` and `des-par/d10` — the exact engine on dense
//!   AC-scheduled traffic (`dregular(d=16, M=4096)`, the pending-set
//!   regime batching was built for), sequential at d ∈ {6, 8, 10} and
//!   parallel at d=10. The `--expect-parallel-speedup` gate pins the
//!   d=10 sequential/parallel ratio.
//!
//! Gates (all optional, for CI exit-code enforcement):
//!
//! ```text
//! cargo bench --bench scale -- --expect-analytic-growth 2.0 \
//!     --expect-parallel-speedup 2.0 --expect-analytic-wall-ms 50
//! ```
//!
//! `REPRO_SAMPLES` overrides the repetition count (default 3).

use commrt::{DesBackend, Scheme, SimBackend};
use commsched::registry;
use criterion::black_box;
use hypercube::{Hypercube, NodeId, Topology};
use repro_bench::{time_case, write_bench_json};
use simnet::{ExecMode, LoadModel, PortModel, TransferSpec};

/// Analytic sweep: d=6 (the paper) through d=20 (a million nodes).
const ANALYTIC_DIMS: [u32; 8] = [6, 8, 10, 12, 14, 16, 18, 20];
/// Fixed traffic per pool — the independent variable is the fabric.
const POOL_TRANSFERS: usize = 2048;
/// Sequential DES curve; d=10 also runs in parallel mode.
const DES_DIMS: [u32; 3] = [6, 8, 10];

struct Gates {
    analytic_growth: Option<f64>,
    parallel_speedup: Option<f64>,
    analytic_wall_ms: Option<f64>,
}

fn parse_gates() -> Gates {
    let mut gates = Gates {
        analytic_growth: None,
        parallel_speedup: None,
        analytic_wall_ms: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut expect = |name: &str| {
            args.next()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or_else(|| {
                    eprintln!("scale: {name} expects a number");
                    std::process::exit(2);
                })
        };
        match arg.as_str() {
            "--expect-analytic-growth" => {
                gates.analytic_growth = Some(expect("--expect-analytic-growth"));
            }
            "--expect-parallel-speedup" => {
                gates.parallel_speedup = Some(expect("--expect-parallel-speedup"));
            }
            "--expect-analytic-wall-ms" => {
                gates.analytic_wall_ms = Some(expect("--expect-analytic-wall-ms"));
            }
            // Tolerate harness-style flags (e.g. `--bench`) so `cargo
            // bench` invocations without gates keep working.
            _ => {}
        }
    }
    gates
}

/// Deterministic random transfers on an `n`-node fabric (xorshift LCG —
/// the bench must price the same pool on every run).
fn random_specs(n: usize, count: usize, mut state: u64) -> Vec<TransferSpec> {
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut specs = Vec::with_capacity(count);
    while specs.len() < count {
        let (src, dst) = (rand() as usize % n, rand() as usize % n);
        if src == dst {
            continue;
        }
        specs.push(TransferSpec {
            src: NodeId(src as u32),
            dst: NodeId(dst as u32),
            busy_ns: 1 + rand() % 100_000,
            lead_ns: rand() % 10_000,
            fused: false,
        });
    }
    specs
}

fn main() {
    let gates = parse_gates();
    let reps = repro_bench::sample_count_or(3);
    let mut cases = Vec::new();

    // -- analytic: fixed traffic, growing fabric ---------------------------
    let mut analytic_mean = std::collections::HashMap::new();
    println!("analytic pool pricing: {POOL_TRANSFERS} transfers, {reps} reps");
    for dim in ANALYTIC_DIMS {
        let cube = Hypercube::new(dim);
        let n = cube.num_nodes();
        let specs = random_specs(n, POOL_TRANSFERS, 0x5ca1_ab1e ^ u64::from(dim));
        let mut pool = LoadModel::new(&cube, PortModel::Unified);
        let case = time_case(format!("analytic/d{dim}"), reps, || {
            pool.reset();
            for &spec in &specs {
                pool.add(&cube, spec);
            }
            black_box(pool.makespan_ns());
        });
        println!(
            "  d={dim:<2} ({n:>9} nodes, {}): {:>9.3} ms/pool, {:>8} resident bytes",
            if pool.is_dense() { "dense " } else { "sparse" },
            case.mean_ns / 1e6,
            pool.resident_bytes(),
        );
        analytic_mean.insert(dim, case.mean_ns);
        cases.push(criterion::CaseResult {
            name: format!("analytic_resident_bytes/d{dim}"),
            mean_ns: pool.resident_bytes() as f64,
            min_ns: pool.resident_bytes() as f64,
            max_ns: pool.resident_bytes() as f64,
        });
        cases.push(case);
    }

    // -- DES: dense AC traffic, sequential curve + parallel d=10 -----------
    let params = simnet::MachineParams::ipsc860();
    let entry = registry::find("AC").expect("AC is registered");
    let scheme = Scheme::for_scheduler(entry);
    let (density, bytes) = (16usize, 4096u32);
    println!("exact engine: AC on dregular(d={density}, M={bytes}), {reps} reps");
    let mut des_mean = std::collections::HashMap::new();
    for dim in DES_DIMS {
        let cube = Hypercube::new(dim);
        let com = workloads::random_dregular(cube.num_nodes(), density, bytes, 7);
        let schedule = entry.schedule(&com, &cube, 7);
        let modes: &[(&str, Option<ExecMode>)] = if dim == 10 {
            &[
                ("des-seq", None),
                ("des-par", Some(ExecMode::Parallel { threads: 4 })),
            ]
        } else {
            &[("des-seq", None)]
        };
        for &(label, exec) in modes {
            let backend = match exec {
                None => DesBackend::default(),
                Some(mode) => DesBackend::with_exec(mode),
            };
            let case = time_case(format!("{label}/d{dim}"), reps, || {
                backend
                    .estimate(&params, &cube, &com, &schedule, scheme)
                    .unwrap_or_else(|e| panic!("{label} d={dim}: {e}"));
            });
            println!("  {label}/d{dim}: {:>9.3} ms/run", case.mean_ns / 1e6);
            des_mean.insert((label, dim), case.mean_ns);
            cases.push(case);
        }
    }

    let path = write_bench_json("scale_sim", &cases).expect("write bench json");
    println!("wrote {}", path.display());

    // -- gates -------------------------------------------------------------
    let mut failed = false;
    let growth = analytic_mean[&20] / analytic_mean[&14];
    println!("analytic growth d14 -> d20 (64x the nodes): {growth:.2}x the cost");
    if let Some(bound) = gates.analytic_growth {
        if growth > bound {
            eprintln!("scale: FAIL analytic growth {growth:.2}x > {bound:.2}x");
            failed = true;
        }
    }
    let speedup = des_mean[&("des-seq", 10)] / des_mean[&("des-par", 10)];
    println!("parallel DES speedup on dense d=10: {speedup:.2}x");
    if let Some(bound) = gates.parallel_speedup {
        if speedup < bound {
            eprintln!("scale: FAIL parallel speedup {speedup:.2}x < {bound:.2}x");
            failed = true;
        }
    }
    if let Some(bound) = gates.analytic_wall_ms {
        let wall_ms = analytic_mean[&14] / 1e6;
        println!("analytic d=14 wall: {wall_ms:.3} ms (bound {bound:.1} ms)");
        if wall_ms > bound {
            eprintln!("scale: FAIL analytic d=14 wall {wall_ms:.3} ms > {bound:.1} ms");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
