//! Event throughput of the discrete-event simulator: full
//! schedule-execution runs on the 64-node machine model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use commrt::{compile, Scheme};
use commsched::{ac, lp, rs_nl};
use hypercube::Hypercube;
use simnet::{simulate, MachineParams};

fn bench_simulation(c: &mut Criterion) {
    let cube = Hypercube::new(6);
    let params = MachineParams::ipsc860();
    let mut group = c.benchmark_group("simulate_n64_1kb");
    group.sample_size(30);
    for d in [4usize, 16, 48] {
        let com = workloads::random_dregular(64, d, 1024, 11);
        let progs_ac = compile(&com, &ac(&com), Scheme::S2);
        let progs_lp = compile(&com, &lp(&com), Scheme::S1);
        let progs_nl = compile(&com, &rs_nl(&com, &cube, 11), Scheme::S1);
        group.bench_with_input(BenchmarkId::new("ac", d), &progs_ac, |b, p| {
            b.iter(|| black_box(simulate(&cube, &params, p.clone()).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("lp", d), &progs_lp, |b, p| {
            b.iter(|| black_box(simulate(&cube, &params, p.clone()).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("rs_nl", d), &progs_nl, |b, p| {
            b.iter(|| black_box(simulate(&cube, &params, p.clone()).unwrap()))
        });
    }
    group.finish();
}

fn bench_hold_and_wait(c: &mut Criterion) {
    let cube = Hypercube::new(6);
    let params = MachineParams::ipsc860_hold_and_wait();
    let com = workloads::random_dregular(64, 16, 1024, 5);
    let progs = compile(&com, &ac(&com), Scheme::S2);
    c.bench_function("simulate_hold_and_wait_ac_d16", |b| {
        b.iter(|| black_box(simulate(&cube, &params, progs.clone()).unwrap()))
    });
}

criterion_group!(benches, bench_simulation, bench_hold_and_wait);
criterion_main!(benches);
