//! Throughput of schedule validation and routing primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use commsched::{rs_nl, validate_schedule, PathsTable};
use hypercube::{Hypercube, NodeId, Topology};

fn bench_validation(c: &mut Criterion) {
    let cube = Hypercube::new(6);
    let mut group = c.benchmark_group("validate_n64");
    for d in [8usize, 32] {
        let com = workloads::random_dregular(64, d, 1024, 3);
        let schedule = rs_nl(&com, &cube, 3);
        group.bench_with_input(
            BenchmarkId::new("full_validate", d),
            &(&com, &schedule),
            |b, (com, s)| b.iter(|| black_box(validate_schedule(com, s).is_ok())),
        );
        group.bench_with_input(BenchmarkId::new("link_freedom", d), &schedule, |b, s| {
            b.iter(|| black_box(s.link_contention_free(&cube)))
        });
    }
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let cube = Hypercube::new(10); // 1024 nodes
    c.bench_function("ecube_route_1024", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(977);
            black_box(cube.route(NodeId(i % 1024), NodeId((i * 7) % 1024)))
        })
    });
    let cube6 = Hypercube::new(6);
    c.bench_function("paths_table_claim_cycle", |b| {
        let mut table = PathsTable::new(&cube6);
        let mut ops = 0u64;
        b.iter(|| {
            table.clear();
            for i in 0..32u32 {
                black_box(table.try_claim(&cube6, NodeId(i), NodeId(63 - i), &mut ops));
            }
        })
    });
}

criterion_group!(benches, bench_validation, bench_routing);
criterion_main!(benches);
