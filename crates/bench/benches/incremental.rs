//! Cold recompile vs delta patch on drifted matrices — the incremental
//! layer's reason to exist, as numbers.
//!
//! The drifting-pattern scenario: an application's communication matrix
//! evolves slightly between iterations (here 1% of messages retargeted
//! per variant), so every iteration misses the fingerprint cache and
//! would pay a full cold compile. For each registry entry the bench
//! times three paths on a dense 256-node workload:
//!
//! * **cold** — `entry.schedule(&perturbed, ...)`: the price without the
//!   incremental layer;
//! * **incr** — `entry.patch_schedule(&base, &delta, ...)`: the
//!   recompile from a delta, which is exactly what a daemon holding the
//!   base schedule pays when a `SubmitDelta` frame hands it the edit
//!   list. Entries that decline to patch (AC) fall back to a cold
//!   compile inside the timed region — the fallback cost is part of the
//!   honest number;
//! * **e2e** — [`commcache::IncrementalCache::get_patched`]: the full
//!   serving path, which additionally diffs the incoming matrix against
//!   retained bases (O(n²)) and runs the `validate_schedule` correctness
//!   gate (O(n²)) before releasing the patch. Reading and re-checking a
//!   dense matrix is O(n²) no matter how cheap the patch is, so this
//!   column floors near the matrix size — reported for honesty, not
//!   gated.
//!
//! Results land in `BENCH_incremental.json` (cases `cold/<name>`,
//! `incr/<name>`, `e2e/<name>`) plus a speedup table on stdout. With
//! `--expect-speedup <x> [--expect-count <k>]` the bench exits non-zero
//! unless at least `k` (default 6) of the 8 registry entries reach an
//! `x`-fold cold/incr speedup — schedulers with near-free cold compiles
//! (AC, and LP whose patch is by design a fresh `lp()`-equivalent pass)
//! are the budgeted misses.
//!
//! ```text
//! cargo bench --bench incremental -- --expect-speedup 10
//! ```

use std::sync::Arc;

use commcache::{IncrementalCache, IncrementalConfig, InstanceKey};
use commsched::{registry, validate_schedule, CommMatrix, MatrixDelta};
use hypercube::Hypercube;
use repro_bench::{time_case, write_bench_json};

struct Gates {
    speedup: Option<f64>,
    count: usize,
}

fn parse_gates() -> Gates {
    let mut gates = Gates {
        speedup: None,
        count: 6,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut expect = |name: &str| {
            args.next()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or_else(|| {
                    eprintln!("incremental: {name} expects a number");
                    std::process::exit(2);
                })
        };
        match arg.as_str() {
            "--expect-speedup" => gates.speedup = Some(expect("--expect-speedup")),
            "--expect-count" => gates.count = expect("--expect-count") as usize,
            // Tolerate harness-style flags (e.g. `--bench`) so `cargo
            // bench` invocations without gates keep working.
            _ => {}
        }
    }
    gates
}

/// splitmix64 — deterministic drift; the bench prices the same variants
/// on every run.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Retarget ~`rate` of `base`'s messages to currently-free destinations
/// (salt-varied sizes) — the canonical drift between solver iterations.
fn perturb(base: &CommMatrix, rate: f64, salt: u64) -> CommMatrix {
    let msgs: Vec<_> = base.messages().collect();
    let moves = ((msgs.len() as f64 * rate).round() as usize).max(1);
    let n = base.n();
    let mut out = base.clone();
    for m in 0..moves {
        let s = mix(salt.wrapping_mul(1_000_003).wrapping_add(m as u64));
        let (src, old_dst, _) = msgs[s as usize % msgs.len()];
        if out.get(src.0 as usize, old_dst.0 as usize) == 0 {
            continue; // already retargeted by an earlier move
        }
        out.set(src.0 as usize, old_dst.0 as usize, 0);
        let start = mix(s ^ 0xD1F7) as usize % n;
        for off in 0..n {
            let dst = (start + off) % n;
            if dst != src.0 as usize && out.get(src.0 as usize, dst) == 0 {
                out.set(src.0 as usize, dst, 64 + (mix(s ^ 0xB17E) % 4096) as u32);
                break;
            }
        }
    }
    out
}

fn main() {
    let gates = parse_gates();
    let cube = Hypercube::new(8);
    let n = 256usize;
    let (d, bytes) = (48, 4096);
    let seed = 7u64;
    let base = workloads::random_dregular(n, d, bytes, seed);
    let reps = std::env::var("REPRO_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(10);

    // The drifted variants and their deltas, generated up front: in a
    // drifting loop the delta is the *input* (clients ship it in
    // `SubmitDelta` frames), so `incr` prices patching alone while `e2e`
    // re-derives the delta by diffing, as the daemon's content-addressed
    // path does.
    let variants: Vec<(InstanceKey, CommMatrix, MatrixDelta)> = (0..reps)
        .map(|i| {
            let com = perturb(&base, 0.01, i as u64);
            let delta = MatrixDelta::diff(&base, &com).expect("same size");
            (InstanceKey::compute(&com, &cube), com, delta)
        })
        .collect();

    let inc = IncrementalCache::new(IncrementalConfig::default());
    let mut cases = Vec::new();
    let mut table = Vec::new();
    for &entry in registry::all() {
        let base_sched = Arc::new(entry.schedule(&base, &cube, seed));
        inc.register(
            InstanceKey::compute(&base, &cube),
            &base,
            &cube,
            entry.name(),
            seed,
            Arc::clone(&base_sched),
        );
        // Correctness first, outside the timed region: every patch this
        // bench prices must validate against its perturbed matrix.
        for (_, com, delta) in &variants {
            if let Some(patched) = entry.patch_schedule(&base_sched, delta, &cube, seed) {
                validate_schedule(com, &patched)
                    .unwrap_or_else(|e| panic!("{}: patched schedule invalid: {e}", entry.name()));
            }
        }
        let mut i = 0;
        let cold = time_case(format!("cold/{}", entry.name()), reps, || {
            let (_, com, _) = &variants[i % reps];
            i += 1;
            let _ = entry.schedule(com, &cube, seed);
        });
        let mut j = 0;
        let incr = time_case(format!("incr/{}", entry.name()), reps, || {
            let (_, com, delta) = &variants[j % reps];
            j += 1;
            let _ = entry
                .patch_schedule(&base_sched, delta, &cube, seed)
                .unwrap_or_else(|| entry.schedule(com, &cube, seed));
        });
        let mut k = 0;
        let e2e = time_case(format!("e2e/{}", entry.name()), reps, || {
            let (key, com, _) = &variants[k % reps];
            k += 1;
            let _ = inc
                .get_patched(entry, *key, com, &cube, seed)
                .unwrap_or_else(|| Arc::new(entry.schedule(com, &cube, seed)));
        });
        table.push((
            entry.name().to_string(),
            cold.min_ns,
            incr.min_ns,
            e2e.min_ns,
            cold.min_ns / incr.min_ns,
        ));
        cases.push(cold);
        cases.push(incr);
        cases.push(e2e);
    }

    println!(
        "incremental: cold recompile vs delta patch (n={n}, d={d}, M={bytes}B, 1% drift, min over {reps} reps)"
    );
    println!(
        "  {:<14} {:>14} {:>14} {:>14} {:>9}",
        "scheduler", "cold (ns)", "incr (ns)", "e2e (ns)", "speedup"
    );
    for (name, cold_ns, incr_ns, e2e_ns, speedup) in &table {
        println!("  {name:<14} {cold_ns:>14.0} {incr_ns:>14.0} {e2e_ns:>14.0} {speedup:>8.1}x");
    }
    let stats = inc.stats();
    println!(
        "  e2e lookups: {}  patches: {}  fallbacks: {}  validation rejections: {}",
        stats.lookups, stats.patches, stats.fallbacks, stats.validation_rejections
    );
    assert_eq!(
        stats.validation_rejections, 0,
        "a patched schedule failed the validation gate"
    );
    match write_bench_json("incremental", &cases) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("BENCH_incremental.json not written: {e}"),
    }

    if let Some(expect) = gates.speedup {
        let reached = table.iter().filter(|(_, _, _, _, s)| *s >= expect).count();
        if reached < gates.count {
            eprintln!(
                "incremental: FAIL only {reached}/{} entries reached {expect:.0}x (need {})",
                table.len(),
                gates.count
            );
            std::process::exit(1);
        }
        println!(
            "gate: {reached}/{} entries at >= {expect:.0}x (need {}) — ok",
            table.len(),
            gates.count
        );
    }
}
