//! Property tests of fingerprint stability — the contract that lets keys
//! outlive processes: equal inputs always collide, any single
//! perturbation separates, and the concrete digest of a pinned input
//! never drifts (golden value).

use commcache::{canonical_bytes, Fingerprint, InstanceKey};
use commsched::CommMatrix;
use hypercube::{Hypercube, Mesh2d};
use proptest::prelude::*;

/// Sparse matrix on `n = 2^dim` nodes from raw triples (same construction
/// as the registry property tests).
fn matrix_from(dim: u32, cells: &[(usize, usize, u32)]) -> CommMatrix {
    let n = 1usize << dim;
    let mut com = CommMatrix::new(n);
    for &(s, d, bytes) in cells {
        let (s, d) = (s % n, d % n);
        if s != d && com.get(s, d) == 0 {
            com.set(s, d, bytes);
        }
    }
    com
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn equal_inputs_always_collide(
        dim in 3u32..6,
        cells in proptest::collection::vec((0usize..32, 0usize..32, 1u32..65_536), 0..128),
        seed in 0u64..10_000,
    ) {
        // Independently constructed (but equal) matrices and topologies
        // must produce identical keys — across both derivation paths.
        let cube_a = Hypercube::new(dim);
        let cube_b = Hypercube::new(dim);
        let com_a = matrix_from(dim, &cells);
        let com_b = matrix_from(dim, &cells);
        for entry in commsched::registry::all() {
            let a = Fingerprint::compute(&com_a, &cube_a, entry.name(), seed);
            let b = Fingerprint::compute(&com_b, &cube_b, entry.name(), seed);
            prop_assert_eq!(a, b);
            let split = InstanceKey::compute(&com_b, &cube_b).schedule_key(entry.name(), seed);
            prop_assert_eq!(a, split);
        }
    }

    #[test]
    fn any_single_weight_perturbation_changes_the_key(
        dim in 3u32..6,
        cells in proptest::collection::vec((0usize..32, 0usize..32, 1u32..65_535), 1..128),
        pick in 0usize..128,
        seed in 0u64..10_000,
    ) {
        let cube = Hypercube::new(dim);
        let com = matrix_from(dim, &cells);
        let base = Fingerprint::compute(&com, &cube, "RS_NL", seed);
        // Perturb one existing message's weight by +1 (stays non-zero, so
        // the pattern shape is unchanged — only the weight moved).
        let messages: Vec<_> = com.messages().collect();
        if let Some(&(src, dst, bytes)) = messages.get(pick % messages.len().max(1)) {
            let mut perturbed = com.clone();
            perturbed.set(src.index(), dst.index(), bytes + 1);
            prop_assert_ne!(Fingerprint::compute(&perturbed, &cube, "RS_NL", seed), base);
        }
        // Seed and scheduler-name (i.e. options) perturbations.
        prop_assert_ne!(Fingerprint::compute(&com, &cube, "RS_NL", seed ^ 1), base);
        prop_assert_ne!(Fingerprint::compute(&com, &cube, "RS_NL_NOPAIR", seed), base);
    }

    #[test]
    fn topology_identity_is_part_of_the_key(
        cells in proptest::collection::vec((0usize..16, 0usize..16, 1u32..4096), 1..64),
        seed in 0u64..1000,
    ) {
        // Same 16-node matrix, three different 16-node machines: distinct
        // keys (a schedule for one is not a schedule for another).
        let com = matrix_from(4, &cells);
        let cube = Fingerprint::compute(&com, &Hypercube::new(4), "RS_NL", seed);
        let mesh = Fingerprint::compute(&com, &Mesh2d::new(4, 4), "RS_NL", seed);
        let flat = Fingerprint::compute(&com, &Mesh2d::new(2, 8), "RS_NL", seed);
        prop_assert_ne!(cube, mesh);
        prop_assert_ne!(mesh, flat);
        prop_assert_ne!(cube, flat);
    }
}

/// The cross-process stability contract, pinned: this exact digest was
/// computed once and hardcoded; any process, platform, or refactor that
/// produces a different value has silently invalidated every persisted
/// artifact and must bump [`commcache::LAYOUT_VERSION`] instead.
#[test]
fn golden_fingerprint_never_drifts() {
    let mut com = CommMatrix::new(8);
    com.set(0, 1, 16);
    com.set(1, 2, 32);
    com.set(7, 0, 128);
    let cube = Hypercube::new(3);
    let fp = Fingerprint::compute(&com, &cube, "RS_NL", 12345);
    assert_eq!(
        fp.to_hex(),
        "cce9de5dc5df34710e6a70e1bda79edf",
        "canonical layout drifted — bump LAYOUT_VERSION if intentional"
    );
    // And the canonical byte stream itself is pinned at the field level.
    let bytes = canonical_bytes(&com, &cube, "RS_NL", 12345);
    assert_eq!(&bytes[..4], b"CCFP");
    assert_eq!(bytes[4], commcache::LAYOUT_VERSION);
    let name = cube_name_len();
    // tag(5) + name len(4) + name + nodes(8) + links(8) + n(8) + count(8)
    // + 3 messages * 12 + sched name len(4) + "RS_NL"(5) + seed(8).
    assert_eq!(bytes.len(), 5 + 4 + name + 8 + 8 + 8 + 8 + 36 + 4 + 5 + 8);
}

fn cube_name_len() -> usize {
    use hypercube::Topology;
    Hypercube::new(3).name().len()
}

/// Golden keys across every topology kind: one pinned 16-node matrix on
/// four distinct 16-node fabrics (plus the 16-node mesh). Each kind's
/// report name feeds the hash, so each digest is a cross-process contract
/// — a drift here invalidates every persisted artifact for that fabric.
#[test]
fn golden_fingerprints_per_topology_kind() {
    let mut com = CommMatrix::new(16);
    com.set(0, 5, 64);
    com.set(5, 0, 64);
    com.set(3, 12, 4096);
    com.set(9, 2, 1);
    let golden = [
        ("cube:d=4", "318239ece48ae8c4310714ec7b09d00b"),
        ("mesh:4x4", "ec285f1949d726484e7aca8cb9dc4340"),
        ("torus:4x4", "ffcb0d17dcf156e246fbf36a8b606427"),
        ("torus:2x2x2x2", "3ee92d496a09e387632728755bd1e31b"),
        ("fattree:k=4", "06264410a45349579b2a2cd2fb018ef4"),
    ];
    for (spec, hex) in golden {
        let kind: topo::TopologyKind = spec.parse().unwrap();
        let t = kind.build();
        let fp = Fingerprint::compute(&com, t.as_ref(), "RS_NL", 7);
        assert_eq!(
            fp.to_hex(),
            hex,
            "fingerprint for {spec} drifted — bump LAYOUT_VERSION if intentional"
        );
    }
    // All five are distinct: same matrix, five incompatible machines.
    let mut keys: Vec<&str> = golden.iter().map(|(_, h)| *h).collect();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys.len(), golden.len());
}
