//! Property and adversarial tests of the artifact store: arbitrary
//! schedules round-trip exactly through the on-disk format, and every
//! malformation — corrupted header, flipped payload bytes, truncation at
//! any offset, foreign versions, renamed files — surfaces as a typed
//! [`StoreError`], never a panic and never trusted data.

use commcache::{
    decode_artifact, encode_artifact, ArtifactStore, Fingerprint, StoreError, FORMAT_VERSION,
};
use commsched::{registry, CommMatrix, Schedule};
use hypercube::Hypercube;
use proptest::prelude::*;
use std::path::PathBuf;

/// Sparse matrix on `n = 2^dim` nodes from raw triples.
fn matrix_from(dim: u32, cells: &[(usize, usize, u32)]) -> CommMatrix {
    let n = 1usize << dim;
    let mut com = CommMatrix::new(n);
    for &(s, d, bytes) in cells {
        let (s, d) = (s % n, d % n);
        if s != d && com.get(s, d) == 0 {
            com.set(s, d, bytes);
        }
    }
    com
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("commcache_rt_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_schedule_roundtrips_exactly(
        dim in 3u32..6,
        cells in proptest::collection::vec((0usize..32, 0usize..32, 1u32..65_536), 0..128),
        seed in 0u64..10_000,
        key_lo in 0u64..u64::MAX,
        key_hi in 0u64..u64::MAX,
    ) {
        let key = u128::from(key_lo) | (u128::from(key_hi) << 64);
        // schedule → bytes → schedule, for every registry entry's output
        // shape (async, LP's dense phases, RS's sparse phases).
        let cube = Hypercube::new(dim);
        let com = matrix_from(dim, &cells);
        for entry in registry::all() {
            let schedule = entry.schedule(&com, &cube, seed);
            let bytes = encode_artifact(Fingerprint(key), &schedule);
            let (fp, decoded) = decode_artifact(&bytes).expect("decode just-encoded bytes");
            prop_assert_eq!(fp, Fingerprint(key));
            prop_assert_eq!(&decoded, &schedule);
        }
    }

    #[test]
    fn truncation_at_any_offset_is_a_typed_error(
        cells in proptest::collection::vec((0usize..16, 0usize..16, 1u32..4096), 1..64),
        cut_pct in 0usize..100,
    ) {
        let cube = Hypercube::new(4);
        let com = matrix_from(4, &cells);
        let schedule = commsched::rs_nl(&com, &cube, 3);
        let bytes = encode_artifact(Fingerprint(7), &schedule);
        let cut = (bytes.len() - 1) * cut_pct / 100;
        match decode_artifact(&bytes[..cut]) {
            Ok(_) => prop_assert!(false, "decoded a truncated artifact (cut at {cut})"),
            Err(
                StoreError::Truncated | StoreError::BadMagic | StoreError::Corrupt(_),
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error for cut {cut}: {other:?}"),
        }
    }

    #[test]
    fn single_byte_corruption_never_decodes_silently(
        cells in proptest::collection::vec((0usize..16, 0usize..16, 1u32..4096), 1..64),
        victim in 0usize..10_000,
        flip in 1u8..=255,
    ) {
        // Flip one byte anywhere: either the decode fails typed, or (for
        // flips inside the fingerprint field, which the checksum does not
        // cover) the embedded key visibly changes — a store lookup would
        // reject it as a fingerprint mismatch. Nothing decodes silently
        // into wrong data.
        let com = matrix_from(4, &cells);
        let schedule = commsched::rs_n(&com, 9);
        let mut bytes = encode_artifact(Fingerprint(99), &schedule);
        let at = victim % bytes.len();
        bytes[at] ^= flip;
        match decode_artifact(&bytes) {
            Err(_) => {}
            Ok((fp, decoded)) => {
                prop_assert!(
                    fp != Fingerprint(99) && decoded == schedule,
                    "byte {at} corrupted the payload without detection"
                );
            }
        }
    }
}

#[test]
fn corrupted_header_magic_is_bad_magic() {
    let com = matrix_from(3, &[(0, 1, 64)]);
    let mut bytes = encode_artifact(Fingerprint(1), &commsched::lp(&com));
    bytes[0] = b'X';
    assert!(matches!(decode_artifact(&bytes), Err(StoreError::BadMagic)));
}

#[test]
fn version_mismatch_is_skipped_not_trusted() {
    let dir = tmp_dir("version");
    let store = ArtifactStore::new(&dir);
    let cube = Hypercube::new(3);
    let com = matrix_from(3, &[(0, 1, 64), (1, 0, 64)]);
    let schedule = commsched::rs_nl(&com, &cube, 1);
    let fp = Fingerprint(0xabcd);
    store.store(fp, &schedule).unwrap();
    // Rewrite the version field to a future format.
    let path = store.path_for(fp);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    match store.load(fp) {
        Err(StoreError::UnsupportedVersion(v)) => assert_eq!(v, FORMAT_VERSION + 1),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    // decode_artifact agrees, and never parses the foreign payload.
    assert!(matches!(
        decode_artifact(&bytes),
        Err(StoreError::UnsupportedVersion(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_and_garbage_files_are_typed_errors() {
    assert!(matches!(decode_artifact(b""), Err(StoreError::Truncated)));
    assert!(matches!(
        decode_artifact(b"CCSC"),
        Err(StoreError::Truncated)
    ));
    assert!(matches!(
        decode_artifact(b"totally not an artifact file"),
        Err(StoreError::BadMagic)
    ));
    // Valid magic + version, then a payload length pointing past EOF.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"CCSCHED\0");
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&[0u8; 16]);
    bytes.extend_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        decode_artifact(&bytes),
        Err(StoreError::Truncated)
    ));
}

#[test]
fn hostile_phase_counts_do_not_allocate() {
    // A payload claiming 2^60 phases must be rejected by the length
    // bound, not by attempting a 2^60-element allocation.
    let cube = Hypercube::new(3);
    let com = matrix_from(3, &[(0, 1, 64)]);
    let honest = encode_artifact(Fingerprint(5), &commsched::rs_nl(&com, &cube, 2));
    // Payload layout: kind(1) algo(1) n(8) ops(8) compress(8) phases(8).
    // The phase-count field starts at header(36) + 26.
    let mut bytes = honest;
    let at = 36 + 26;
    bytes[at..at + 8].copy_from_slice(&(1u64 << 60).to_le_bytes());
    match decode_artifact(&bytes) {
        // The checksum catches the edit first; a checksum-fixing attacker
        // is then caught by the phase bound. Assert both layers reject.
        Err(StoreError::Corrupt(_) | StoreError::Truncated) => {}
        other => panic!("expected rejection, got {other:?}"),
    }
}

#[test]
fn schedules_with_every_kind_roundtrip_through_files() {
    // File-level (not just byte-level) round-trip for an async schedule,
    // a dense LP schedule, and an empty-matrix schedule.
    let dir = tmp_dir("kinds");
    let store = ArtifactStore::new(&dir);
    let cube = Hypercube::new(4);
    let com = matrix_from(4, &[(0, 1, 64), (1, 0, 64), (2, 9, 512)]);
    let empty = CommMatrix::new(16);
    let cases: Vec<(Fingerprint, Schedule)> = vec![
        (Fingerprint(1), commsched::ac(&com)),
        (Fingerprint(2), commsched::lp(&com)),
        (Fingerprint(3), commsched::rs_nl(&empty, &cube, 0)),
        (Fingerprint(4), commsched::greedy(&com)),
    ];
    for (fp, schedule) in &cases {
        store.store(*fp, schedule).unwrap();
    }
    for (fp, schedule) in &cases {
        assert_eq!(store.load(*fp).unwrap().unwrap(), *schedule);
    }
    assert_eq!(store.entries().unwrap().len(), cases.len());
    std::fs::remove_dir_all(&dir).ok();
}
