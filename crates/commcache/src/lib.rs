//! Schedule compilation cache — turning schedules into cacheable,
//! persistable artifacts.
//!
//! The paper's whole economic argument is **amortization**: an
//! unstructured communication pattern is scheduled once and executed
//! across many iterations of the application, so schedule-construction
//! cost is paid off over reuse. This crate is that argument as
//! infrastructure, in four parts:
//!
//! * [`Fingerprint`] — a canonical 128-bit key over *(matrix contents,
//!   topology identity, scheduler name, seed)* with a documented, stable
//!   byte serialization, so keys survive process restarts.
//! * [`ShardedCache`] — N mutex-guarded shards keyed by fingerprint, LRU
//!   eviction under a configurable byte budget, hit/miss/eviction
//!   counters.
//! * [`ArtifactStore`] — schedules persisted in a versioned on-disk
//!   format (magic + version header + checksum) under `results/cache/`,
//!   with corrupted or foreign-version files surfacing as typed
//!   [`StoreError`]s, never trusted data.
//! * [`SchedCache`] — the combined policy: memory first, then
//!   load-on-miss from the store, then compile and write through.
//!
//! Caching changes *cost*, never *results*: schedules are deterministic
//! functions of the fingerprinted inputs, the artifact round-trip is
//! exact (tested), and the runtime's grids are verified byte-identical
//! with the cache on and off.
//!
//! ```
//! use commcache::{CacheConfig, SchedCache};
//! use commsched::{registry, CommMatrix};
//! use hypercube::Hypercube;
//!
//! let cache = SchedCache::new(CacheConfig::in_memory());
//! let cube = Hypercube::new(4);
//! let mut com = CommMatrix::new(16);
//! com.set(0, 5, 1024);
//! let entry = registry::find("RS_NL").unwrap();
//!
//! let cold = cache.get_or_schedule(entry, &com, &cube, 7); // compiles
//! let warm = cache.get_or_schedule(entry, &com, &cube, 7); // cache hit
//! assert_eq!(cold, warm);
//! let stats = cache.stats();
//! assert_eq!((stats.mem_hits, stats.misses), (1, 1));
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use commsched::{CommMatrix, Schedule, Scheduler};
use hypercube::Topology;

mod cache;
mod fingerprint;
mod incremental;
mod store;

pub use cache::{schedule_weight_bytes, ShardedCache};
pub use fingerprint::{canonical_bytes, Fingerprint, InstanceKey, LAYOUT_VERSION};
pub use incremental::{IncrementalCache, IncrementalConfig, IncrementalStats};
pub use store::{
    decode_artifact, decode_artifact_full, decode_artifact_meta, encode_artifact,
    encode_artifact_meta, encode_artifact_with, ArtifactStore, StoreError, TopologyMeta, EXTENSION,
    FORMAT_VERSION, MAGIC, MIN_FORMAT_VERSION,
};

/// Configuration of a [`SchedCache`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Mutex-guarded shards of the in-memory cache (≥ 1).
    pub shards: usize,
    /// Total in-memory byte budget, split evenly across shards and
    /// enforced by LRU eviction (metered via [`schedule_weight_bytes`]).
    pub byte_budget: usize,
    /// Artifact-store directory; `None` disables persistence.
    pub persist_dir: Option<PathBuf>,
    /// Write freshly compiled schedules through to the store (only
    /// meaningful with `persist_dir`; on by default).
    pub write_through: bool,
    /// Delta-aware compilation ([`IncrementalCache`]); `None` (the
    /// default) keeps the cache byte-identical to a cold compile —
    /// patched schedules may differ structurally from cold ones, so the
    /// layer is strictly opt-in.
    pub incremental: Option<IncrementalConfig>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 8,
            byte_budget: 64 << 20, // 64 MiB
            persist_dir: None,
            write_through: true,
            incremental: None,
        }
    }
}

impl CacheConfig {
    /// Memory-only cache with the default shard count and budget.
    pub fn in_memory() -> Self {
        CacheConfig::default()
    }

    /// Persistent cache (load-on-miss + write-through) rooted at `dir`.
    pub fn persistent(dir: impl Into<PathBuf>) -> Self {
        CacheConfig {
            persist_dir: Some(dir.into()),
            ..CacheConfig::default()
        }
    }

    /// Persistent cache at the conventional `results/cache/` location.
    pub fn persistent_default_dir() -> Self {
        CacheConfig::persistent(ArtifactStore::default_dir())
    }

    /// Override the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Override the in-memory byte budget.
    pub fn with_byte_budget(mut self, bytes: usize) -> Self {
        self.byte_budget = bytes;
        self
    }

    /// Keep the store read-only: load-on-miss without write-through.
    pub fn read_only_store(mut self) -> Self {
        self.write_through = false;
        self
    }

    /// Enable delta-aware compilation with `config`.
    pub fn with_incremental(mut self, config: IncrementalConfig) -> Self {
        self.incremental = Some(config);
        self
    }

    /// Enable delta-aware compilation with default settings.
    pub fn incremental_default(self) -> Self {
        self.with_incremental(IncrementalConfig::default())
    }
}

/// A point-in-time snapshot of every cache counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get_or_*` requests served.
    pub requests: u64,
    /// Requests answered by the in-memory cache.
    pub mem_hits: u64,
    /// Requests answered by the artifact store (then promoted to memory).
    pub store_hits: u64,
    /// Requests that compiled a schedule (true misses).
    pub misses: u64,
    /// Distinct keys inserted into memory.
    pub insertions: u64,
    /// Entries evicted under the byte budget.
    pub evictions: u64,
    /// Schedules too heavy for a shard budget, never cached.
    pub rejected: u64,
    /// Entries currently resident in memory.
    pub entries: usize,
    /// Metered schedule weight currently resident (bytes).
    pub bytes_in_use: usize,
    /// Artifacts written through to the store.
    pub store_writes: u64,
    /// Store files skipped as foreign format versions (treated as misses).
    pub store_skips: u64,
    /// Store reads/writes that failed (corrupt, truncated, I/O); each is
    /// absorbed as a miss, never an answer.
    pub store_errors: u64,
}

impl CacheStats {
    /// Requests answered without compiling (memory + store hits).
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.store_hits
    }

    /// Fraction of requests answered without compiling (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits() as f64 / self.requests as f64
        }
    }
}

/// The schedule cache: a [`ShardedCache`] in front of an optional
/// [`ArtifactStore`].
///
/// Lookup policy per request: fingerprint the inputs, try memory, then
/// (if persistent) try the store — a store hit is promoted into memory —
/// then compile, cache, and (if `write_through`) persist. Store files
/// that are corrupt or a foreign version are *skipped*: the request falls
/// through to compilation and the bad artifact is overwritten by the
/// write-through, which is the self-healing behaviour an on-disk cache
/// wants.
///
/// Concurrency: all methods take `&self`; the cache is shared across
/// threads (the grid executor does). Two threads missing the same key
/// simultaneously may both compile it — schedules are deterministic, so
/// both compute identical values and either insert wins; correctness
/// never depends on single-flight.
pub struct SchedCache {
    mem: ShardedCache,
    store: Option<ArtifactStore>,
    incremental: Option<IncrementalCache>,
    write_through: bool,
    requests: AtomicU64,
    store_hits: AtomicU64,
    misses: AtomicU64,
    store_writes: AtomicU64,
    store_skips: AtomicU64,
    store_errors: AtomicU64,
}

impl SchedCache {
    /// Build a cache from its configuration.
    pub fn new(config: CacheConfig) -> Self {
        SchedCache {
            mem: ShardedCache::new(config.shards, config.byte_budget),
            store: config.persist_dir.map(ArtifactStore::new),
            incremental: config.incremental.map(IncrementalCache::new),
            write_through: config.write_through,
            requests: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            store_writes: AtomicU64::new(0),
            store_skips: AtomicU64::new(0),
            store_errors: AtomicU64::new(0),
        }
    }

    /// Memory-only cache with default configuration.
    pub fn in_memory() -> Self {
        SchedCache::new(CacheConfig::in_memory())
    }

    /// The artifact store, when persistence is configured.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_ref()
    }

    /// Schedule `com` on `topo` with `entry` at `seed`, served from cache
    /// when possible. Without the incremental layer, equal inputs always
    /// return an equal schedule — a hit returns exactly what the compile
    /// would have produced. With [`CacheConfig::incremental`] enabled, a
    /// fingerprint miss may instead be served by *patching* a retained
    /// base schedule (validated against `com`, falling back to a cold
    /// compile on any rejection), and every served schedule is retained
    /// as a future patch base.
    pub fn get_or_schedule(
        &self,
        entry: &dyn Scheduler,
        com: &CommMatrix,
        topo: &dyn Topology,
        seed: u64,
    ) -> Arc<Schedule> {
        match &self.incremental {
            None => {
                let fp = Fingerprint::compute(com, topo, entry.name(), seed);
                self.get_or_compute_on(fp, topo, || entry.schedule(com, topo, seed))
            }
            Some(inc) => {
                let key = InstanceKey::compute(com, topo);
                let fp = key.schedule_key(entry.name(), seed);
                let schedule = self.get_or_compute_arc(fp, Some(topo), || {
                    inc.get_patched(entry, key, com, topo, seed)
                        .unwrap_or_else(|| Arc::new(entry.schedule(com, topo, seed)))
                });
                inc.register(key, com, topo, entry.name(), seed, Arc::clone(&schedule));
                schedule
            }
        }
    }

    /// The policy core: serve `key` from memory, then the store, then
    /// `compile` (caching and write-through on the way out). Exposed for
    /// callers that derive keys themselves (e.g. via [`InstanceKey`]).
    /// Artifacts written through this path carry no topology section;
    /// callers that know the fabric use [`SchedCache::get_or_compute_on`].
    pub fn get_or_compute(
        &self,
        key: Fingerprint,
        compile: impl FnOnce() -> Schedule,
    ) -> Arc<Schedule> {
        self.get_or_compute_arc(key, None, || Arc::new(compile()))
    }

    /// [`SchedCache::get_or_compute`] for callers that know the topology:
    /// write-through artifacts record the fabric (`schedctl inspect`
    /// renders it).
    pub fn get_or_compute_on(
        &self,
        key: Fingerprint,
        topo: &dyn Topology,
        compile: impl FnOnce() -> Schedule,
    ) -> Arc<Schedule> {
        self.get_or_compute_arc(key, Some(topo), || Arc::new(compile()))
    }

    fn get_or_compute_arc(
        &self,
        key: Fingerprint,
        topo: Option<&dyn Topology>,
        compile: impl FnOnce() -> Arc<Schedule>,
    ) -> Arc<Schedule> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(schedule) = self.mem.get(key) {
            return schedule;
        }
        if let Some(store) = &self.store {
            match store.load(key) {
                Ok(Some(schedule)) => {
                    self.store_hits.fetch_add(1, Ordering::Relaxed);
                    let schedule = Arc::new(schedule);
                    self.mem.insert(key, Arc::clone(&schedule));
                    return schedule;
                }
                Ok(None) => {}
                Err(StoreError::UnsupportedVersion(_)) => {
                    self.store_skips.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    self.store_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let schedule = compile();
        self.mem.insert(key, Arc::clone(&schedule));
        if self.write_through {
            if let Some(store) = &self.store {
                let meta = topo.map(TopologyMeta::of);
                match store.store_with(key, &schedule, meta.as_ref()) {
                    Ok(_) => {
                        self.store_writes.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        self.store_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        schedule
    }

    /// The incremental layer, when delta-aware compilation is enabled.
    pub fn incremental(&self) -> Option<&IncrementalCache> {
        self.incremental.as_ref()
    }

    /// Snapshot the incremental counters (`None` when the layer is off).
    pub fn incremental_stats(&self) -> Option<IncrementalStats> {
        self.incremental.as_ref().map(IncrementalCache::stats)
    }

    /// Snapshot every counter.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            requests: self.requests.load(Ordering::Relaxed),
            mem_hits: self.mem.hits(),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.mem.insertions(),
            evictions: self.mem.evictions(),
            rejected: self.mem.rejected(),
            entries: self.mem.len(),
            bytes_in_use: self.mem.bytes_in_use(),
            store_writes: self.store_writes.load(Ordering::Relaxed),
            store_skips: self.store_skips.load(Ordering::Relaxed),
            store_errors: self.store_errors.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for SchedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedCache")
            .field("persist_dir", &self.store.as_ref().map(ArtifactStore::dir))
            .field("write_through", &self.write_through)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsched::registry;
    use hypercube::Hypercube;

    fn sample_com() -> CommMatrix {
        let mut com = CommMatrix::new(16);
        com.set(0, 5, 1024);
        com.set(5, 0, 1024);
        com.set(2, 9, 256);
        com
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("commcache_lib_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn hits_return_the_compiled_schedule() {
        let cache = SchedCache::in_memory();
        let com = sample_com();
        let cube = Hypercube::new(4);
        let entry = registry::find("RS_NL").unwrap();
        let cold = cache.get_or_schedule(entry, &com, &cube, 7);
        let warm = cache.get_or_schedule(entry, &com, &cube, 7);
        assert!(Arc::ptr_eq(&cold, &warm));
        assert_eq!(*cold, entry.schedule(&com, &cube, 7));
        let stats = cache.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.mem_hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_schedulers_and_seeds_do_not_alias() {
        let cache = SchedCache::in_memory();
        let com = sample_com();
        let cube = Hypercube::new(4);
        let rs_n = registry::find("RS_N").unwrap();
        let rs_nl = registry::find("RS_NL").unwrap();
        cache.get_or_schedule(rs_n, &com, &cube, 7);
        cache.get_or_schedule(rs_nl, &com, &cube, 7);
        cache.get_or_schedule(rs_nl, &com, &cube, 8);
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn persistent_cache_survives_a_new_process_image() {
        // Two SchedCache instances over one directory model two runs of
        // one binary: the second's memory is cold, the store is not.
        let dir = tmp_dir("survive");
        let com = sample_com();
        let cube = Hypercube::new(4);
        let entry = registry::find("RS_NL").unwrap();

        let first = SchedCache::new(CacheConfig::persistent(&dir));
        let compiled = first.get_or_schedule(entry, &com, &cube, 3);
        assert_eq!(first.stats().store_writes, 1);

        let second = SchedCache::new(CacheConfig::persistent(&dir));
        let loaded = second.get_or_schedule(entry, &com, &cube, 3);
        assert_eq!(*loaded, *compiled);
        let stats = second.stats();
        assert_eq!(stats.store_hits, 1);
        assert_eq!(stats.misses, 0);
        // The store hit was promoted: a third request is a memory hit.
        second.get_or_schedule(entry, &com, &cube, 3);
        assert_eq!(second.stats().mem_hits, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_artifacts_are_recompiled_and_healed() {
        let dir = tmp_dir("heal");
        let com = sample_com();
        let cube = Hypercube::new(4);
        let entry = registry::find("RS_N").unwrap();
        let cache = SchedCache::new(CacheConfig::persistent(&dir));
        let schedule = cache.get_or_schedule(entry, &com, &cube, 1);
        // Corrupt the payload on disk.
        let fp = Fingerprint::compute(&com, &cube, entry.name(), 1);
        let path = cache.store().unwrap().path_for(fp);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 9; // inside the payload, before checksum
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let fresh = SchedCache::new(CacheConfig::persistent(&dir));
        let recompiled = fresh.get_or_schedule(entry, &com, &cube, 1);
        assert_eq!(*recompiled, *schedule);
        let stats = fresh.stats();
        assert_eq!(stats.store_errors, 1, "corrupt read absorbed");
        assert_eq!(stats.misses, 1, "fell through to compile");
        assert_eq!(stats.store_writes, 1, "healed by write-through");
        // The healed artifact now loads cleanly.
        let healed = SchedCache::new(CacheConfig::persistent(&dir));
        healed.get_or_schedule(entry, &com, &cube, 1);
        assert_eq!(healed.stats().store_hits, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_only_store_never_writes() {
        let dir = tmp_dir("readonly");
        let com = sample_com();
        let cube = Hypercube::new(4);
        let entry = registry::find("LP").unwrap();
        let cache = SchedCache::new(CacheConfig::persistent(&dir).read_only_store());
        cache.get_or_schedule(entry, &com, &cube, 0);
        assert_eq!(cache.stats().store_writes, 0);
        assert!(!dir.exists(), "no directory created without writes");
    }

    #[test]
    fn every_registry_entry_roundtrips_through_the_cache() {
        let dir = tmp_dir("registry");
        let com = sample_com();
        let cube = Hypercube::new(4);
        let writer = SchedCache::new(CacheConfig::persistent(&dir));
        let reader = SchedCache::new(CacheConfig::persistent(&dir));
        for &entry in registry::all() {
            let direct = entry.schedule(&com, &cube, 11);
            let cold = writer.get_or_schedule(entry, &com, &cube, 11);
            let warm = reader.get_or_schedule(entry, &com, &cube, 11);
            assert_eq!(*cold, direct, "{}", entry.name());
            assert_eq!(*warm, direct, "{} via store", entry.name());
        }
        assert_eq!(reader.stats().store_hits, registry::all().len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incremental_cache_patches_drifting_patterns() {
        let cache = SchedCache::new(CacheConfig::in_memory().incremental_default());
        let cube = Hypercube::new(5);
        let entry = registry::find("RS_NL").unwrap();
        let mut com = CommMatrix::new(32);
        for i in 0..32 {
            com.set(i, (i + 1) % 32, 256);
            com.set(i, (i + 7) % 32, 512);
        }
        // Cold compile registers the base.
        cache.get_or_schedule(entry, &com, &cube, 7);
        // Drift: each iteration moves one message, and the patched result
        // must stay a valid schedule of the drifted matrix.
        for step in 0..5usize {
            let from = (step * 3) % 32;
            com.set(from, (from + 1) % 32, 0);
            com.set(from, (from + 11) % 32, 64);
            let s = cache.get_or_schedule(entry, &com, &cube, 7);
            commsched::validate_schedule(&com, &s).unwrap();
            assert!(s.link_contention_free(&cube));
        }
        let inc = cache.incremental_stats().unwrap();
        assert_eq!(inc.patches, 5, "every drift step patched: {inc:?}");
        assert_eq!(inc.validation_rejections, 0);
        assert!(cache.incremental().is_some());
        // Replaying an already-seen matrix is still an exact memory hit —
        // the incremental layer only runs on fingerprint misses.
        cache.get_or_schedule(entry, &com, &cube, 7);
        assert_eq!(cache.stats().mem_hits, 1);
    }

    #[test]
    fn incremental_off_by_default_keeps_exact_semantics() {
        let config = CacheConfig::in_memory();
        assert!(config.incremental.is_none());
        let cache = SchedCache::new(config);
        assert!(cache.incremental_stats().is_none());
        let com = sample_com();
        let cube = Hypercube::new(4);
        let entry = registry::find("RS_NL").unwrap();
        let cached = cache.get_or_schedule(entry, &com, &cube, 7);
        assert_eq!(*cached, entry.schedule(&com, &cube, 7));
    }

    #[test]
    fn debug_renders_stats_not_internals() {
        let cache = SchedCache::in_memory();
        let s = format!("{cache:?}");
        assert!(s.contains("SchedCache"));
        assert!(s.contains("requests"));
    }
}
