//! Canonical 128-bit fingerprints over scheduling requests (the full
//! layout contract is documented on [`Fingerprint`], the public face of
//! this private module).

use std::fmt;

use commsched::CommMatrix;
use hypercube::Topology;

/// FNV-1a 128-bit offset basis.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Streaming FNV-1a over 128 bits. The running state *is* the digest, so
/// a hash can be resumed from a previously finished value — that is what
/// makes the instance/request split of the canonical layout exact.
#[derive(Clone, Copy, Debug)]
struct Fnv128(u128);

impl Fnv128 {
    fn new() -> Self {
        Fnv128(FNV128_OFFSET)
    }

    fn resume(state: u128) -> Self {
        Fnv128(state)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_str(&mut self, s: &str) {
        self.write_u32(s.len() as u32);
        self.write(s.as_bytes());
    }

    fn finish(self) -> u128 {
        self.0
    }
}

/// The canonical 128-bit key of one scheduling request.
///
/// A schedule is a pure function of *(communication matrix, topology,
/// scheduler, seed)*. The fingerprint is a 128-bit FNV-1a hash over a
/// **documented, stable byte serialization** of exactly those inputs, so
/// a key computed today equals the key computed by another process,
/// another build, or another machine tomorrow — the property the
/// persistent artifact store needs to survive restarts.
///
/// # Canonical byte layout (version [`LAYOUT_VERSION`])
///
/// All integers are little-endian. Strings are UTF-8, length-prefixed
/// with a `u32`.
///
/// | field | encoding |
/// |-------|----------|
/// | tag | the 4 bytes `b"CCFP"` |
/// | layout version | `u8` = 1 |
/// | topology name | `u32` length + bytes ([`Topology::name`]) |
/// | topology nodes | `u64` ([`Topology::num_nodes`]) |
/// | topology links | `u64` ([`Topology::link_count`]) |
/// | matrix nodes | `u64` (`CommMatrix::n`) |
/// | message count | `u64` |
/// | messages | per message, row-major: `u32` src, `u32` dst, `u32` bytes |
/// | scheduler name | `u32` length + bytes ([`commsched::Scheduler::name`]) |
/// | seed | `u64` |
/// | cost section | *only for non-uniform link costs*: the 4 bytes `b"COST"`, then `u32` length + canonical cost string |
///
/// Everything up to and including the messages is the **instance
/// section** — hashed alone it yields an [`InstanceKey`]. The scheduler
/// name and seed form the **request section**; because FNV-1a is a
/// streaming hash, [`InstanceKey::schedule_key`] continues the hash over
/// the request section and produces *exactly* the fingerprint of the
/// full concatenated stream, so the one-shot and two-step derivations
/// can never disagree. [`canonical_bytes`](crate::canonical_bytes)
/// materializes the layout for tests and tooling.
///
/// The scheduler **name stands in for the scheduler's options**:
/// registry entries bake their [`commsched::RsOptions`] configuration
/// into unique names (`RS_NL`, `RS_NL_NOPAIR`, ...). Ad-hoc schedulers
/// must follow the same discipline — two differently-behaving schedulers
/// sharing a name would alias in the cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Fingerprint the full request in one shot.
    pub fn compute(
        com: &CommMatrix,
        topo: &dyn Topology,
        scheduler_name: &str,
        seed: u64,
    ) -> Fingerprint {
        InstanceKey::compute(com, topo).schedule_key(scheduler_name, seed)
    }

    /// The 32-digit lowercase hex rendering (artifact file names).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse a [`Fingerprint::to_hex`] rendering. `None` for anything that
    /// is not exactly 32 hex digits.
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }

    /// Extend this fingerprint with a link-cost-model section: the bytes
    /// `b"COST"` followed by the canonical cost string (length-prefixed),
    /// continued through the same streaming FNV-1a-128.
    ///
    /// The `"uniform"` model returns the fingerprint **unchanged** — by
    /// construction, every key (and thus every persisted artifact and
    /// daemon cache entry) computed before cost models existed stays
    /// valid, and only non-uniform requests branch into fresh keys.
    ///
    /// `canonical` must be the model's canonical rendering (its `Display`
    /// output, which its parser round-trips), never raw user input — two
    /// spellings of one model must share a key.
    pub fn with_cost_model(self, canonical: &str) -> Fingerprint {
        if canonical == "uniform" {
            return self;
        }
        let mut h = Fnv128::resume(self.0);
        h.write(b"COST");
        h.write_str(canonical);
        Fingerprint(h.finish())
    }

    /// The 16 little-endian bytes (artifact header field).
    pub fn to_bytes(self) -> [u8; 16] {
        self.0.to_le_bytes()
    }

    /// Inverse of [`Fingerprint::to_bytes`].
    pub fn from_bytes(bytes: [u8; 16]) -> Fingerprint {
        Fingerprint(u128::from_le_bytes(bytes))
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({:032x})", self.0)
    }
}

/// Hash of the instance section only — the *(matrix, topology)* pair.
///
/// Grids that schedule one sampled matrix under many schedulers can hash
/// the instance once and derive each scheduler's [`Fingerprint`] with
/// [`InstanceKey::schedule_key`], which only hashes the short request
/// section.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct InstanceKey(u128);

impl InstanceKey {
    /// Hash the instance section of the canonical layout.
    pub fn compute(com: &CommMatrix, topo: &dyn Topology) -> InstanceKey {
        let mut h = Fnv128::new();
        h.write(b"CCFP");
        h.write(&[LAYOUT_VERSION]);
        h.write_str(topo.name());
        h.write_u64(topo.num_nodes() as u64);
        h.write_u64(topo.link_count() as u64);
        h.write_u64(com.n() as u64);
        h.write_u64(com.message_count() as u64);
        for (src, dst, bytes) in com.messages() {
            h.write_u32(src.0);
            h.write_u32(dst.0);
            h.write_u32(bytes);
        }
        InstanceKey(h.finish())
    }

    /// Continue the hash over the request section, producing the full
    /// [`Fingerprint`] — identical to [`Fingerprint::compute`] by
    /// construction (streaming hash over the concatenated layout).
    pub fn schedule_key(self, scheduler_name: &str, seed: u64) -> Fingerprint {
        let mut h = Fnv128::resume(self.0);
        h.write_str(scheduler_name);
        h.write_u64(seed);
        Fingerprint(h.finish())
    }

    /// The 16 little-endian bytes (the daemon's `SubmitDelta` frame names
    /// its base instance this way).
    pub fn to_bytes(self) -> [u8; 16] {
        self.0.to_le_bytes()
    }

    /// Inverse of [`InstanceKey::to_bytes`].
    pub fn from_bytes(bytes: [u8; 16]) -> InstanceKey {
        InstanceKey(u128::from_le_bytes(bytes))
    }

    /// The 32-digit lowercase hex rendering (logs and error details).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// The raw 128-bit value, for crate-internal keying.
    pub(crate) fn raw(self) -> u128 {
        self.0
    }
}

/// Version byte of the canonical layout. Bump it when the serialization
/// changes shape — every key (and thus every persisted artifact) is
/// invalidated at once, which is the correct failure mode.
pub const LAYOUT_VERSION: u8 = 1;

/// The canonical byte serialization of a full request, materialized. The
/// hashing path streams and never builds this buffer; it exists so tests
/// (and tooling) can assert the documented layout byte for byte.
pub fn canonical_bytes(
    com: &CommMatrix,
    topo: &dyn Topology,
    scheduler_name: &str,
    seed: u64,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"CCFP");
    out.push(LAYOUT_VERSION);
    let name = topo.name();
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(&(topo.num_nodes() as u64).to_le_bytes());
    out.extend_from_slice(&(topo.link_count() as u64).to_le_bytes());
    out.extend_from_slice(&(com.n() as u64).to_le_bytes());
    out.extend_from_slice(&(com.message_count() as u64).to_le_bytes());
    for (src, dst, bytes) in com.messages() {
        out.extend_from_slice(&src.0.to_le_bytes());
        out.extend_from_slice(&dst.0.to_le_bytes());
        out.extend_from_slice(&bytes.to_le_bytes());
    }
    out.extend_from_slice(&(scheduler_name.len() as u32).to_le_bytes());
    out.extend_from_slice(scheduler_name.as_bytes());
    out.extend_from_slice(&seed.to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypercube::{Hypercube, Mesh2d};

    fn sample_com() -> CommMatrix {
        let mut com = CommMatrix::new(16);
        com.set(0, 5, 1024);
        com.set(5, 0, 1024);
        com.set(3, 7, 64);
        com
    }

    #[test]
    fn streaming_hash_matches_the_materialized_layout() {
        // Fingerprint::compute must equal FNV-1a-128 over canonical_bytes:
        // the streaming path and the documented layout are one thing.
        let com = sample_com();
        let cube = Hypercube::new(4);
        let via_stream = Fingerprint::compute(&com, &cube, "RS_NL", 9);
        let mut h = Fnv128::new();
        h.write(&canonical_bytes(&com, &cube, "RS_NL", 9));
        assert_eq!(via_stream.0, h.finish());
    }

    #[test]
    fn two_step_derivation_equals_one_shot() {
        let com = sample_com();
        let cube = Hypercube::new(4);
        let one_shot = Fingerprint::compute(&com, &cube, "RS_N", 3);
        let two_step = InstanceKey::compute(&com, &cube).schedule_key("RS_N", 3);
        assert_eq!(one_shot, two_step);
    }

    #[test]
    fn every_input_perturbs_the_key() {
        let com = sample_com();
        let cube = Hypercube::new(4);
        let base = Fingerprint::compute(&com, &cube, "RS_NL", 9);
        // Weight perturbation.
        let mut com2 = com.clone();
        com2.set(3, 7, 65);
        assert_ne!(Fingerprint::compute(&com2, &cube, "RS_NL", 9), base);
        // Pattern perturbation (extra message).
        let mut com3 = com.clone();
        com3.set(1, 2, 1);
        assert_ne!(Fingerprint::compute(&com3, &cube, "RS_NL", 9), base);
        // Scheduler, seed, topology dimension, topology family.
        assert_ne!(Fingerprint::compute(&com, &cube, "RS_N", 9), base);
        assert_ne!(Fingerprint::compute(&com, &cube, "RS_NL", 10), base);
        assert_ne!(
            Fingerprint::compute(&com, &Hypercube::new(5), "RS_NL", 9),
            base
        );
        assert_ne!(
            Fingerprint::compute(&com, &Mesh2d::new(4, 4), "RS_NL", 9),
            base
        );
    }

    #[test]
    fn hex_roundtrip_and_rendering() {
        let fp = Fingerprint(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::from_hex(&hex), Some(fp));
        assert_eq!(format!("{fp}"), hex);
        assert!(Fingerprint::from_hex("xyz").is_none());
        assert!(Fingerprint::from_hex(&hex[1..]).is_none());
        assert_eq!(Fingerprint::from_bytes(fp.to_bytes()), fp);
    }

    #[test]
    fn uniform_cost_section_is_the_identity() {
        // Keys computed before cost models existed must stay valid: the
        // uniform model adds nothing to the stream.
        let com = sample_com();
        let cube = Hypercube::new(4);
        let base = Fingerprint::compute(&com, &cube, "RS_NL", 9);
        assert_eq!(base.with_cost_model("uniform"), base);
    }

    #[test]
    fn non_uniform_cost_models_branch_the_key() {
        let com = sample_com();
        let cube = Hypercube::new(4);
        let base = Fingerprint::compute(&com, &cube, "RS_NL", 9);
        let faulty = base.with_cost_model("faulty:p=0.05,seed=7");
        let loggp = base.with_cost_model("loggp:o=2000,g=500,G=1.25");
        assert_ne!(faulty, base);
        assert_ne!(loggp, base);
        assert_ne!(faulty, loggp);
        // Different parameters of one preset also diverge.
        assert_ne!(faulty, base.with_cost_model("faulty:p=0.05,seed=8"));
        // And the extension matches the documented byte stream.
        let mut h = Fnv128::resume(base.0);
        h.write(b"COST");
        h.write_str("faulty:p=0.05,seed=7");
        assert_eq!(faulty.0, h.finish());
    }

    #[test]
    fn empty_matrix_still_keys_deterministically() {
        let com = CommMatrix::new(8);
        let cube = Hypercube::new(3);
        let a = Fingerprint::compute(&com, &cube, "AC", 0);
        let b = Fingerprint::compute(&com, &cube, "AC", 0);
        assert_eq!(a, b);
        assert_ne!(a, Fingerprint::compute(&com, &cube, "LP", 0));
    }
}
