//! The incremental compilation layer: retained base instances and
//! delta-patched schedules.
//!
//! A 1%-perturbed matrix misses the fingerprint cache *entirely* — any
//! changed cell changes the [`crate::Fingerprint`] — and would pay a full
//! cold compile. This layer closes that gap: it retains recent base
//! instances (matrix + the schedules compiled for it) keyed by
//! [`InstanceKey`] under its own byte budget, and on a fingerprint miss
//! diffs the incoming matrix against the most recent compatible bases. A
//! base within the structural-delta threshold is **patched** via
//! [`Scheduler::patch_schedule`] instead of recompiled.
//!
//! Correctness gate: every patched schedule is checked with
//! [`validate_schedule`] against the *perturbed* matrix (plus the entry's
//! link-contention guarantee when it claims one) before it is served;
//! rejects are counted and fall back to a cold compile. Patching trades
//! exact schedule reproduction for compile latency, never validity —
//! which is why the layer is **opt-in**
//! ([`crate::CacheConfig::incremental`] is `None` by default) and the
//! byte-identical repro grids run without it.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use commsched::{
    validate_schedule, CommMatrix, MatrixDelta, PartialPermutation, Schedule, Scheduler,
};
use hypercube::Topology;

use crate::cache::schedule_weight_bytes;
use crate::InstanceKey;

/// Configuration of the [`IncrementalCache`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IncrementalConfig {
    /// Byte budget for retained bases (matrix weight + schedule weights),
    /// enforced by LRU eviction.
    pub byte_budget: usize,
    /// Fallback threshold: a base qualifies when the delta's *structural*
    /// edits (added + removed; resizes patch for free) per 1000 base
    /// messages stay at or under this. 50 ≙ 5%; a 1%-drift workload
    /// (remove + re-add ≈ 20‰) fits comfortably.
    pub max_delta_permille: u32,
    /// Most-recent compatible bases diffed per lookup before giving up —
    /// bounds the O(n²) diff work a single miss can spend.
    pub max_candidates: usize,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            byte_budget: 32 << 20, // 32 MiB
            max_delta_permille: 50,
            max_candidates: 8,
        }
    }
}

impl IncrementalConfig {
    /// Override the byte budget.
    pub fn with_byte_budget(mut self, bytes: usize) -> Self {
        self.byte_budget = bytes;
        self
    }

    /// Override the structural-delta threshold (permille of base messages).
    pub fn with_max_delta_permille(mut self, permille: u32) -> Self {
        self.max_delta_permille = permille;
        self
    }
}

/// A point-in-time snapshot of the incremental counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Fingerprint misses routed through the incremental layer.
    pub lookups: u64,
    /// Lookups that found a retained base within the delta threshold.
    pub base_hits: u64,
    /// Lookups with no base within threshold (cold compile follows).
    pub base_misses: u64,
    /// Patched schedules served (validated against the perturbed matrix).
    pub patches: u64,
    /// Base hits that still recompiled: no base schedule for the
    /// scheduler/seed, the entry declined to patch, or validation
    /// rejected the patch.
    pub fallbacks: u64,
    /// Patched schedules rejected by the validation gate (subset of
    /// `fallbacks`).
    pub validation_rejections: u64,
    /// Bases currently retained.
    pub bases_resident: usize,
    /// Metered base weight currently retained (bytes).
    pub bytes_in_use: usize,
    /// Bases evicted under the byte budget.
    pub evictions: u64,
}

impl IncrementalStats {
    /// Fraction of lookups served by a patch (0 when idle).
    pub fn patch_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.patches as f64 / self.lookups as f64
        }
    }
}

/// Link gate for patched schedules, priced per *touched* phase. A phase
/// whose circuits are a subset of the base phase at the same index
/// inherits the base's link guarantee — removing circuits from a
/// link-disjoint phase cannot make two of the survivors share a link,
/// and every retained base under a link-free entry was itself compiled
/// or gated under that guarantee. Only phases that gained circuits (or
/// shifted index when an emptied phase was dropped) pay an
/// `is_link_free` route sweep.
fn patched_link_free(patched: &Schedule, base: &Schedule, topo: &dyn Topology) -> bool {
    let base_phases = base.phases();
    patched.phases().iter().enumerate().all(|(k, pm)| {
        base_phases.get(k).is_some_and(|b| phase_is_subset(pm, b)) || pm.is_link_free(topo)
    })
}

/// Whether every circuit of `sub` also appears in `sup`.
fn phase_is_subset(sub: &PartialPermutation, sup: &PartialPermutation) -> bool {
    sub.n() == sup.n()
        && (0..sub.n()).all(|i| match sub.dest(i) {
            None => true,
            Some(d) => sup.dest(i) == Some(d),
        })
}

/// Approximate resident size of a retained base matrix: struct header
/// plus the dense `n x n` cell array.
fn matrix_weight_bytes(com: &CommMatrix) -> usize {
    64 + com.n() * com.n() * 4
}

struct BaseEntry {
    com: Arc<CommMatrix>,
    topo_name: String,
    topo_nodes: usize,
    /// Schedules compiled (or patched) for this base, by
    /// `(scheduler name, seed)`.
    schedules: HashMap<(String, u64), Arc<Schedule>>,
    weight: usize,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<u128, BaseEntry>,
    /// Recency index: `last_used` tick → key (same faithful-LRU idiom as
    /// [`crate::ShardedCache`]).
    lru: BTreeMap<u64, u128>,
    clock: u64,
    bytes: usize,
}

impl Inner {
    fn touch(&mut self, raw: u128) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(entry) = self.map.get_mut(&raw) {
            self.lru.remove(&entry.last_used);
            self.lru.insert(clock, raw);
            entry.last_used = clock;
        }
    }
}

/// Retained base instances for delta patching: `InstanceKey` → (matrix,
/// schedules), LRU-evicted under a byte budget, with hit/patch/fallback
/// counters. Shared across threads as-is (all methods take `&self`).
pub struct IncrementalCache {
    inner: Mutex<Inner>,
    config: IncrementalConfig,
    lookups: AtomicU64,
    base_hits: AtomicU64,
    base_misses: AtomicU64,
    patches: AtomicU64,
    fallbacks: AtomicU64,
    validation_rejections: AtomicU64,
    evictions: AtomicU64,
}

impl IncrementalCache {
    /// Build the layer from its configuration.
    pub fn new(config: IncrementalConfig) -> Self {
        IncrementalCache {
            inner: Mutex::new(Inner::default()),
            config,
            lookups: AtomicU64::new(0),
            base_hits: AtomicU64::new(0),
            base_misses: AtomicU64::new(0),
            patches: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            validation_rejections: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Try to produce a schedule for `(entry, com, topo, seed)` by
    /// patching a retained base. `None` means the caller compiles cold:
    /// no compatible base within the delta threshold, no base schedule
    /// for this scheduler/seed, the entry declined to patch, or the
    /// validation gate rejected the patch — each outcome counted.
    pub fn get_patched(
        &self,
        entry: &dyn Scheduler,
        key: InstanceKey,
        com: &CommMatrix,
        topo: &dyn Topology,
        seed: u64,
    ) -> Option<Arc<Schedule>> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let topo_name = topo.name();
        let sched_key = (entry.name().to_string(), seed);

        // Snapshot the most recent compatible candidates under the lock;
        // diff outside it (diffing is the O(n²) part).
        let candidates: Vec<(u128, Arc<CommMatrix>, Option<Arc<Schedule>>)> = {
            let inner = self.inner.lock().expect("no panics hold the base map");
            inner
                .lru
                .iter()
                .rev()
                .filter_map(|(_, raw)| inner.map.get(raw).map(|e| (*raw, e)))
                .filter(|(_, e)| {
                    e.topo_name == topo_name
                        && e.topo_nodes == topo.num_nodes()
                        && e.com.n() == com.n()
                })
                .take(self.config.max_candidates)
                .map(|(raw, e)| {
                    (
                        raw,
                        Arc::clone(&e.com),
                        e.schedules.get(&sched_key).cloned(),
                    )
                })
                .collect()
        };

        let mut hit_without_schedule = false;
        let mut chosen = None;
        for (raw, base_com, base_schedule) in candidates {
            let delta = match MatrixDelta::diff(&base_com, com) {
                Ok(d) => d,
                Err(_) => continue,
            };
            let base_msgs = base_com.message_count().max(1);
            if delta.structural_count() * 1000 > self.config.max_delta_permille as usize * base_msgs
            {
                continue;
            }
            match base_schedule {
                Some(s) => {
                    chosen = Some((raw, s, delta));
                    break;
                }
                None => hit_without_schedule = true,
            }
        }

        let (raw, base_schedule, delta) = match chosen {
            Some(c) => c,
            None => {
                if hit_without_schedule {
                    // A base matched but was never scheduled under this
                    // scheduler/seed: nothing to patch from.
                    self.base_hits.fetch_add(1, Ordering::Relaxed);
                    self.fallbacks.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.base_misses.fetch_add(1, Ordering::Relaxed);
                }
                return None;
            }
        };
        self.base_hits.fetch_add(1, Ordering::Relaxed);
        self.inner
            .lock()
            .expect("no panics hold the base map")
            .touch(raw);

        let patched = match entry.patch_schedule(&base_schedule, &delta, topo, seed) {
            Some(s) => s,
            None => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        // The correctness gate: a patched schedule is served only if it is
        // a valid decomposition of the *perturbed* matrix and upholds the
        // entry's registered link guarantee.
        let valid = validate_schedule(com, &patched).is_ok()
            && (!entry.link_contention_free() || patched_link_free(&patched, &base_schedule, topo));
        if !valid {
            self.validation_rejections.fetch_add(1, Ordering::Relaxed);
            self.fallbacks.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.patches.fetch_add(1, Ordering::Relaxed);
        let _ = key; // the caller registers the result under `key`
        Some(Arc::new(patched))
    }

    /// The retained base matrix under exactly `key`, if resident — how
    /// the daemon resolves a delta submit that names its base by
    /// [`InstanceKey`]. Counts as a use for eviction purposes.
    pub fn base_matrix(&self, key: InstanceKey) -> Option<Arc<CommMatrix>> {
        let raw = key.raw();
        let mut inner = self.inner.lock().expect("no panics hold the base map");
        let com = inner.map.get(&raw).map(|e| Arc::clone(&e.com))?;
        inner.touch(raw);
        Some(com)
    }

    /// Retain `(key, com)` as a future patch base, recording `schedule`
    /// under `(entry_name, seed)`. Called on every served request so
    /// drifting patterns chain: each perturbed matrix becomes the next
    /// iteration's base. Cheap when the base is already resident.
    pub fn register(
        &self,
        key: InstanceKey,
        com: &CommMatrix,
        topo: &dyn Topology,
        entry_name: &str,
        seed: u64,
        schedule: Arc<Schedule>,
    ) {
        let raw = key.raw();
        let sched_weight = schedule_weight_bytes(&schedule);
        let mut inner = self.inner.lock().expect("no panics hold the base map");
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(&raw) {
            Some(entry) => {
                let mut added = 0;
                if entry
                    .schedules
                    .insert((entry_name.to_string(), seed), schedule)
                    .is_none()
                {
                    added = sched_weight;
                }
                entry.weight += added;
                let prev = entry.last_used;
                entry.last_used = clock;
                inner.lru.remove(&prev);
                inner.lru.insert(clock, raw);
                inner.bytes += added;
            }
            None => {
                let weight = matrix_weight_bytes(com) + sched_weight;
                if weight > self.config.byte_budget {
                    return; // heavier than the whole budget: never retain
                }
                let mut schedules = HashMap::new();
                schedules.insert((entry_name.to_string(), seed), schedule);
                inner.map.insert(
                    raw,
                    BaseEntry {
                        com: Arc::new(com.clone()),
                        topo_name: topo.name().to_string(),
                        topo_nodes: topo.num_nodes(),
                        schedules,
                        weight,
                        last_used: clock,
                    },
                );
                inner.lru.insert(clock, raw);
                inner.bytes += weight;
            }
        }
        while inner.bytes > self.config.byte_budget {
            let (_, lru_key) = inner
                .lru
                .pop_first()
                .expect("over budget implies non-empty");
            let evicted = inner.map.remove(&lru_key).expect("recency index in sync");
            inner.bytes -= evicted.weight;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot every counter.
    pub fn stats(&self) -> IncrementalStats {
        let (bases_resident, bytes_in_use) = {
            let inner = self.inner.lock().expect("no panics hold the base map");
            (inner.map.len(), inner.bytes)
        };
        IncrementalStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            base_hits: self.base_hits.load(Ordering::Relaxed),
            base_misses: self.base_misses.load(Ordering::Relaxed),
            patches: self.patches.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            validation_rejections: self.validation_rejections.load(Ordering::Relaxed),
            bases_resident,
            bytes_in_use,
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for IncrementalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalCache")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsched::registry;
    use hypercube::Hypercube;

    fn sample_com(n: usize) -> CommMatrix {
        let mut com = CommMatrix::new(n);
        for i in 0..n {
            com.set(i, (i + 1) % n, 256);
            com.set(i, (i + 5) % n, 512);
        }
        com
    }

    #[test]
    fn patch_after_register_and_counters() {
        let inc = IncrementalCache::new(IncrementalConfig::default());
        let cube = Hypercube::new(5);
        let base = sample_com(32);
        let entry = registry::find("RS_NL").unwrap();
        let key = InstanceKey::compute(&base, &cube);
        let cold = Arc::new(entry.schedule(&base, &cube, 7));
        inc.register(key, &base, &cube, entry.name(), 7, Arc::clone(&cold));

        let mut drifted = base.clone();
        drifted.set(0, 1, 0);
        drifted.set(4, 20, 64);
        let dkey = InstanceKey::compute(&drifted, &cube);
        let patched = inc
            .get_patched(entry, dkey, &drifted, &cube, 7)
            .expect("within threshold");
        validate_schedule(&drifted, &patched).unwrap();
        assert!(patched.link_contention_free(&cube));
        let stats = inc.stats();
        assert_eq!(stats.base_hits, 1);
        assert_eq!(stats.patches, 1);
        assert_eq!(stats.validation_rejections, 0);
        assert!((stats.patch_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn over_threshold_deltas_miss() {
        let cfg = IncrementalConfig::default().with_max_delta_permille(10);
        let inc = IncrementalCache::new(cfg);
        let cube = Hypercube::new(4);
        let base = sample_com(16); // 32 messages; 10‰ admits 0 structural edits
        let entry = registry::find("RS_N").unwrap();
        let key = InstanceKey::compute(&base, &cube);
        inc.register(
            key,
            &base,
            &cube,
            entry.name(),
            1,
            Arc::new(entry.schedule(&base, &cube, 1)),
        );
        let mut far = base.clone();
        far.set(0, 1, 0);
        far.set(2, 9, 5);
        assert!(inc
            .get_patched(entry, InstanceKey::compute(&far, &cube), &far, &cube, 1)
            .is_none());
        assert_eq!(inc.stats().base_misses, 1);
        // Resizes are non-structural: a resize-only drift still patches.
        let mut resized = base.clone();
        resized.set(0, 1, 9999);
        assert!(inc
            .get_patched(
                entry,
                InstanceKey::compute(&resized, &cube),
                &resized,
                &cube,
                1
            )
            .is_some());
    }

    #[test]
    fn base_without_matching_schedule_falls_back() {
        let inc = IncrementalCache::new(IncrementalConfig::default());
        let cube = Hypercube::new(4);
        let base = sample_com(16);
        let rs_n = registry::find("RS_N").unwrap();
        let rs_nl = registry::find("RS_NL").unwrap();
        let key = InstanceKey::compute(&base, &cube);
        inc.register(
            key,
            &base,
            &cube,
            rs_n.name(),
            1,
            Arc::new(rs_n.schedule(&base, &cube, 1)),
        );
        let mut drifted = base.clone();
        drifted.set(2, 9, 5);
        // Same base, but no RS_NL schedule retained for it.
        assert!(inc
            .get_patched(
                rs_nl,
                InstanceKey::compute(&drifted, &cube),
                &drifted,
                &cube,
                1
            )
            .is_none());
        let stats = inc.stats();
        assert_eq!(stats.base_hits, 1);
        assert_eq!(stats.fallbacks, 1);
        assert_eq!(stats.patches, 0);
    }

    #[test]
    fn byte_budget_evicts_oldest_bases() {
        let base = sample_com(16);
        let entry = registry::find("RS_N").unwrap();
        let cube = Hypercube::new(4);
        let one = matrix_weight_bytes(&base)
            + schedule_weight_bytes(&entry.schedule(&base, &cube, 0)) * 2;
        let inc = IncrementalCache::new(IncrementalConfig::default().with_byte_budget(one));
        for seed_shift in 0..4u32 {
            let mut com = base.clone();
            com.set(0, 8 + seed_shift as usize % 8, 7 + seed_shift);
            let key = InstanceKey::compute(&com, &cube);
            inc.register(
                key,
                &com,
                &cube,
                entry.name(),
                0,
                Arc::new(entry.schedule(&com, &cube, 0)),
            );
        }
        let stats = inc.stats();
        assert!(stats.evictions >= 3, "evictions: {}", stats.evictions);
        assert!(stats.bytes_in_use <= one);
        assert!(stats.bases_resident <= 2);
    }

    #[test]
    fn ac_declines_patching_and_counts_a_fallback() {
        let inc = IncrementalCache::new(IncrementalConfig::default());
        let cube = Hypercube::new(4);
        let base = sample_com(16);
        let ac = registry::find("AC").unwrap();
        let key = InstanceKey::compute(&base, &cube);
        inc.register(
            key,
            &base,
            &cube,
            ac.name(),
            0,
            Arc::new(ac.schedule(&base, &cube, 0)),
        );
        let mut drifted = base.clone();
        drifted.set(2, 9, 5);
        assert!(inc
            .get_patched(
                ac,
                InstanceKey::compute(&drifted, &cube),
                &drifted,
                &cube,
                0
            )
            .is_none());
        let stats = inc.stats();
        assert_eq!(stats.base_hits, 1);
        assert_eq!(stats.fallbacks, 1);
    }
}
