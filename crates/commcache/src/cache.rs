//! The sharded in-memory schedule cache.
//!
//! Keys ([`Fingerprint`]s) are spread over N independently mutex-guarded
//! shards — concurrent grid workers looking up different keys contend on
//! different locks. Each shard evicts least-recently-used entries once its
//! slice of the byte budget is exceeded; budgets are enforced per shard
//! (`total / shards`), so a pathological key distribution can evict a
//! little early, never late.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use commsched::Schedule;

use crate::Fingerprint;

/// Approximate resident size of a cached schedule in bytes: the struct
/// header plus one destination word per node per phase. This is the
/// weight the byte budget meters — a deliberate model of the dominant
/// allocation, not an exact `size_of` walk.
pub fn schedule_weight_bytes(s: &Schedule) -> usize {
    64 + s.phases().len() * (32 + s.n() * 4)
}

struct Entry {
    schedule: Arc<Schedule>,
    weight: usize,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u128, Entry>,
    /// Recency index: `last_used` tick → key. Ticks are unique (the clock
    /// only advances under the shard lock), so this is a faithful LRU
    /// order and eviction pops its first entry in O(log n) instead of
    /// scanning the map.
    lru: BTreeMap<u64, u128>,
    /// Monotone per-shard clock stamping recency.
    clock: u64,
    bytes: usize,
}

/// A fixed-shard, byte-budgeted, LRU-evicting map from [`Fingerprint`] to
/// [`Arc<Schedule>`].
///
/// All operations are `&self`; the cache is shared across threads as-is
/// (the grid executor holds one per run).
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    rejected: AtomicU64,
}

impl ShardedCache {
    /// A cache of `shards` shards (clamped to at least 1) sharing
    /// `byte_budget` bytes of schedule weight.
    pub fn new(shards: usize, byte_budget: usize) -> Self {
        let shards = shards.max(1);
        ShardedCache {
            shard_budget: byte_budget / shards,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: Fingerprint) -> &Mutex<Shard> {
        // The key is a 128-bit hash; its low bits are already uniform.
        &self.shards[(key.0 as usize) % self.shards.len()]
    }

    /// Look `key` up, refreshing its recency. Counts a hit or a miss.
    pub fn get(&self, key: Fingerprint) -> Option<Arc<Schedule>> {
        let mut guard = self.shard(key).lock().expect("no panics hold the shard");
        let shard = &mut *guard;
        shard.clock += 1;
        let clock = shard.clock;
        match shard.map.get_mut(&key.0) {
            Some(entry) => {
                shard.lru.remove(&entry.last_used);
                shard.lru.insert(clock, key.0);
                entry.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.schedule))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert `schedule` under `key`, evicting least-recently-used entries
    /// of the shard until its byte budget holds. A schedule heavier than a
    /// whole shard budget is rejected (counted, not cached) — caching it
    /// would evict everything else for a single entry.
    pub fn insert(&self, key: Fingerprint, schedule: Arc<Schedule>) {
        let weight = schedule_weight_bytes(&schedule);
        if weight > self.shard_budget {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut guard = self.shard(key).lock().expect("no panics hold the shard");
        let shard = &mut *guard;
        shard.clock += 1;
        let clock = shard.clock;
        if let Some(old) = shard.map.insert(
            key.0,
            Entry {
                schedule,
                weight,
                last_used: clock,
            },
        ) {
            // Re-insert under the same key: swap the accounting, no
            // eviction pressure change beyond the weight delta.
            shard.bytes -= old.weight;
            shard.lru.remove(&old.last_used);
        } else {
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
        shard.lru.insert(clock, key.0);
        shard.bytes += weight;
        while shard.bytes > self.shard_budget {
            let (_, lru_key) = shard
                .lru
                .pop_first()
                .expect("over budget implies non-empty");
            let evicted = shard.map.remove(&lru_key).expect("recency index in sync");
            shard.bytes -= evicted.weight;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Entries currently resident, over all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("no panics hold the shard").map.len())
            .sum()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Metered schedule weight currently resident, over all shards.
    pub fn bytes_in_use(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("no panics hold the shard").bytes)
            .sum()
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct keys inserted (re-inserts of a resident key not counted).
    pub fn insertions(&self) -> u64 {
        self.insertions.load(Ordering::Relaxed)
    }

    /// Entries evicted under the byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Oversize schedules refused outright (heavier than a shard budget).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsched::{ac, CommMatrix};

    fn schedule(n: usize) -> Arc<Schedule> {
        Arc::new(ac(&CommMatrix::new(n)))
    }

    fn key(i: u128) -> Fingerprint {
        Fingerprint(i)
    }

    #[test]
    fn get_after_insert_hits() {
        let cache = ShardedCache::new(4, 1 << 20);
        assert!(cache.get(key(1)).is_none());
        let s = schedule(8);
        cache.insert(key(1), Arc::clone(&s));
        let got = cache.get(key(1)).expect("hit");
        assert!(Arc::ptr_eq(&got, &s));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.bytes_in_use() > 0);
    }

    #[test]
    fn lru_eviction_respects_recency() {
        // One shard, a budget fitting exactly two AC schedules.
        let weight = schedule_weight_bytes(&schedule(8));
        let cache = ShardedCache::new(1, 2 * weight);
        cache.insert(key(1), schedule(8));
        cache.insert(key(2), schedule(8));
        // Touch 1 so 2 becomes the LRU entry.
        assert!(cache.get(key(1)).is_some());
        cache.insert(key(3), schedule(8));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(key(1)).is_some(), "recently used survives");
        assert!(cache.get(key(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(key(3)).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn sustained_over_budget_churn_keeps_map_and_index_in_sync() {
        // Thousands of unique keys through a budget holding ~4 entries:
        // every insert evicts, interleaved gets re-stamp survivors, and
        // the map/recency-index/bytes accounting must stay consistent.
        let weight = schedule_weight_bytes(&schedule(8));
        let cache = ShardedCache::new(2, 8 * weight); // 4 per shard
        for i in 0..5_000u128 {
            cache.insert(key(i), schedule(8));
            cache.get(key(i / 2));
        }
        assert!(cache.len() <= 8);
        assert_eq!(cache.bytes_in_use(), cache.len() * weight);
        assert_eq!(
            cache.insertions() - cache.evictions(),
            cache.len() as u64,
            "inserted minus evicted is what is resident"
        );
    }

    #[test]
    fn oversize_entries_are_rejected_not_cached() {
        let cache = ShardedCache::new(2, 64); // 32 bytes per shard
        cache.insert(key(7), schedule(64));
        assert_eq!(cache.rejected(), 1);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.bytes_in_use(), 0);
    }

    #[test]
    fn reinsert_replaces_without_double_accounting() {
        let cache = ShardedCache::new(1, 1 << 20);
        cache.insert(key(1), schedule(8));
        let before = cache.bytes_in_use();
        cache.insert(key(1), schedule(8));
        assert_eq!(cache.bytes_in_use(), before);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.insertions(), 1);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let cache = ShardedCache::new(0, 1 << 20);
        assert_eq!(cache.shards(), 1);
        cache.insert(key(9), schedule(4));
        assert!(cache.get(key(9)).is_some());
    }

    #[test]
    fn concurrent_access_is_safe_and_counted() {
        let cache = Arc::new(ShardedCache::new(8, 1 << 20));
        std::thread::scope(|scope| {
            for t in 0..8u128 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..50 {
                        cache.insert(key(t * 1000 + i), schedule(8));
                        assert!(cache.get(key(t * 1000 + i)).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 400);
        assert_eq!(cache.hits(), 400);
        assert_eq!(cache.insertions(), 400);
    }
}
